//! Live sweep progress: a heartbeat line on stderr every N instances.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::analyze::Profile;
use crate::input::TraceInput;
use crate::render::format_ns;

/// A heartbeat reporter for long instance sweeps.
///
/// Worker closures call [`Progress::tick`] once per finished instance;
/// every `stride` completions (and on the final one) a single status line
/// goes to stderr: instances done, completion rate, ETA, and — when the
/// trace layer is recording — the hottest span by self time so far,
/// harvested live from the in-process rings. Construct with
/// `enabled = false` to make every tick a no-op (the experiment binaries
/// pass their `--profile` flag here, so undecorated runs stay silent).
///
/// Ticks are lock-free; when two workers cross a stride boundary
/// simultaneously both lines print, which is harmless for a diagnostic.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    stride: u64,
    done: AtomicU64,
    start_ns: u64,
    enabled: bool,
}

impl Progress {
    /// A reporter for `total` instances under `label`, emitting every
    /// `stride` completions (clamped to at least 1). Disabled reporters
    /// never print.
    #[must_use]
    pub fn new(label: &str, total: u64, stride: u64, enabled: bool) -> Progress {
        Progress {
            label: label.to_string(),
            total,
            stride: stride.max(1),
            done: AtomicU64::new(0),
            start_ns: if enabled {
                defender_obs::trace::elapsed_ns()
            } else {
                0
            },
            enabled,
        }
    }

    /// A reporter with the default cadence: 16 heartbeats over the sweep
    /// (every `total/16` instances, at least 1).
    #[must_use]
    pub fn with_default_stride(label: &str, total: u64, enabled: bool) -> Progress {
        Progress::new(label, total, total / 16, enabled)
    }

    /// Records one finished instance; prints on stride boundaries.
    pub fn tick(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done % self.stride == 0 || done == self.total {
            self.emit(done);
        }
    }

    /// Instances recorded so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    fn emit(&self, done: u64) {
        let elapsed_ns = defender_obs::trace::elapsed_ns().saturating_sub(self.start_ns);
        let secs = elapsed_ns as f64 / 1e9;
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && self.total >= done {
            format!("{:.1}s", (self.total - done) as f64 / rate)
        } else {
            "?".to_string()
        };
        let pct = if self.total > 0 {
            format!("{:.1}%", done as f64 * 100.0 / self.total as f64)
        } else {
            "-".to_string()
        };
        let top = if defender_obs::trace::enabled() {
            let profile = Profile::build(&TraceInput::from_live());
            profile.top_span().map_or(String::new(), |s| {
                format!(" top {} self {}", s.name, format_ns(s.self_ns))
            })
        } else {
            String::new()
        };
        eprintln!(
            "[{}] {}/{} ({pct}) {rate:.1}/s eta {eta}{top}",
            self.label, done, self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporters_are_no_ops() {
        let p = Progress::new("e1", 10, 2, false);
        for _ in 0..10 {
            p.tick();
        }
        assert_eq!(p.done(), 0, "disabled ticks are no-ops");
    }

    #[test]
    fn enabled_reporters_count_every_tick() {
        let p = Progress::new("e1", 4, 100, true);
        p.tick();
        p.tick();
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn stride_is_clamped_to_one() {
        let p = Progress::with_default_stride("e1", 3, true);
        assert_eq!(p.stride, 1, "total/16 rounds to 0, clamps to 1");
        let q = Progress::new("e1", 100, 0, true);
        assert_eq!(q.stride, 1);
    }
}
