//! Live sweep progress: a heartbeat line on stderr every N instances.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::analyze::Profile;
use crate::input::TraceInput;
use crate::render::format_ns;

/// A heartbeat reporter for long instance sweeps.
///
/// Worker closures call [`Progress::tick`] once per finished instance;
/// every `stride` completions (and on the final one) a single status line
/// goes to stderr: instances done, completion rate, ETA, and — when the
/// trace layer is recording — the hottest span by self time so far,
/// harvested live from the in-process rings. Construct with
/// `enabled = false` to make every tick a no-op (the experiment binaries
/// pass their `--profile` flag here, so undecorated runs stay silent).
///
/// When the process streams shard telemetry
/// (`defender_obs::telemetry::enabled()`), ticks stay live even for a
/// reporter constructed disabled: stride boundaries emit an `instance`
/// event instead of a stderr line, which is how a `defender sweep`
/// parent gets per-shard progress without forcing `--profile` noise
/// into every worker's console.
///
/// Ticks are lock-free; when two workers cross a stride boundary
/// simultaneously both lines print, which is harmless for a diagnostic.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    stride: u64,
    done: AtomicU64,
    start_ns: u64,
    enabled: bool,
}

impl Progress {
    /// A reporter for `total` instances under `label`, emitting every
    /// `stride` completions (clamped to at least 1). Disabled reporters
    /// never print.
    #[must_use]
    pub fn new(label: &str, total: u64, stride: u64, enabled: bool) -> Progress {
        Progress {
            label: label.to_string(),
            total,
            stride: stride.max(1),
            done: AtomicU64::new(0),
            start_ns: if enabled || defender_obs::telemetry::enabled() {
                defender_obs::trace::elapsed_ns()
            } else {
                0
            },
            enabled,
        }
    }

    /// A reporter with the default cadence: 16 heartbeats over the sweep
    /// (every `total/16` instances, at least 1).
    #[must_use]
    pub fn with_default_stride(label: &str, total: u64, enabled: bool) -> Progress {
        Progress::new(label, total, total / 16, enabled)
    }

    /// Records one finished instance; prints (and/or emits an `instance`
    /// telemetry event) on stride boundaries.
    pub fn tick(&self) {
        let telemetry = defender_obs::telemetry::enabled();
        if !self.enabled && !telemetry {
            return;
        }
        // lint: allow(ordering) monotone progress counter; display-only
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done % self.stride == 0 || done == self.total {
            let elapsed_ns = defender_obs::trace::elapsed_ns().saturating_sub(self.start_ns);
            if telemetry {
                defender_obs::telemetry::Event::new("instance")
                    .str("label", &self.label)
                    .u64("done", done)
                    .u64("total", self.total)
                    .u64("elapsed_ns", elapsed_ns)
                    .emit();
            }
            if self.enabled {
                self.emit(done, elapsed_ns);
            }
        }
    }

    /// Instances recorded so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed) // lint: allow(ordering) monotone progress counter; display-only
    }

    fn emit(&self, done: u64, elapsed_ns: u64) {
        let rate = rate_per_sec(done, elapsed_ns);
        let eta = eta_seconds(done, self.total, elapsed_ns)
            .map_or("?".to_string(), |eta| format!("{eta:.1}s"));
        let pct = if self.total > 0 {
            format!("{:.1}%", done as f64 * 100.0 / self.total as f64)
        } else {
            "-".to_string()
        };
        let top = if defender_obs::trace::enabled() {
            let profile = Profile::build(&TraceInput::from_live());
            profile.top_span().map_or(String::new(), |s| {
                format!(" top {} self {}", s.name, format_ns(s.self_ns))
            })
        } else {
            String::new()
        };
        eprintln!(
            "[{}] {}/{} ({pct}) {rate:.1}/s eta {eta}{top}",
            self.label, done, self.total
        );
    }
}

/// Completion rate in instances/second. The elapsed time is clamped to
/// one nanosecond: the first instance of a sweep can land with an
/// elapsed reading of zero (coarse clocks, or a trace epoch taken after
/// the reporter started), and `done / 0` would print an infinite rate.
#[must_use]
pub fn rate_per_sec(done: u64, elapsed_ns: u64) -> f64 {
    done as f64 / (elapsed_ns.max(1) as f64 / 1e9)
}

/// Estimated seconds until `total` instances complete.
///
/// Boundary behavior, each previously a wrong or absurd ETA:
///
/// - `done == 0` → `None` (no rate to extrapolate; callers print `?`);
/// - `done >= total` → `Some(0.0)` (finished; over-counted sweeps — ticks
///   beyond `total` — clamp to 0 instead of going negative);
/// - `elapsed_ns == 0` → finite, via the [`rate_per_sec`] clamp (the old
///   arithmetic rounded the rate to 0 and reported an unknown ETA on the
///   first stride of a fast sweep).
#[must_use]
pub fn eta_seconds(done: u64, total: u64, elapsed_ns: u64) -> Option<f64> {
    if done == 0 {
        return None;
    }
    if done >= total {
        return Some(0.0);
    }
    Some((total - done) as f64 / rate_per_sec(done, elapsed_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporters_are_no_ops() {
        let p = Progress::new("e1", 10, 2, false);
        for _ in 0..10 {
            p.tick();
        }
        assert_eq!(p.done(), 0, "disabled ticks are no-ops");
    }

    #[test]
    fn enabled_reporters_count_every_tick() {
        let p = Progress::new("e1", 4, 100, true);
        p.tick();
        p.tick();
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn stride_is_clamped_to_one() {
        let p = Progress::with_default_stride("e1", 3, true);
        assert_eq!(p.stride, 1, "total/16 rounds to 0, clamps to 1");
        let q = Progress::new("e1", 100, 0, true);
        assert_eq!(q.stride, 1);
    }

    #[test]
    fn rate_clamps_zero_elapsed() {
        // First instance completing at elapsed 0 must not divide by zero
        // or report rate 0 (which used to force an unknown ETA).
        let rate = rate_per_sec(1, 0);
        assert!(rate.is_finite() && rate > 0.0, "{rate}");
        // Sane midpoint: 5 instances in 2s is 2.5/s.
        assert!((rate_per_sec(5, 2_000_000_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn eta_boundaries_are_clamped() {
        assert_eq!(eta_seconds(0, 10, 1_000), None, "no instances, no rate");
        assert_eq!(eta_seconds(10, 10, 1_000), Some(0.0), "finished");
        assert_eq!(
            eta_seconds(12, 10, 1_000),
            Some(0.0),
            "over-counted clamps, not negative"
        );
        assert_eq!(
            eta_seconds(1, 1, 0),
            Some(0.0),
            "single-instance sweep at elapsed 0"
        );
        let eta = eta_seconds(1, 3, 0).expect("finite via the 1ns clamp");
        assert!(eta.is_finite() && eta >= 0.0, "{eta}");
        // Halfway through at 4s elapsed: 4s remain.
        let eta = eta_seconds(5, 10, 4_000_000_000).expect("mid-sweep");
        assert!((eta - 4.0).abs() < 1e-9, "{eta}");
    }

    #[test]
    fn eta_of_total_zero_is_done() {
        // total == 0 with a tick recorded anyway (defensive): done >= total.
        assert_eq!(eta_seconds(1, 0, 1_000), Some(0.0));
    }
}
