//! Human (table + text flamegraph) and machine (JSON) renderings of a
//! [`Profile`].

use defender_obs::json::{JsonArray, JsonObject};

use crate::analyze::{PathAgg, Profile};

/// Formats nanoseconds with a human unit (`1.234ms`, `12.3s`, `450ns`).
#[must_use]
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

/// Renders the profile as text: a span table sorted by self time, the
/// depth-prefixed flamegraph, worker utilization, and marks. `top` caps
/// the span-table and flamegraph row counts (0 = unlimited).
#[must_use]
pub fn to_table(profile: &Profile, top: usize) -> String {
    let cap = if top == 0 { usize::MAX } else { top };
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} lane(s), duration {}, {} dropped event(s)",
        profile.lanes,
        format_ns(profile.duration_ns),
        profile.dropped_events
    ));
    if profile.unclosed > 0 || profile.unmatched > 0 {
        out.push_str(&format!(
            " [{} unclosed, {} unmatched]",
            profile.unclosed, profile.unmatched
        ));
    }
    out.push('\n');

    let mut by_self: Vec<_> = profile.spans.iter().collect();
    by_self.sort_by(|a, b| (b.self_ns, &a.name).cmp(&(a.self_ns, &b.name)));
    out.push_str("\nspans (by self time):\n");
    let mut table = vec![vec![
        "span".to_string(),
        "calls".to_string(),
        "self".to_string(),
        "total".to_string(),
        "self%".to_string(),
    ]];
    let total_self = profile.total_self_ns();
    for span in by_self.iter().take(cap) {
        table.push(vec![
            span.name.clone(),
            span.calls.to_string(),
            format_ns(span.self_ns),
            format_ns(span.total_ns),
            percent(span.self_ns, total_self),
        ]);
    }
    out.push_str(&render_columns(&table));
    if by_self.len() > cap {
        out.push_str(&format!("  … {} more\n", by_self.len() - cap));
    }

    out.push_str("\nflamegraph (self time, siblings hottest-first):\n");
    for node in flame_hottest_first(&profile.flame).iter().take(cap) {
        let name = node.path.rsplit('/').next().unwrap_or(&node.path);
        out.push_str(&format!(
            "  {}{} {} ({} call(s), total {})\n",
            "| ".repeat(node.depth),
            name,
            format_ns(node.self_ns),
            node.calls,
            format_ns(node.total_ns)
        ));
    }
    if profile.flame.len() > cap {
        out.push_str(&format!("  … {} more\n", profile.flame.len() - cap));
    }

    if !profile.workers.is_empty() {
        out.push_str("\nworkers:\n");
        let mut table = vec![vec![
            "worker".to_string(),
            "busy".to_string(),
            "busy%".to_string(),
            "stints".to_string(),
            "longest idle".to_string(),
        ]];
        for w in &profile.workers {
            table.push(vec![
                w.label.clone(),
                format_ns(w.busy_ns),
                percent(w.busy_ns, profile.duration_ns),
                w.stints.to_string(),
                format_ns(w.longest_idle_ns),
            ]);
        }
        out.push_str(&render_columns(&table));
        out.push_str(&format!(
            "critical path estimate: {} ({} of wall clock)\n",
            format_ns(profile.critical_path_ns),
            percent(profile.critical_path_ns, profile.duration_ns)
        ));
    }

    if !profile.marks.is_empty() {
        out.push_str("\nmarks:\n");
        for (name, count) in &profile.marks {
            out.push_str(&format!("  {name} x{count}\n"));
        }
    }
    out
}

/// The flamegraph in display order: depth-first, siblings sorted by self
/// time descending (the stored order is name-sorted for determinism).
fn flame_hottest_first(flame: &[PathAgg]) -> Vec<&PathAgg> {
    // Children of one parent are contiguous in DFS order; sort each
    // sibling run by self time while keeping subtrees intact.
    let mut out: Vec<&PathAgg> = Vec::with_capacity(flame.len());
    sort_siblings(flame, 0, &mut out);
    out
}

fn sort_siblings<'a>(flame: &'a [PathAgg], depth: usize, out: &mut Vec<&'a PathAgg>) {
    // Index the sibling runs at `depth`: each sibling owns the slice up
    // to the next entry at the same (or shallower) depth.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < flame.len() {
        if flame[i].depth == depth {
            let mut j = i + 1;
            while j < flame.len() && flame[j].depth > depth {
                j += 1;
            }
            runs.push((i, j));
            i = j;
        } else {
            i += 1;
        }
    }
    runs.sort_by(|&(a, _), &(b, _)| {
        (flame[b].self_ns, &flame[a].path).cmp(&(flame[a].self_ns, &flame[b].path))
    });
    for (start, end) in runs {
        out.push(&flame[start]);
        sort_siblings(&flame[start + 1..end], depth + 1, out);
    }
}

/// Renders rows as space-aligned columns (first row = header).
fn render_columns(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str("  ");
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the profile as a stable JSON document.
///
/// Field order is part of the contract: span objects lead with
/// `"name", "calls"` and flamegraph objects with `"path", "calls"`, and
/// both arrays are name/path-sorted, so the jobs-invariant projection of
/// two runs can be compared with `grep -o` + `diff` (ci.sh does exactly
/// that). Jobs-variant worker stats live in their own `workers` array.
#[must_use]
pub fn to_json(profile: &Profile) -> String {
    let mut spans = JsonArray::new();
    for s in &profile.spans {
        let mut o = JsonObject::new();
        o.field_str("name", &s.name);
        o.field_u64("calls", s.calls);
        o.field_u64("self_ns", s.self_ns);
        o.field_u64("total_ns", s.total_ns);
        spans.push_raw(&o.finish());
    }
    let mut flame = JsonArray::new();
    for f in &profile.flame {
        let mut o = JsonObject::new();
        o.field_str("path", &f.path);
        o.field_u64("calls", f.calls);
        o.field_u64("depth", f.depth as u64);
        o.field_u64("self_ns", f.self_ns);
        o.field_u64("total_ns", f.total_ns);
        flame.push_raw(&o.finish());
    }
    let mut marks = JsonArray::new();
    for (name, count) in &profile.marks {
        let mut o = JsonObject::new();
        o.field_str("name", name);
        o.field_u64("count", *count);
        marks.push_raw(&o.finish());
    }
    let mut workers = JsonArray::new();
    for w in &profile.workers {
        let mut o = JsonObject::new();
        o.field_str("label", &w.label);
        o.field_u64("busy_ns", w.busy_ns);
        o.field_u64("busy_ppm", w.busy_ppm);
        o.field_u64("stints", w.stints);
        o.field_u64("longest_idle_ns", w.longest_idle_ns);
        workers.push_raw(&o.finish());
    }
    let mut root = JsonObject::new();
    root.field_u64("duration_ns", profile.duration_ns);
    root.field_u64("lanes", profile.lanes as u64);
    root.field_u64("dropped_events", profile.dropped_events);
    root.field_u64("unclosed", profile.unclosed);
    root.field_u64("unmatched", profile.unmatched);
    root.field_raw("spans", &spans.finish());
    root.field_raw("flame", &flame.finish());
    root.field_raw("marks", &marks.finish());
    root.field_raw("workers", &workers.finish());
    root.field_u64("critical_path_ns", profile.critical_path_ns);
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{SpanAgg, WorkerStat};

    fn sample() -> Profile {
        Profile {
            duration_ns: 1_000_000,
            lanes: 2,
            dropped_events: 0,
            unclosed: 0,
            unmatched: 0,
            spans: vec![
                SpanAgg {
                    name: "cold".to_string(),
                    calls: 3,
                    self_ns: 10_000,
                    total_ns: 10_000,
                },
                SpanAgg {
                    name: "hot".to_string(),
                    calls: 1,
                    self_ns: 500_000,
                    total_ns: 510_000,
                },
            ],
            flame: vec![
                PathAgg {
                    path: "hot".to_string(),
                    depth: 0,
                    calls: 1,
                    self_ns: 500_000,
                    total_ns: 510_000,
                },
                PathAgg {
                    path: "hot/cold".to_string(),
                    depth: 1,
                    calls: 3,
                    self_ns: 10_000,
                    total_ns: 10_000,
                },
            ],
            marks: vec![("tick".to_string(), 2)],
            workers: vec![WorkerStat {
                label: "w0".to_string(),
                busy_ns: 600_000,
                busy_ppm: 600_000,
                stints: 2,
                longest_idle_ns: 1_000,
            }],
            critical_path_ns: 700_000,
            overrun: None,
        }
    }

    #[test]
    fn units_format_readably() {
        assert_eq!(format_ns(450), "450ns");
        assert_eq!(format_ns(1_500), "1.500µs");
        assert_eq!(format_ns(2_345_000), "2.345ms");
        assert_eq!(format_ns(12_300_000_000), "12.300s");
    }

    #[test]
    fn table_lists_spans_hottest_first() {
        let text = to_table(&sample(), 0);
        let hot = text.find("hot ").unwrap_or(usize::MAX);
        let cold = text.find("cold").unwrap_or(0);
        assert!(hot < cold, "hot before cold:\n{text}");
        assert!(text.contains("critical path estimate"), "{text}");
        assert!(text.contains("tick x2"), "{text}");
        assert!(text.contains("| cold"), "flame child indented:\n{text}");
    }

    #[test]
    fn top_caps_the_table() {
        let text = to_table(&sample(), 1);
        assert!(text.contains("… 1 more"), "{text}");
    }

    #[test]
    fn json_field_order_supports_grep_extraction() {
        let json = to_json(&sample());
        assert!(json.contains(r#"{"name": "cold", "calls": 3,"#), "{json}");
        assert!(json.contains(r#"{"path": "hot/cold", "calls": 3,"#));
        assert!(json.contains(r#""critical_path_ns": 700000"#));
        assert!(json.contains(r#""label": "w0", "busy_ns": 600000, "busy_ppm": 600000"#));
        // The document round-trips through the workspace reader.
        let doc = defender_obs::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("spans").unwrap().as_array().unwrap().len(),
            2,
            "{json}"
        );
    }
}
