//! Stack replay and aggregation: [`TraceInput`] → [`Profile`].

use std::collections::BTreeMap;

use defender_obs::trace::EventKind;

use crate::input::TraceInput;

/// Pool-housekeeping spans elided from span/flamegraph aggregation: they
/// exist only when worker threads are spawned (`--jobs > 1`), so keeping
/// them would make the flamegraph shape jobs-variant. Their frames are
/// redirected into the worker-utilization analysis instead.
const ELIDED: &[&str] = &["par.worker"];

/// Per-span-name aggregation (merged across lanes and call paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanAgg {
    /// The span name.
    pub name: String,
    /// Completed (or harvest-closed) calls.
    pub calls: u64,
    /// Nanoseconds spent in the span excluding its direct children.
    pub self_ns: u64,
    /// Nanoseconds between begin and end, children included.
    pub total_ns: u64,
}

/// One node of the flamegraph: a distinct span call path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathAgg {
    /// The call path as `outer/inner/leaf` span names.
    pub path: String,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// Completed calls at exactly this path.
    pub calls: u64,
    /// Self time at this path (children excluded).
    pub self_ns: u64,
    /// Total time at this path (children included).
    pub total_ns: u64,
}

/// Utilization of one pool-worker label (`w<i>`), merged over every
/// `par.worker` stint carrying that label — fresh scoped threads reuse
/// labels across pool spawns, so one label is one logical worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStat {
    /// The lane label (`w0`, `w1`, …).
    pub label: String,
    /// Nanoseconds inside `par.worker` spans (merged intervals).
    pub busy_ns: u64,
    /// Busy parts-per-million of the trace duration.
    pub busy_ppm: u64,
    /// Number of merged busy stints.
    pub stints: u64,
    /// Longest gap between two consecutive busy stints (0 with < 2).
    pub longest_idle_ns: u64,
}

/// The analyzed trace: aggregations, worker utilization, and the
/// accounting checks the CI gate asserts.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Trace duration in nanoseconds: the live clock at harvest, or the
    /// latest event timestamp for saved traces.
    pub duration_ns: u64,
    /// Number of lanes (threads) carrying events.
    pub lanes: usize,
    /// Events lost to ring overflow or exporter contention.
    pub dropped_events: u64,
    /// Spans still open at the end of the trace, closed at `duration_ns`.
    pub unclosed: u64,
    /// End events with no matching begin (possible after ring drops).
    pub unmatched: u64,
    /// Per-name span table, sorted by name.
    pub spans: Vec<SpanAgg>,
    /// Flamegraph nodes in depth-first order with children sorted by
    /// name — deterministic and jobs-invariant.
    pub flame: Vec<PathAgg>,
    /// Instant-marker counts, sorted by name.
    pub marks: Vec<(String, u64)>,
    /// Pool-worker utilization, sorted by label.
    pub workers: Vec<WorkerStat>,
    /// Fork-join critical-path estimate: serial time (wall time not
    /// covered by any worker) plus the busiest single worker's time.
    /// Equals `duration_ns` when no workers ran.
    pub critical_path_ns: u64,
    /// Wall-clock accounting violation, if any: some lane's root spans
    /// sum past the trace duration (a corrupt or mis-clocked trace).
    pub overrun: Option<String>,
}

/// One open span during replay.
struct OpenFrame {
    name: String,
    begin_ns: u64,
    child_ns: u64,
    /// Flamegraph node carrying this frame (`None` for elided frames).
    node: Option<usize>,
    elided: bool,
}

/// A flamegraph tree node under construction.
#[derive(Default)]
struct Node {
    calls: u64,
    self_ns: u64,
    total_ns: u64,
    children: BTreeMap<String, usize>,
}

struct Replay {
    nodes: Vec<Node>,
    roots: BTreeMap<String, usize>,
    spans: BTreeMap<String, SpanAgg>,
    marks: BTreeMap<String, u64>,
    worker_intervals: BTreeMap<String, Vec<(u64, u64)>>,
    unclosed: u64,
    unmatched: u64,
}

impl Replay {
    fn child_node(&mut self, parent: Option<usize>, name: &str) -> usize {
        let map = match parent {
            Some(i) => &mut self.nodes[i].children,
            None => &mut self.roots,
        };
        if let Some(&i) = map.get(name) {
            return i;
        }
        let i = self.nodes.len();
        match parent {
            Some(p) => self.nodes[p].children.insert(name.to_string(), i),
            None => self.roots.insert(name.to_string(), i),
        };
        self.nodes.push(Node::default());
        i
    }

    /// Closes `frame` at `end_ns`: attributes its time to the span and
    /// flamegraph aggregations (unless elided) and returns the total to
    /// charge against the parent's child time.
    fn close(&mut self, frame: OpenFrame, end_ns: u64, lane_label: &str) -> u64 {
        let total = end_ns.saturating_sub(frame.begin_ns);
        let own = total.saturating_sub(frame.child_ns);
        if frame.elided {
            self.worker_intervals
                .entry(if lane_label.is_empty() {
                    frame.name.clone()
                } else {
                    lane_label.to_string()
                })
                .or_default()
                .push((frame.begin_ns, end_ns));
            // Splice: the children already charged `frame.child_ns`; pass
            // it through so the enclosing span's self time stays correct
            // while the elided frame's own time vanishes from the graph.
            return frame.child_ns;
        }
        let agg = self.spans.entry(frame.name.clone()).or_insert(SpanAgg {
            name: frame.name.clone(),
            calls: 0,
            self_ns: 0,
            total_ns: 0,
        });
        agg.calls += 1;
        agg.self_ns += own;
        agg.total_ns += total;
        if let Some(i) = frame.node {
            self.nodes[i].calls += 1;
            self.nodes[i].self_ns += own;
            self.nodes[i].total_ns += total;
        }
        total
    }
}

impl Profile {
    /// Replays every lane's event stream and aggregates.
    ///
    /// Malformed sequences degrade instead of failing: an end with no
    /// matching begin is counted in [`Profile::unmatched`] and skipped
    /// (rings drop oldest-first, so a truncated lane loses begins), and
    /// spans still open at the end of the trace are closed at the trace
    /// duration and counted in [`Profile::unclosed`].
    #[must_use]
    pub fn build(input: &TraceInput) -> Profile {
        let max_ts = input
            .lanes
            .iter()
            .flat_map(|l| l.events.iter())
            .map(|e| e.ts_ns)
            .max()
            .unwrap_or(0);
        let duration_ns = input.end_ns.unwrap_or(max_ts).max(max_ts);
        let mut replay = Replay {
            nodes: Vec::new(),
            roots: BTreeMap::new(),
            spans: BTreeMap::new(),
            marks: BTreeMap::new(),
            worker_intervals: BTreeMap::new(),
            unclosed: 0,
            unmatched: 0,
        };
        let mut overrun = None;
        let mut lanes = 0usize;
        for lane in &input.lanes {
            if lane.events.is_empty() {
                continue;
            }
            lanes += 1;
            let mut stack: Vec<OpenFrame> = Vec::new();
            let mut lane_root_ns = 0u64;
            for event in &lane.events {
                match event.kind {
                    EventKind::Begin => {
                        let elided = ELIDED.contains(&event.name.as_str());
                        let node = if elided {
                            None
                        } else {
                            let parent = stack.iter().rev().find_map(|f| f.node);
                            Some(replay.child_node(parent, &event.name))
                        };
                        stack.push(OpenFrame {
                            name: event.name.clone(),
                            begin_ns: event.ts_ns,
                            child_ns: 0,
                            node,
                            elided,
                        });
                    }
                    EventKind::End => {
                        if stack.last().is_some_and(|f| f.name == event.name) {
                            // lint: allow(panic) guarded by the is_some_and just above
                            let frame = stack.pop().expect("non-empty stack");
                            let charge = replay.close(frame, event.ts_ns, &lane.label);
                            match stack.last_mut() {
                                Some(parent) => parent.child_ns += charge,
                                None => lane_root_ns += charge,
                            }
                        } else {
                            replay.unmatched += 1;
                        }
                    }
                    // lint: allow(determinism) trace phase code, not a clock read
                    EventKind::Instant => {
                        *replay.marks.entry(event.name.clone()).or_insert(0) += 1;
                    }
                }
            }
            while let Some(frame) = stack.pop() {
                replay.unclosed += 1;
                let charge = replay.close(frame, duration_ns, &lane.label);
                match stack.last_mut() {
                    Some(parent) => parent.child_ns += charge,
                    None => lane_root_ns += charge,
                }
            }
            if lane_root_ns > duration_ns && overrun.is_none() {
                overrun = Some(format!(
                    "lane tid {} accounts {} ns of root-span time in a {} ns trace",
                    lane.tid, lane_root_ns, duration_ns
                ));
            }
        }
        let flame = flatten_flame(&replay.nodes, &replay.roots);
        let workers = worker_stats(&replay.worker_intervals, duration_ns);
        let critical_path_ns = critical_path(&replay.worker_intervals, duration_ns);
        Profile {
            duration_ns,
            lanes,
            dropped_events: input.dropped_events,
            unclosed: replay.unclosed,
            unmatched: replay.unmatched,
            spans: replay.spans.into_values().collect(),
            flame,
            marks: replay.marks.into_iter().collect(),
            workers,
            critical_path_ns,
            overrun,
        }
    }

    /// Total self time across all spans (per-name table).
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.self_ns).sum()
    }

    /// The hottest span by self time, if any.
    #[must_use]
    pub fn top_span(&self) -> Option<&SpanAgg> {
        self.spans.iter().max_by_key(|s| (s.self_ns, &s.name))
    }
}

/// Depth-first flattening with children in name order: deterministic for
/// identical shapes, hence jobs-invariant after `par.worker` elision.
fn flatten_flame(nodes: &[Node], roots: &BTreeMap<String, usize>) -> Vec<PathAgg> {
    let mut out = Vec::new();
    let mut pending: Vec<(String, usize, usize)> = roots
        .iter()
        .rev()
        .map(|(name, &i)| (name.clone(), i, 0))
        .collect();
    while let Some((path, i, depth)) = pending.pop() {
        let node = &nodes[i];
        for (name, &child) in node.children.iter().rev() {
            pending.push((format!("{path}/{name}"), child, depth + 1));
        }
        out.push(PathAgg {
            path,
            depth,
            calls: node.calls,
            self_ns: node.self_ns,
            total_ns: node.total_ns,
        });
    }
    out
}

/// Sorts and merges one label's busy intervals (overlaps collapse).
fn merged(intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted = intervals.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (lo, hi) in sorted {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

fn worker_stats(
    intervals: &BTreeMap<String, Vec<(u64, u64)>>,
    duration_ns: u64,
) -> Vec<WorkerStat> {
    intervals
        .iter()
        .map(|(label, raw)| {
            let stints = merged(raw);
            let busy_ns: u64 = stints.iter().map(|(lo, hi)| hi - lo).sum();
            let longest_idle_ns = stints
                .windows(2)
                .map(|w| w[1].0.saturating_sub(w[0].1))
                .max()
                .unwrap_or(0);
            WorkerStat {
                label: label.clone(),
                busy_ns,
                busy_ppm: busy_ns
                    .saturating_mul(1_000_000)
                    .checked_div(duration_ns)
                    .unwrap_or(0),
                stints: stints.len() as u64,
                longest_idle_ns,
            }
        })
        .collect()
}

/// Fork-join critical-path heuristic: wall time not covered by any worker
/// is serial by definition; for the covered part, the busiest single
/// worker bounds how much the span structure allows to compress. With no
/// workers the whole trace is the critical path.
fn critical_path(intervals: &BTreeMap<String, Vec<(u64, u64)>>, duration_ns: u64) -> u64 {
    if intervals.is_empty() {
        return duration_ns;
    }
    let all: Vec<(u64, u64)> = intervals.values().flatten().copied().collect();
    let covered: u64 = merged(&all).iter().map(|(lo, hi)| hi - lo).sum();
    let serial = duration_ns.saturating_sub(covered);
    let busiest = intervals
        .values()
        .map(|raw| merged(raw).iter().map(|(lo, hi)| hi - lo).sum::<u64>())
        .max()
        .unwrap_or(0);
    serial + busiest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{Lane, LaneEvent};

    fn ev(ts_ns: u64, kind: EventKind, name: &str) -> LaneEvent {
        LaneEvent {
            ts_ns,
            kind,
            name: name.to_string(),
        }
    }

    fn lane(tid: u64, label: &str, events: Vec<LaneEvent>) -> Lane {
        Lane {
            tid,
            label: label.to_string(),
            events,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let input = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(0, EventKind::Begin, "outer"),
                    ev(10, EventKind::Begin, "inner"),
                    ev(30, EventKind::End, "inner"),
                    ev(35, EventKind::Begin, "inner"),
                    ev(40, EventKind::End, "inner"),
                    ev(100, EventKind::End, "outer"),
                ],
            )],
            dropped_events: 0,
            end_ns: None,
        };
        let p = Profile::build(&input);
        assert_eq!(p.duration_ns, 100);
        let outer = &p.spans[p.spans.iter().position(|s| s.name == "outer").unwrap()];
        assert_eq!((outer.calls, outer.total_ns, outer.self_ns), (1, 100, 75));
        let inner = &p.spans[p.spans.iter().position(|s| s.name == "inner").unwrap()];
        assert_eq!((inner.calls, inner.total_ns, inner.self_ns), (2, 25, 25));
        assert_eq!(p.flame.len(), 2);
        assert_eq!(p.flame[0].path, "outer");
        assert_eq!(p.flame[1].path, "outer/inner");
        assert_eq!(p.flame[1].depth, 1);
        assert_eq!(p.overrun, None);
        assert_eq!(p.total_self_ns(), 100);
        assert_eq!(p.top_span().unwrap().name, "outer");
    }

    #[test]
    fn par_worker_frames_are_elided_into_worker_stats() {
        // jobs=2 shape: two worker lanes, tasks nested under par.worker.
        let worker = |tid, label: &str, shift: u64| {
            lane(
                tid,
                label,
                vec![
                    ev(shift, EventKind::Begin, "par.worker"),
                    ev(shift + 10, EventKind::Begin, "task"),
                    ev(shift + 50, EventKind::End, "task"),
                    ev(shift + 60, EventKind::End, "par.worker"),
                ],
            )
        };
        let parallel = TraceInput {
            lanes: vec![worker(2, "w0", 0), worker(3, "w1", 5)],
            dropped_events: 0,
            end_ns: None,
        };
        // jobs=1 shape: the same two tasks inline on the main lane.
        let inline = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(0, EventKind::Begin, "task"),
                    ev(40, EventKind::End, "task"),
                    ev(41, EventKind::Begin, "task"),
                    ev(81, EventKind::End, "task"),
                ],
            )],
            dropped_events: 0,
            end_ns: None,
        };
        let p = Profile::build(&parallel);
        let q = Profile::build(&inline);
        // Jobs-invariant projections agree: span set, calls, flame shape.
        let shape = |p: &Profile| -> Vec<(String, usize, u64)> {
            p.flame
                .iter()
                .map(|f| (f.path.clone(), f.depth, f.calls))
                .collect()
        };
        assert_eq!(shape(&p), shape(&q));
        assert_eq!(shape(&p), vec![("task".to_string(), 0, 2)]);
        assert!(p.spans.iter().all(|s| s.name != "par.worker"));
        // The elided time resurfaces as worker utilization.
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.workers[0].label, "w0");
        assert_eq!(p.workers[0].busy_ns, 60);
        assert_eq!(p.workers[0].stints, 1);
        assert_eq!(p.workers[0].busy_ppm, 60 * 1_000_000 / 65);
        assert!(q.workers.is_empty());
        // Critical path: serial lead-in/out (0) + busiest worker (60).
        assert_eq!(p.critical_path_ns, 60);
        assert_eq!(q.critical_path_ns, q.duration_ns);
    }

    #[test]
    fn worker_labels_merge_across_pool_spawns() {
        // The same w0 label on two different tids (two par_map calls).
        let input = TraceInput {
            lanes: vec![
                lane(
                    2,
                    "w0",
                    vec![
                        ev(0, EventKind::Begin, "par.worker"),
                        ev(10, EventKind::End, "par.worker"),
                    ],
                ),
                lane(
                    5,
                    "w0",
                    vec![
                        ev(50, EventKind::Begin, "par.worker"),
                        ev(90, EventKind::End, "par.worker"),
                    ],
                ),
            ],
            dropped_events: 0,
            end_ns: None,
        };
        let p = Profile::build(&input);
        assert_eq!(p.workers.len(), 1, "one logical worker");
        assert_eq!(p.workers[0].busy_ns, 50);
        assert_eq!(p.workers[0].stints, 2);
        assert_eq!(p.workers[0].longest_idle_ns, 40);
        // Critical path: 40ns uncovered (10..50) + 50ns busiest = 90.
        assert_eq!(p.critical_path_ns, 90);
    }

    #[test]
    fn unclosed_spans_close_at_harvest_clock() {
        let input = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(0, EventKind::Begin, "running"),
                    ev(10, EventKind::Instant, "mark"),
                ],
            )],
            dropped_events: 0,
            end_ns: Some(100),
        };
        let p = Profile::build(&input);
        assert_eq!(p.duration_ns, 100);
        assert_eq!(p.unclosed, 1);
        assert_eq!(p.spans[0].total_ns, 100, "closed at the live clock");
        assert_eq!(p.marks, vec![("mark".to_string(), 1)]);
    }

    #[test]
    fn unmatched_ends_are_counted_not_fatal() {
        let input = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(5, EventKind::End, "lost_begin"),
                    ev(10, EventKind::Begin, "ok"),
                    ev(20, EventKind::End, "ok"),
                ],
            )],
            dropped_events: 3,
            end_ns: None,
        };
        let p = Profile::build(&input);
        assert_eq!(p.unmatched, 1);
        assert_eq!(p.dropped_events, 3);
        assert_eq!(p.spans.len(), 1);
        assert_eq!(p.spans[0].name, "ok");
    }

    #[test]
    fn overrun_detects_misclocked_lanes() {
        // Two disjoint root spans summing past a (forced) short duration
        // cannot happen with a monotone clock; simulate via end_ns below
        // the... duration is max(end_ns, max_ts) so build one lane whose
        // roots overlap: a/b both "root" because b's end precedes a's end
        // is impossible on a stack — instead overlap two roots in time.
        let input = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(0, EventKind::Begin, "a"),
                    ev(90, EventKind::End, "a"),
                    ev(20, EventKind::Begin, "b"),
                    ev(100, EventKind::End, "b"),
                ],
            )],
            dropped_events: 0,
            end_ns: None,
        };
        let p = Profile::build(&input);
        assert_eq!(p.duration_ns, 100);
        let msg = p.overrun.expect("170ns of roots in a 100ns trace");
        assert!(msg.contains("tid 1"), "{msg}");
    }

    #[test]
    fn empty_trace_profiles_to_zeroes() {
        let p = Profile::build(&TraceInput::default());
        assert_eq!(p.duration_ns, 0);
        assert_eq!(p.lanes, 0);
        assert!(p.spans.is_empty() && p.flame.is_empty());
        assert_eq!(p.critical_path_ns, 0);
        assert!(p.top_span().is_none());
    }

    #[test]
    fn flame_order_is_dfs_with_sorted_siblings() {
        let input = TraceInput {
            lanes: vec![lane(
                1,
                "",
                vec![
                    ev(0, EventKind::Begin, "z_root"),
                    ev(1, EventKind::Begin, "b"),
                    ev(2, EventKind::End, "b"),
                    ev(3, EventKind::Begin, "a"),
                    ev(4, EventKind::End, "a"),
                    ev(5, EventKind::End, "z_root"),
                    ev(6, EventKind::Begin, "a_root"),
                    ev(7, EventKind::End, "a_root"),
                ],
            )],
            dropped_events: 0,
            end_ns: None,
        };
        let paths: Vec<String> = Profile::build(&input)
            .flame
            .into_iter()
            .map(|f| f.path)
            .collect();
        assert_eq!(paths, ["a_root", "z_root", "z_root/a", "z_root/b"]);
    }
}
