//! `defender-profile` — trace analytics for the workspace's observability
//! layer.
//!
//! `defender-obs` records span timelines (Chrome trace-event JSON via
//! `--trace`); this crate turns those timelines into answers: *where does
//! the time go?* It consumes the event stream either from a saved trace
//! file ([`TraceInput::from_chrome_trace`]) or live from the in-process
//! rings ([`TraceInput::from_live`]) and produces
//!
//! - a **self-time / total-time aggregation** per span name with call
//!   counts ([`Profile::spans`]),
//! - a **text flamegraph** — the span-path tree, depth-prefixed, siblings
//!   sorted by self-time in the table view ([`Profile::flame`]),
//! - **worker utilization** for the `defender-par` pool: busy fraction
//!   per `w<i>` lane, longest idle gap, and a fork-join critical-path
//!   estimate ([`Profile::workers`], [`Profile::critical_path_ns`]),
//! - a **profile sidecar** in the `BENCH_*.json` schema
//!   (`prof.self_ns.<span>`, `prof.calls.<span>`,
//!   `prof.worker_busy_ppm.w*`) so `defender bench diff` gates span-level
//!   regressions ([`sidecar_json`]),
//! - a **live heartbeat** for long sweeps ([`Progress`]): instances done,
//!   rate, ETA, and the hottest span so far, on stderr.
//!
//! # Jobs invariance
//!
//! The pool's `par.worker` housekeeping spans exist only when worker
//! threads are spawned (`--jobs > 1`), so the analyzer **elides** them:
//! their children splice onto the enclosing path and the frames themselves
//! are redirected into the worker-utilization analysis. As a result the
//! span table and flamegraph shape are identical for every `--jobs N`,
//! and everything jobs-variant (`prof.worker_busy_ppm.w*`) is segregated
//! into the sidecar's `parallelism` section exactly like `par.tasks.w*`.
//!
//! # Examples
//!
//! ```
//! use defender_profile::{Profile, TraceInput};
//!
//! let trace = r#"{"traceEvents": [
//!     {"name": "solve", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
//!     {"name": "pivot", "ph": "B", "ts": 10.0, "pid": 1, "tid": 1},
//!     {"name": "pivot", "ph": "E", "ts": 30.0, "pid": 1, "tid": 1},
//!     {"name": "solve", "ph": "E", "ts": 40.0, "pid": 1, "tid": 1}
//! ], "otherData": {"droppedEvents": 0}}"#;
//! let profile = Profile::build(&TraceInput::from_chrome_trace(trace).unwrap());
//! let solve = profile.spans.iter().find(|s| s.name == "solve").unwrap();
//! assert_eq!(solve.calls, 1);
//! assert_eq!(solve.total_ns, 40_000);
//! assert_eq!(solve.self_ns, 20_000); // 40µs minus the 20µs pivot child
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod analyze;
mod input;
mod progress;
mod render;
mod sidecar;

pub use analyze::{PathAgg, Profile, SpanAgg, WorkerStat};
pub use input::{Lane, LaneEvent, TraceInput};
pub use progress::Progress;
pub use render::{format_ns, to_json, to_table};
pub use sidecar::sidecar_json;
