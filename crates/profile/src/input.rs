//! Trace ingestion: one [`TraceInput`] from either a saved Chrome trace
//! document or the live in-process rings.

use defender_obs::trace::EventKind;

/// One event on one lane, decoupled from the obs-internal buffers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// The span or marker name.
    pub name: String,
}

/// One thread's timeline: its events in recording order plus the lane
/// label (`w<i>` for pool workers, empty for unnamed threads).
#[derive(Clone, Debug, Default)]
pub struct Lane {
    /// The Chrome `tid`.
    pub tid: u64,
    /// The `thread_name` metadata label (empty = unnamed).
    pub label: String,
    /// Events in recording order.
    pub events: Vec<LaneEvent>,
}

/// A complete trace ready for analysis: lanes sorted by tid, plus the
/// drop accounting and (for live harvests) the current clock.
#[derive(Clone, Debug, Default)]
pub struct TraceInput {
    /// Per-thread timelines, sorted by tid.
    pub lanes: Vec<Lane>,
    /// Events lost to ring overflow or exporter contention.
    pub dropped_events: u64,
    /// "Now" in epoch nanoseconds for a live harvest (used to close
    /// still-open spans); `None` for saved traces, where the latest
    /// event timestamp bounds the timeline instead.
    pub end_ns: Option<u64>,
}

impl TraceInput {
    /// Parses a Chrome trace-event JSON document (the object form written
    /// by `defender_obs::trace::chrome_trace_json`).
    ///
    /// Unknown phases are skipped (the profiler consumes `B`/`E`/`i` and
    /// `thread_name` metadata only), so traces from other producers load
    /// as long as the envelope matches.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not valid JSON, lacks a
    /// `traceEvents` array, or an event is missing `name`/`ph`/`tid`
    /// (or `ts` for timed phases).
    pub fn from_chrome_trace(text: &str) -> Result<TraceInput, String> {
        let doc = defender_obs::json::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or("missing array field `traceEvents`")?;
        let dropped_events = doc
            .get("otherData")
            .and_then(|v| v.get("droppedEvents"))
            .and_then(defender_obs::json::JsonValue::as_u64)
            .unwrap_or(0);
        let mut lanes: std::collections::BTreeMap<u64, Lane> = std::collections::BTreeMap::new();
        for (i, event) in events.iter().enumerate() {
            let name = event
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or(format!("traceEvents[{i}]: missing string field `name`"))?;
            let ph = event
                .get("ph")
                .and_then(|v| v.as_str())
                .ok_or(format!("traceEvents[{i}]: missing string field `ph`"))?;
            let tid = event
                .get("tid")
                .and_then(defender_obs::json::JsonValue::as_u64)
                .ok_or(format!("traceEvents[{i}]: missing integer field `tid`"))?;
            if ph == "M" {
                if name == "thread_name" {
                    if let Some(label) = event.get("args").and_then(|a| a.get("name")) {
                        let lane = lanes.entry(tid).or_default();
                        lane.tid = tid;
                        lane.label = label.as_str().unwrap_or("").to_string();
                    }
                }
                continue;
            }
            let kind = match ph {
                "B" => EventKind::Begin,
                "E" => EventKind::End,
                // lint: allow(determinism) trace phase code, not a clock read
                "i" => EventKind::Instant,
                _ => continue,
            };
            let ts = event
                .get("ts")
                .and_then(defender_obs::json::JsonValue::as_f64)
                .ok_or(format!("traceEvents[{i}]: missing number field `ts`"))?;
            // Chrome's ts unit is microseconds with fractional nanoseconds.
            let ts_ns = (ts * 1_000.0).round().max(0.0) as u64;
            let lane = lanes.entry(tid).or_default();
            lane.tid = tid;
            lane.events.push(LaneEvent {
                ts_ns,
                kind,
                name: name.to_string(),
            });
        }
        Ok(TraceInput {
            lanes: lanes.into_values().collect(),
            dropped_events,
            end_ns: None,
        })
    }

    /// Harvests the live in-process trace rings (non-destructively), for
    /// profiling a run from inside the run — the `--profile` flag on the
    /// experiment binaries and the heartbeat's hottest-span readout.
    ///
    /// Spans still open at harvest time are closed at the current clock
    /// ([`defender_obs::trace::elapsed_ns`]) by the analyzer.
    #[must_use]
    pub fn from_live() -> TraceInput {
        let lanes = defender_obs::trace::snapshot_threads()
            .into_iter()
            .map(|snapshot| Lane {
                tid: snapshot.tid,
                label: snapshot.label,
                events: snapshot
                    .events
                    .into_iter()
                    .map(|e| LaneEvent {
                        ts_ns: e.ts_ns,
                        kind: e.kind,
                        name: e.name.to_string(),
                    })
                    .collect(),
            })
            .collect();
        TraceInput {
            lanes,
            dropped_events: defender_obs::trace::dropped_events(),
            end_ns: Some(defender_obs::trace::elapsed_ns()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests touching the process-global trace rings serialize here
    /// (crate-local is enough: each test binary is its own process).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parses_lanes_labels_and_drops() {
        let text = r#"{"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 7, "args": {"name": "w0"}},
            {"name": "a", "ph": "B", "ts": 1.5, "pid": 1, "tid": 7},
            {"name": "a", "ph": "E", "ts": 2.5, "pid": 1, "tid": 7},
            {"name": "mark", "ph": "i", "ts": 0.25, "pid": 1, "tid": 3, "s": "t"}
        ], "displayTimeUnit": "ns", "otherData": {"droppedEvents": 4}}"#;
        let input = TraceInput::from_chrome_trace(text).unwrap();
        assert_eq!(input.dropped_events, 4);
        assert_eq!(input.end_ns, None);
        assert_eq!(input.lanes.len(), 2);
        assert_eq!(input.lanes[0].tid, 3, "lanes sorted by tid");
        assert_eq!(input.lanes[0].events[0].kind, EventKind::Instant);
        assert_eq!(input.lanes[0].events[0].ts_ns, 250);
        assert_eq!(input.lanes[1].label, "w0");
        assert_eq!(input.lanes[1].events[0].ts_ns, 1_500);
        assert_eq!(input.lanes[1].events[1].name, "a");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(TraceInput::from_chrome_trace("[]").is_err(), "no envelope");
        let no_ph = r#"{"traceEvents": [{"name": "a", "ts": 1, "tid": 1}]}"#;
        assert!(TraceInput::from_chrome_trace(no_ph).is_err());
        let no_ts = r#"{"traceEvents": [{"name": "a", "ph": "B", "tid": 1}]}"#;
        assert!(TraceInput::from_chrome_trace(no_ts).is_err());
        let no_tid = r#"{"traceEvents": [{"name": "a", "ph": "B", "ts": 1}]}"#;
        assert!(TraceInput::from_chrome_trace(no_tid).is_err());
    }

    #[test]
    fn unknown_phases_are_skipped_not_fatal() {
        let text = r#"{"traceEvents": [
            {"name": "x", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 1},
            {"name": "a", "ph": "B", "ts": 3, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 4, "pid": 1, "tid": 1}
        ]}"#;
        let input = TraceInput::from_chrome_trace(text).unwrap();
        assert_eq!(input.lanes.len(), 1);
        assert_eq!(input.lanes[0].events.len(), 2, "X phase ignored");
    }

    #[test]
    fn live_harvest_round_trips_the_rings() {
        let _guard = lock();
        defender_obs::trace::clear();
        defender_obs::trace::start();
        {
            let _s = defender_obs::span!("live_outer");
            defender_obs::trace::instant("live_mark");
        }
        let input = TraceInput::from_live();
        defender_obs::trace::stop();
        defender_obs::trace::clear();
        let lane = input
            .lanes
            .iter()
            .find(|l| l.events.iter().any(|e| e.name == "live_outer"))
            .expect("recording lane present");
        let names: Vec<&str> = lane.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["live_outer", "live_mark", "live_outer"]);
        let end = input.end_ns.expect("live harvests carry the clock");
        assert!(lane.events.iter().all(|e| e.ts_ns <= end));
    }
}
