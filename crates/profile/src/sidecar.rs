//! The profile sidecar: a `BENCH_*.json`-schema document so
//! `defender bench diff` gates span-level regressions.

use defender_obs::json::{JsonArray, JsonObject};

use crate::analyze::Profile;

/// Renders `profile` as a `BENCH_*.json` sidecar document for
/// `experiment` (e.g. `profile_e1`).
///
/// Schema (see EXPERIMENTS.md "Profile sidecar schema"):
///
/// - `counters` holds `prof.calls.<span>` (jobs-invariant, exact) and
///   `prof.self_ns.<span>` (machine-sensitive — committed baselines prune
///   these so the gate judges calls exactly and treats fresh self-times
///   as informational new rows);
/// - `parallelism` holds the jobs-variant `prof.worker_busy_ppm.w*`,
///   segregated exactly like `par.tasks.w*` in experiment sidecars.
#[must_use]
pub fn sidecar_json(profile: &Profile, experiment: &str) -> String {
    let mut counters = JsonObject::new();
    for s in &profile.spans {
        counters.field_u64(&format!("prof.calls.{}", s.name), s.calls);
    }
    for s in &profile.spans {
        counters.field_u64(&format!("prof.self_ns.{}", s.name), s.self_ns);
    }
    let mut parallelism = JsonObject::new();
    for w in &profile.workers {
        parallelism.field_u64(&format!("prof.worker_busy_ppm.{}", w.label), w.busy_ppm);
    }
    let mut root = JsonObject::new();
    root.field_str("experiment", experiment);
    root.field_raw("phases", &JsonArray::new().finish());
    root.field_raw("counters", &counters.finish());
    root.field_raw("parallelism", &parallelism.finish());
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{SpanAgg, WorkerStat};

    #[test]
    fn sidecar_matches_the_bench_schema() {
        let profile = Profile {
            duration_ns: 100,
            spans: vec![SpanAgg {
                name: "e1.solve".to_string(),
                calls: 7,
                self_ns: 42,
                total_ns: 50,
            }],
            workers: vec![WorkerStat {
                label: "w0".to_string(),
                busy_ns: 80,
                busy_ppm: 800_000,
                stints: 1,
                longest_idle_ns: 0,
            }],
            ..Profile::default()
        };
        let json = sidecar_json(&profile, "profile_e1");
        assert!(json.contains(r#""experiment": "profile_e1""#), "{json}");
        assert!(json.contains(r#""phases": []"#));
        assert!(json.contains(r#""prof.calls.e1.solve": 7"#));
        assert!(json.contains(r#""prof.self_ns.e1.solve": 42"#));
        // Jobs-variant worker stats stay out of `counters`.
        let doc = defender_obs::json::parse(&json).unwrap();
        let counters = doc.get("counters").unwrap().as_object().unwrap();
        assert!(counters.iter().all(|(k, _)| !k.contains("worker_busy")));
        let par = doc.get("parallelism").unwrap().as_object().unwrap();
        assert_eq!(par.len(), 1);
        assert_eq!(par[0].0, "prof.worker_busy_ppm.w0");
    }
}
