//! `defender-obs` — zero-dependency instrumentation for the workspace.
//!
//! The ROADMAP's north star is a system whose hot paths get *measurably*
//! faster PR over PR; this crate is the measuring stick. It provides:
//!
//! - **monotonic counters** ([`counter!`]) and **gauges** ([`gauge!`]) as
//!   lock-free static handles registered on first touch;
//! - **value histograms** with fixed log2 buckets ([`histogram!`]);
//! - **hierarchical spans** ([`span!`]): RAII guards with thread-local
//!   nesting that record wall-time per `parent/child/...` path into log2
//!   duration histograms;
//! - **event-level tracing** ([`trace`]): bounded per-thread ring buffers
//!   of begin/end/instant events fed automatically by [`span!`] sites,
//!   exported as Chrome trace-event JSON for Perfetto timelines;
//! - two exporters over a consistent [`Snapshot`]: a human-readable table
//!   ([`Snapshot::to_table`]) and a hand-rolled, stable, machine-diffable
//!   JSON document ([`Snapshot::to_json`]; no serde — the build
//!   environment has no crates.io access, so the whole crate is std-only);
//! - a global **enable gate**: instrumentation is *off* by default and
//!   every handle checks one relaxed [`AtomicBool`] load before doing any
//!   work, so disabled overhead is a branch per call site.
//!
//! Span-naming convention (see DESIGN.md §Observability): one span per
//! paper-algorithm step, nested under the algorithm's own span — e.g.
//! `a_tuple/step1_matching_ne`, `a_tuple/step3_cyclic_tuples`. Counter
//! names are dotted `crate.component.event` paths, e.g.
//! `lp.simplex.pivots`, `matching.blossom.augmentations`.
//!
//! # Examples
//!
//! ```
//! use defender_obs as obs;
//!
//! obs::enable();
//! {
//!     let _outer = obs::span!("demo");
//!     let _inner = obs::span!("inner_step");
//!     obs::counter!("demo.events").add(3);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo.events"), Some(3));
//! assert!(snap.to_json().contains("\"demo/inner_step\""));
//! obs::disable();
//! obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod json;
pub mod telemetry;
pub mod trace;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
// lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
use std::time::{Duration, Instant};

/// Number of log2 buckets in every histogram: bucket `i` counts values
/// `v` with `floor(log2(max(v, 1))) == i`, i.e. `v` in `[2^i, 2^(i+1))`.
pub const BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns instrumentation off; handles become branch-and-return stubs.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether instrumentation is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Per-thread counter routing: capture & suppression
// ---------------------------------------------------------------------------

/// Where this thread's counter increments go. `Normal` hits the global
/// cells; `Capture` diverts counter deltas into a thread-local map (and
/// drops gauge/histogram writes, which are not replayable scalars);
/// `Suppress` drops everything. Both are strictly thread-local: worker
/// threads of a pool are never affected by the caller's mode, which is
/// why capture is only sound around code with no internal parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadMode {
    Normal,
    Capture,
    Suppress,
}

thread_local! {
    static MODE: Cell<ThreadMode> = const { Cell::new(ThreadMode::Normal) };
    static CAPTURED: RefCell<BTreeMap<String, u64>> = const { RefCell::new(BTreeMap::new()) };
}

/// Restores the previous thread mode even if the wrapped closure panics,
/// so an experiment assertion inside a captured region cannot leave the
/// thread silently swallowing counters.
struct ModeGuard {
    prior: ThreadMode,
}

impl ModeGuard {
    fn enter(mode: ThreadMode) -> ModeGuard {
        let prior = MODE.with(Cell::get);
        MODE.with(|m| m.set(mode));
        ModeGuard { prior }
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        MODE.with(|m| m.set(self.prior));
    }
}

/// Runs `f` with this thread's counter increments diverted into a local
/// buffer, returning `f`'s result and the sorted `(name, delta)` pairs
/// recorded while it ran. Gauge and histogram writes inside the region
/// are dropped (they are not replayable sums). Nested captures compose:
/// the inner capture sees only its own deltas, and nothing leaks to the
/// outer buffer or the global cells.
///
/// The canonical-solve memoization in `defender-cache` is the intended
/// customer: it captures the counter cost of solving one canonical
/// representative, then replays those deltas (via [`replay_counters`])
/// once per instance on both hits and misses, making the main counter
/// section independent of cache state.
pub fn captured<T>(f: impl FnOnce() -> T) -> (T, Vec<(String, u64)>) {
    let guard = ModeGuard::enter(ThreadMode::Capture);
    let prior_map = CAPTURED.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let result = f();
    let deltas = CAPTURED.with(|c| std::mem::replace(&mut *c.borrow_mut(), prior_map));
    drop(guard);
    (result, deltas.into_iter().collect())
}

/// Runs `f` with every counter, gauge, and histogram write on this
/// thread dropped. Spans and traces still record (wall time is never
/// judged for determinism). Used for re-verification of cached results,
/// whose cost must not perturb the counters of the run being measured.
pub fn suppressed<T>(f: impl FnOnce() -> T) -> T {
    let _guard = ModeGuard::enter(ThreadMode::Suppress);
    f()
}

/// A counter handle resolved from a runtime name, memoized process-wide
/// so each distinct name leaks exactly one cell. The replay half of
/// [`captured`]; prefer [`counter!`] for compile-time names.
#[must_use]
pub fn counter_by_name(name: &str) -> &'static Metric {
    static BY_NAME: OnceLock<Mutex<BTreeMap<String, &'static Metric>>> = OnceLock::new();
    let map = BY_NAME.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(metric) = map.get(name) {
        metric
    } else {
        let metric = leaked_counter(name.to_string());
        map.insert(name.to_string(), metric);
        metric
    }
}

/// Adds each `(name, delta)` pair to the matching global counter —
/// the replay half of a [`captured`] region.
pub fn replay_counters(deltas: &[(String, u64)]) {
    for (name, delta) in deltas {
        counter_by_name(name).add(*delta);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// What kind of scalar a [`Metric`] handle holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
}

/// A static counter/gauge cell; create via [`counter!`] or [`gauge!`].
#[derive(Debug)]
pub struct Metric {
    name: &'static str,
    kind: Kind,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Metric {
    #[doc(hidden)]
    #[must_use]
    pub const fn new_counter(name: &'static str) -> Metric {
        Metric {
            name,
            kind: Kind::Counter,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[doc(hidden)]
    #[must_use]
    pub const fn new_gauge(name: &'static str) -> Metric {
        Metric {
            name,
            kind: Kind::Gauge,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry()
                .metrics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(self);
        }
    }

    /// Adds `n` (counters; no-op while disabled). Respects the calling
    /// thread's [`captured`]/[`suppressed`] mode.
    pub fn add(&'static self, n: u64) {
        if enabled() {
            match MODE.with(Cell::get) {
                ThreadMode::Normal => {
                    self.ensure_registered();
                    self.value.fetch_add(n, Ordering::Relaxed);
                }
                ThreadMode::Capture => {
                    if self.kind == Kind::Counter {
                        CAPTURED.with(|c| {
                            *c.borrow_mut().entry(self.name.to_string()).or_insert(0) += n;
                        });
                    }
                }
                ThreadMode::Suppress => {}
            }
        }
    }

    /// Adds 1 (counters; no-op while disabled).
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Overwrites the value (gauges; no-op while disabled or while the
    /// thread is in a [`captured`]/[`suppressed`] region).
    pub fn set(&'static self, v: u64) {
        if enabled() && MODE.with(Cell::get) == ThreadMode::Normal {
            self.ensure_registered();
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is below it (no-op while disabled or
    /// while the thread is in a [`captured`]/[`suppressed`] region).
    pub fn set_max(&'static self, v: u64) {
        if enabled() && MODE.with(Cell::get) == ThreadMode::Normal {
            self.ensure_registered();
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value (reads work even while disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Creates a counter whose name is only known at runtime (e.g. one cell
/// per pool worker), leaking both the name and the cell so the handle
/// satisfies the registry's `'static` contract.
///
/// Intended for small, bounded families of names (worker indices, shard
/// ids) — each distinct name leaks once for the life of the process, so
/// callers should cache the returned handle. Prefer [`counter!`] whenever
/// the name is a compile-time constant.
#[must_use]
pub fn leaked_counter(name: String) -> &'static Metric {
    Box::leak(Box::new(Metric::new_counter(name.leak())))
}

/// A static log2-bucket value histogram; create via [`histogram!`].
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

/// Index of the log2 bucket for `v`: 0 for 0 and 1, else `floor(log2 v)`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// The value range `[lo, hi)` covered by log2 bucket `i`: bucket 0 holds
/// 0 and 1, bucket `i > 0` holds `[2^i, 2^(i+1))`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 2.0)
    } else {
        ((1u64 << i) as f64, (1u64 << i) as f64 * 2.0)
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    #[doc(hidden)]
    #[must_use]
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry()
                .histograms
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(self);
        }
    }

    /// Records one value (no-op while disabled or while the thread is in
    /// a [`captured`]/[`suppressed`] region).
    pub fn record(&'static self, v: u64) {
        if enabled() && MODE.with(Cell::get) == ThreadMode::Normal {
            self.ensure_registered();
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a wall-time duration in nanoseconds (no-op while disabled).
    pub fn record_duration(&'static self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Aggregated statistics of one span path (or one named histogram).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistStat {
    /// Span path (`a/b/c`) or histogram name.
    pub name: String,
    /// Number of recorded values (span exits).
    pub count: u64,
    /// Sum of recorded values (for spans: total nanoseconds).
    pub sum: u64,
    /// Non-empty log2 buckets as `(bucket_index, count)`.
    pub buckets: Vec<(usize, u64)>,
}

impl HistStat {
    /// Mean recorded value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the log2 buckets
    /// by linear interpolation inside the bucket holding the target rank.
    ///
    /// Log2 buckets bound the relative error of the estimate by 2x, which
    /// is exactly the resolution the regression gate cares about. Degenerate
    /// histograms short-circuit: an empty one reports 0, a single sample
    /// reports its exact value (`sum`), and a single-bucket one reports the
    /// mean clamped to the bucket — the buckets carry no spread information
    /// in those cases, so rank interpolation would fabricate p50 < p99.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            return self.sum as f64;
        }
        if let [(i, _)] = self.buckets[..] {
            let (lo, hi) = bucket_bounds(i);
            return self.mean().clamp(lo, hi);
        }
        let rank = q.clamp(0.0, 1.0) * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            let hi_rank = (seen + c) as f64;
            if rank < hi_rank || (seen + c) == self.count {
                let (lo, hi) = bucket_bounds(i);
                let frac = if c == 0 {
                    0.5
                } else {
                    ((rank - seen as f64 + 0.5) / c as f64).clamp(0.0, 1.0)
                };
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        0.0
    }

    /// Folds another histogram of the *same quantity* into this one:
    /// counts and sums add, and log2 buckets merge index-by-index.
    ///
    /// Because log2 bucketing is a pure function of each recorded value,
    /// merging the per-shard histograms of a partitioned workload yields
    /// exactly the histogram a single process recording every value would
    /// have produced — so the percentile *estimates* of a merged snapshot
    /// match a single-process run on the same workload, not merely
    /// approximate it. Merging is associative and commutative with the
    /// empty histogram as identity (see the `snapshot_merge` tests).
    pub fn merge_from(&mut self, other: &HistStat) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *merged.entry(i).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Median estimate — see [`HistStat::percentile`].
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate — see [`HistStat::percentile`].
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate — see [`HistStat::percentile`].
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

#[derive(Clone, Debug)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for SpanStat {
    fn default() -> SpanStat {
        SpanStat {
            count: 0,
            total_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

#[derive(Default)]
struct Registry {
    metrics: Mutex<Vec<&'static Metric>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Zeroes every registered counter, gauge, histogram and span statistic.
///
/// Handles stay registered, so a reset between runs keeps stable output
/// ordering. Typically called right after [`enable`] at the start of a
/// measured run.
pub fn reset() {
    let reg = registry();
    for m in reg
        .metrics
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        m.value.store(0, Ordering::Relaxed);
    }
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
    reg.spans
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span!`]; records elapsed wall time for its
/// full `parent/child` path when dropped, and emits begin/end events to
/// the [`trace`] ring buffers when event tracing is on. While both the
/// metrics and tracing gates are off the guard is inert (no clock read,
/// no allocation).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named guard"]
pub struct SpanGuard {
    // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
    start: Option<Instant>,
    name: &'static str,
    traced: bool,
}

/// Enters a span named `name`; prefer the [`span!`] macro.
pub fn enter_span(name: &'static str) -> SpanGuard {
    let metrics = enabled();
    let traced = trace::enabled();
    if !metrics && !traced {
        return SpanGuard {
            start: None,
            name,
            traced: false,
        };
    }
    if traced {
        trace::record_begin(name);
    }
    if !metrics {
        return SpanGuard {
            start: None,
            name,
            traced,
        };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
        start: Some(Instant::now()),
        name,
        traced,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.traced {
            // Unconditional: a traced begin always gets its end, even if
            // `trace::stop()` ran while the span was live, so exported
            // timelines never contain an unbalanced stack.
            trace::record_end(self.name);
        }
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut spans = registry()
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stat = spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
        stat.buckets[bucket_index(ns)] += 1;
    }
}

/// Opens a hierarchical wall-time span for the enclosing scope.
///
/// ```
/// # use defender_obs as obs;
/// obs::enable();
/// let _span = obs::span!("my_phase");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter_span($name)
    };
}

/// Declares (once per call site) and returns a static monotonic counter.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static METRIC: $crate::Metric = $crate::Metric::new_counter($name);
        &METRIC
    }};
}

/// Declares (once per call site) and returns a static gauge.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static METRIC: $crate::Metric = $crate::Metric::new_gauge($name);
        &METRIC
    }};
}

/// Declares (once per call site) and returns a static log2 histogram.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &HISTOGRAM
    }};
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// A point-in-time copy of the whole registry, ready for export.
///
/// Counters and gauges are aggregated by name (two call sites sharing a
/// name sum), and all sections are sorted by name so repeated exports of
/// identical state are byte-identical — the property the `BENCH_*.json`
/// trajectory diffs rely on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Named value histograms, sorted by name.
    pub histograms: Vec<HistStat>,
    /// Span statistics keyed by `parent/child` path, sorted by path;
    /// `sum` is total nanoseconds.
    pub spans: Vec<HistStat>,
}

/// Captures the current registry contents.
#[must_use]
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    for m in reg
        .metrics
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        let slot = match m.kind {
            Kind::Counter => counters.entry(m.name.to_string()).or_insert(0),
            Kind::Gauge => gauges.entry(m.name.to_string()).or_insert(0),
        };
        *slot += m.get();
    }
    let mut histograms: BTreeMap<String, HistStat> = BTreeMap::new();
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        let stat = histograms
            .entry(h.name.to_string())
            .or_insert_with(|| HistStat {
                name: h.name.to_string(),
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            });
        stat.count += h.count.load(Ordering::Relaxed);
        stat.sum += h.sum.load(Ordering::Relaxed);
        let mut merged: BTreeMap<usize, u64> = stat.buckets.iter().copied().collect();
        for (i, b) in h.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                *merged.entry(i).or_insert(0) += v;
            }
        }
        stat.buckets = merged.into_iter().collect();
    }
    let spans = reg
        .spans
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(path, s)| HistStat {
            name: path.clone(),
            count: s.count,
            sum: s.total_ns,
            buckets: s
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        })
        .collect();
    Snapshot {
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().collect(),
        histograms: histograms.into_values().collect(),
        spans,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl Snapshot {
    /// The value of counter `name`, if it was ever touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if it was ever touched.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The statistics of span path `path`, if it was ever exited.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&HistStat> {
        self.spans.iter().find(|s| s.name == path)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the snapshot as a human-readable table.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded — is instrumentation enabled?)\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .chain(self.spans.iter().map(|s| s.name.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} sum={} mean={:.1} p50={:.1} p90={:.1} p99={:.1}",
                    h.name,
                    h.count,
                    h.sum,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99()
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall time):\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} total={} mean={} p50={} p90={} p99={}",
                    s.name,
                    s.count,
                    format_ns(s.sum as f64),
                    format_ns(s.mean()),
                    format_ns(s.p50()),
                    format_ns(s.p90()),
                    format_ns(s.p99())
                );
            }
        }
        out
    }

    /// Renders the snapshot as a stable JSON document (sorted keys, no
    /// trailing whitespace) suitable for machine diffing across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = json::JsonObject::new();
        let mut counters = json::JsonObject::new();
        for (name, value) in &self.counters {
            counters.field_u64(name, *value);
        }
        root.field_raw("counters", &counters.finish());
        let mut gauges = json::JsonObject::new();
        for (name, value) in &self.gauges {
            gauges.field_u64(name, *value);
        }
        root.field_raw("gauges", &gauges.finish());
        let hist_json = |stats: &[HistStat]| {
            let mut arr = json::JsonArray::new();
            for s in stats {
                let mut obj = json::JsonObject::new();
                obj.field_str("name", &s.name);
                obj.field_u64("count", s.count);
                obj.field_u64("sum", s.sum);
                obj.field_f64("p50", s.p50());
                obj.field_f64("p90", s.p90());
                obj.field_f64("p99", s.p99());
                let mut buckets = json::JsonArray::new();
                for &(i, c) in &s.buckets {
                    let mut b = json::JsonObject::new();
                    b.field_u64("log2", i as u64);
                    b.field_u64("count", c);
                    buckets.push_raw(&b.finish());
                }
                obj.field_raw("buckets", &buckets.finish());
                arr.push_raw(&obj.finish());
            }
            arr.finish()
        };
        root.field_raw("histograms", &hist_json(&self.histograms));
        root.field_raw("spans", &hist_json(&self.spans));
        root.finish()
    }

    /// Folds `other` into `self`, producing the snapshot a single process
    /// doing both workloads would have recorded:
    ///
    /// - **counters** sum by name (monotonic event tallies are additive
    ///   over a partitioned workload);
    /// - **gauges** take the per-name maximum (a gauge is a level, not a
    ///   tally — `par.jobs` across shards is "the widest pool seen");
    /// - **histograms** and **spans** merge per name via
    ///   [`HistStat::merge_from`] (counts/sums add, log2 buckets merge
    ///   index-by-index), so percentile estimates of the merged snapshot
    ///   equal those of a single-process run over the union of values.
    ///
    /// Merging is associative and commutative, with `Snapshot::default()`
    /// as the identity — the properties the out-of-process sweep runner
    /// relies on to make its merged output independent of shard width and
    /// merge order. All sections stay sorted by name, so `to_json` of a
    /// merged snapshot is byte-stable.
    pub fn merge_from(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, value) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += value;
        }
        self.counters = counters.into_iter().collect();
        let mut gauges: BTreeMap<String, u64> = self.gauges.drain(..).collect();
        for (name, value) in &other.gauges {
            let slot = gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        self.gauges = gauges.into_iter().collect();
        let merge_stats = |into: &mut Vec<HistStat>, from: &[HistStat]| {
            let mut by_name: BTreeMap<String, HistStat> =
                into.drain(..).map(|h| (h.name.clone(), h)).collect();
            for h in from {
                by_name
                    .entry(h.name.clone())
                    .or_insert_with(|| HistStat {
                        name: h.name.clone(),
                        count: 0,
                        sum: 0,
                        buckets: Vec::new(),
                    })
                    .merge_from(h);
            }
            *into = by_name.into_values().collect();
        };
        merge_stats(&mut self.histograms, &other.histograms);
        merge_stats(&mut self.spans, &other.spans);
    }

    /// [`Snapshot::merge_from`] as a value-returning fold step.
    #[must_use]
    pub fn merged(mut self, other: &Snapshot) -> Snapshot {
        self.merge_from(other);
        self
    }
}

/// Obs tests mutate process-global state (the gates + registries), so the
/// lib and trace test modules serialize on one shared mutex to stay
/// independent of `--test-threads`.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every power of two starts its own bucket.
        for i in 0..63 {
            assert_eq!(bucket_index(1u64 << i), usize::from(i > 0) * i);
            assert_eq!(bucket_index((1u64 << i) + 1), if i == 0 { 1 } else { i });
        }
    }

    #[test]
    fn counters_disabled_by_default_then_count() {
        let _guard = lock();
        reset();
        disable();
        let c = counter!("test.gated");
        c.incr();
        assert_eq!(c.get(), 0, "disabled increments are dropped");
        enable();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        disable();
        reset();
    }

    #[test]
    fn captured_diverts_counters_and_replays() {
        let _guard = lock();
        reset();
        enable();
        let c = counter!("test.capture.cell");
        c.add(2);
        let (out, deltas) = captured(|| {
            c.add(5);
            counter!("test.capture.other").incr();
            gauge!("test.capture.gauge").set(9);
            histogram!("test.capture.hist").record(4);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(
            deltas,
            vec![
                ("test.capture.cell".to_string(), 5),
                ("test.capture.other".to_string(), 1),
            ]
        );
        assert_eq!(c.get(), 2, "captured increments stay out of the cell");
        let snap = snapshot();
        assert_eq!(snap.gauge("test.capture.gauge"), None, "gauges dropped");
        assert!(
            !snap
                .histograms
                .iter()
                .any(|h| h.name == "test.capture.hist" && h.count > 0),
            "histograms dropped"
        );
        replay_counters(&deltas);
        let snap = snapshot();
        assert_eq!(
            snap.counter("test.capture.cell"),
            Some(7),
            "replay lands under the same name (snapshot sums cells by name)"
        );
        assert_eq!(snap.counter("test.capture.other"), Some(1));
        disable();
        reset();
    }

    #[test]
    fn captured_regions_nest_without_leaking() {
        let _guard = lock();
        reset();
        enable();
        let c = counter!("test.capture.nested");
        let (_, outer) = captured(|| {
            c.add(1);
            let ((), inner) = captured(|| c.add(10));
            assert_eq!(inner, vec![("test.capture.nested".to_string(), 10)]);
            c.add(2);
        });
        assert_eq!(outer, vec![("test.capture.nested".to_string(), 3)]);
        assert_eq!(c.get(), 0);
        disable();
        reset();
    }

    #[test]
    fn suppressed_drops_everything_and_restores_mode() {
        let _guard = lock();
        reset();
        enable();
        let c = counter!("test.suppress.cell");
        suppressed(|| {
            c.add(100);
            gauge!("test.suppress.gauge").set_max(5);
            histogram!("test.suppress.hist").record(2);
        });
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(c.get(), 1, "normal routing resumes after the region");
        disable();
        reset();
    }

    #[test]
    fn counter_by_name_memoizes_one_cell_per_name() {
        let _guard = lock();
        reset();
        enable();
        let a = counter_by_name("test.byname.cell");
        let b = counter_by_name("test.byname.cell");
        assert!(std::ptr::eq(a, b), "same name resolves to the same cell");
        a.add(3);
        b.add(4);
        assert_eq!(snapshot().counter("test.byname.cell"), Some(7));
        disable();
        reset();
    }

    #[test]
    fn gauges_set_and_max() {
        let _guard = lock();
        reset();
        enable();
        let g = gauge!("test.gauge");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        assert_eq!(snapshot().gauge("test.gauge"), Some(11));
        disable();
        reset();
    }

    #[test]
    fn histogram_buckets_values() {
        let _guard = lock();
        reset();
        enable();
        let h = histogram!("test.hist");
        for v in [1u64, 2, 3, 900, 1000] {
            h.record(v);
        }
        let snap = snapshot();
        let stat = snap
            .histograms
            .iter()
            .find(|s| s.name == "test.hist")
            .unwrap();
        assert_eq!(stat.count, 5);
        assert_eq!(stat.sum, 1906);
        assert_eq!(stat.buckets, vec![(0, 1), (1, 2), (9, 2)]);
        disable();
        reset();
    }

    #[test]
    fn bucket_bounds_cover_the_line() {
        assert_eq!(bucket_bounds(0), (0.0, 2.0));
        assert_eq!(bucket_bounds(1), (2.0, 4.0));
        assert_eq!(bucket_bounds(10), (1024.0, 2048.0));
        for i in 0..63 {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi);
            assert_eq!(bucket_bounds(i + 1).0, hi, "contiguous at {i}");
        }
    }

    #[test]
    fn percentiles_estimate_from_buckets() {
        let empty = HistStat {
            name: "empty".into(),
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);
        // 100 values in bucket 4 ([16, 32)) summing to 2000: one bucket
        // carries no spread, so every percentile is the mean.
        let uniform = HistStat {
            name: "u".into(),
            count: 100,
            sum: 2000,
            buckets: vec![(4, 100)],
        };
        for p in [uniform.p50(), uniform.p90(), uniform.p99()] {
            assert_eq!(p, 20.0, "single-bucket percentiles collapse to mean");
        }
        // 90 tiny values and 10 huge ones: p50 is tiny, p99 is huge.
        let skewed = HistStat {
            name: "s".into(),
            count: 100,
            sum: 0,
            buckets: vec![(0, 90), (20, 10)],
        };
        assert!(skewed.p50() < 2.0, "{}", skewed.p50());
        let (lo, hi) = bucket_bounds(20);
        let p99 = skewed.p99();
        assert!((lo..hi).contains(&p99), "{p99}");
    }

    #[test]
    fn degenerate_histograms_do_not_extrapolate() {
        // One sample: percentiles are the sample itself, exactly.
        let single = HistStat {
            name: "one".into(),
            count: 1,
            sum: 1_000_003,
            buckets: vec![(bucket_index(1_000_003), 1)],
        };
        for p in [single.p50(), single.p90(), single.p99()] {
            assert_eq!(p, 1_000_003.0);
        }
        // All samples in one bucket but with a mean outside the bucket
        // (possible only via inconsistent inputs): clamp, never escape.
        let inconsistent = HistStat {
            name: "clamped".into(),
            count: 2,
            sum: 1_000_000,
            buckets: vec![(4, 2)],
        };
        assert_eq!(inconsistent.p99(), 32.0, "clamped to the bucket's top");
        // Two buckets keep the interpolating path: p50 below p99.
        let spread = HistStat {
            name: "two".into(),
            count: 10,
            sum: 0,
            buckets: vec![(2, 5), (8, 5)],
        };
        assert!(spread.p50() < spread.p99());
    }

    #[test]
    fn exports_carry_percentiles() {
        let _guard = lock();
        reset();
        enable();
        let h = histogram!("test.pct");
        for v in 0..64u64 {
            h.record(v);
        }
        let snap = snapshot();
        assert!(snap.to_table().contains("p99="));
        assert!(snap.to_json().contains("\"p99\": "));
        disable();
        reset();
    }

    #[test]
    fn span_nesting_builds_paths() {
        let _guard = lock();
        reset();
        enable();
        {
            let _a = span!("outer");
            {
                let _b = span!("mid");
                let _c = span!("leaf");
            }
            {
                let _b2 = span!("mid");
            }
        }
        let snap = snapshot();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("outer/mid").unwrap().count, 2);
        assert_eq!(snap.span("outer/mid/leaf").unwrap().count, 1);
        assert!(
            snap.span("mid").is_none(),
            "children never leak to the root"
        );
        disable();
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = lock();
        reset();
        disable();
        {
            let _a = span!("ghost");
        }
        assert!(snapshot().span("ghost").is_none());
        reset();
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        let _guard = lock();
        reset();
        enable();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        counter!("test.concurrent").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().counter("test.concurrent"), Some(80_000));
        disable();
        reset();
    }

    #[test]
    fn snapshot_aggregates_same_name_call_sites() {
        let _guard = lock();
        reset();
        enable();
        counter!("test.same").add(2);
        counter!("test.same").add(3); // distinct static cell, same name
        assert_eq!(snapshot().counter("test.same"), Some(5));
        disable();
        reset();
    }

    #[test]
    fn reset_zeroes_everything() {
        let _guard = lock();
        reset();
        enable();
        counter!("test.reset").incr();
        histogram!("test.reset_hist").record(9);
        {
            let _s = span!("test_reset_span");
        }
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("test.reset"), Some(0));
        assert!(snap.spans.is_empty());
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.reset_hist")
            .unwrap();
        assert_eq!((h.count, h.sum, h.buckets.len()), (0, 0, 0));
        disable();
        reset();
    }

    #[test]
    fn json_export_is_stable_and_escaped() {
        let _guard = lock();
        reset();
        enable();
        counter!("test.json\"quoted\"").incr();
        {
            let _s = span!("json_span");
        }
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a.to_json(), b.to_json(), "identical state, identical bytes");
        let doc = a.to_json();
        assert!(doc.contains(r#""test.json\"quoted\"": 1"#), "{doc}");
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        disable();
        reset();
    }

    /// Builds a snapshot with the given counters/gauges and one histogram
    /// holding `values` (the shape [`snapshot`] would produce).
    fn synth_snapshot(
        counters: &[(&str, u64)],
        gauges: &[(&str, u64)],
        values: &[u64],
    ) -> Snapshot {
        let mut hist = HistStat {
            name: "test.merge.hist".to_string(),
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        let mut buckets: BTreeMap<usize, u64> = BTreeMap::new();
        for &v in values {
            hist.count += 1;
            hist.sum += v;
            *buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
        hist.buckets = buckets.into_iter().collect();
        Snapshot {
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            gauges: gauges.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            histograms: if values.is_empty() {
                vec![]
            } else {
                vec![hist]
            },
            spans: Vec::new(),
        }
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let a = synth_snapshot(&[("c.x", 3), ("c.y", 1)], &[("g.jobs", 2)], &[]);
        let b = synth_snapshot(&[("c.x", 4), ("c.z", 9)], &[("g.jobs", 7)], &[]);
        let merged = a.merged(&b);
        assert_eq!(merged.counter("c.x"), Some(7), "counters add");
        assert_eq!(merged.counter("c.y"), Some(1));
        assert_eq!(merged.counter("c.z"), Some(9));
        assert_eq!(merged.gauge("g.jobs"), Some(7), "gauges take the max");
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["c.x", "c.y", "c.z"], "sections stay sorted");
    }

    #[test]
    fn merge_identity_is_the_empty_snapshot() {
        let a = synth_snapshot(&[("c.x", 3)], &[("g", 1)], &[1, 5, 900]);
        let empty = Snapshot::default();
        assert_eq!(a.clone().merged(&empty), a);
        assert_eq!(empty.clone().merged(&a), a);
        assert_eq!(empty.clone().merged(&empty), Snapshot::default());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = synth_snapshot(&[("c.x", 3)], &[("g", 1)], &[1, 2, 3]);
        let b = synth_snapshot(&[("c.x", 5), ("c.y", 2)], &[("g", 9)], &[700, 800]);
        let c = synth_snapshot(&[("c.y", 1)], &[], &[4, 1_000_000]);
        let left = a.clone().merged(&b).merged(&c);
        let right = a.clone().merged(&b.clone().merged(&c));
        assert_eq!(left, right, "associative");
        assert_eq!(a.clone().merged(&b), b.clone().merged(&a), "commutative");
        assert_eq!(left.to_json(), right.to_json(), "byte-stable export");
    }

    #[test]
    fn merged_histograms_match_a_single_process_run() {
        // Partition one workload across three "shards"; the merged
        // histogram must equal — buckets, count, sum, hence every
        // percentile estimate — the histogram of the undivided run.
        let values: Vec<u64> = (0..999u64).map(|i| (i * 7919) % 100_000).collect();
        let whole = synth_snapshot(&[], &[], &values);
        let merged = values
            .chunks(333)
            .map(|chunk| synth_snapshot(&[], &[], chunk))
            .fold(Snapshot::default(), |acc, s| acc.merged(&s));
        assert_eq!(merged, whole);
        let (m, w) = (&merged.histograms[0], &whole.histograms[0]);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(m.percentile(q), w.percentile(q), "q = {q}");
        }
    }

    #[test]
    fn table_export_mentions_sections() {
        let _guard = lock();
        reset();
        enable();
        counter!("test.table").add(9);
        let table = snapshot().to_table();
        assert!(table.contains("counters:"));
        assert!(table.contains("test.table"));
        disable();
        reset();
        assert!(snapshot().to_table().contains("no metrics recorded") || !snapshot().is_empty());
    }
}
