//! Cross-process shard telemetry: NDJSON events on stdout.
//!
//! A sweep worker (an `exp_*` binary invoked with `--telemetry` by the
//! `defender sweep` runner) streams one JSON object per line to stdout;
//! the parent process demultiplexes the stream — lines that parse as a
//! JSON object with an `"ev"` field are telemetry, everything else is the
//! experiment's ordinary console output. The emit side lives here so the
//! whole workspace shares one wire format; the parse side lives in
//! `defender-sweep` (`protocol` module), and the event schema is
//! documented in EXPERIMENTS.md ("Shard telemetry protocol").
//!
//! Event kinds emitted by the workspace:
//!
//! | `ev`        | emitted by                              | meaning |
//! |-------------|------------------------------------------|---------|
//! | `start`     | `experiment_main` before the run         | worker alive, pid |
//! | `window`    | `defender_bench::shard::window`          | corpus partition chosen |
//! | `phase`     | `RunReport::phase`                       | a named phase finished |
//! | `instance`  | `defender_profile::Progress::tick`       | instances completed (stride-sampled) |
//! | `hb`        | the `experiment_main` timer thread       | liveness heartbeat |
//! | `snapshot`  | the `experiment_main` timer thread       | cumulative counter/gauge/histogram state |
//! | `summary`   | `experiment_main` after the run          | terminal status |
//!
//! Like the metrics and trace layers, telemetry is **off by default**
//! behind one relaxed atomic gate, so instrumented call sites cost a
//! branch when no sweep runner is listening.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::json::JsonObject;
use crate::Snapshot;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SHARD_INDEX: AtomicU64 = AtomicU64::new(0);
static SHARD_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Turns telemetry emission on for shard `index` of `total` (process-wide;
/// every subsequent event carries the shard index).
pub fn enable_for_shard(index: u64, total: u64) {
    SHARD_INDEX.store(index, Ordering::Relaxed);
    SHARD_TOTAL.store(total, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry emission off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    SHARD_TOTAL.store(0, Ordering::Relaxed);
}

/// Whether telemetry emission is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The shard identity set by [`enable_for_shard`], if telemetry is on.
#[must_use]
pub fn shard() -> Option<(u64, u64)> {
    let total = SHARD_TOTAL.load(Ordering::Relaxed);
    if total == 0 {
        None
    } else {
        Some((SHARD_INDEX.load(Ordering::Relaxed), total))
    }
}

/// Builder for one telemetry event line.
///
/// Field order on the wire is `ev`, then `shard` (when a shard identity is
/// set), then the fields in call order — readers must key on names, not
/// positions, but the stable order keeps the stream grep-friendly.
#[derive(Debug)]
pub struct Event {
    obj: JsonObject,
}

impl Event {
    /// Starts an event of the given kind (the `ev` field).
    #[must_use]
    pub fn new(kind: &str) -> Event {
        let mut obj = JsonObject::new();
        obj.field_str("ev", kind);
        if let Some((index, total)) = shard() {
            obj.field_u64("shard", index);
            obj.field_u64("shards", total);
        }
        Event { obj }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Event {
        self.obj.field_u64(key, value);
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Event {
        self.obj.field_str(key, value);
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Event {
        self.obj.field_bool(key, value);
        self
    }

    /// Adds a pre-serialized JSON value field.
    #[must_use]
    pub fn raw(mut self, key: &str, value: &str) -> Event {
        self.obj.field_raw(key, value);
        self
    }

    /// The event as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.obj.finish()
    }

    /// Writes the event to stdout (one line, flushed) when telemetry is
    /// on; drops it otherwise. Flushing per line keeps the parent's view
    /// live even when stdout is a pipe (block-buffered by default).
    pub fn emit(self) {
        if !enabled() {
            return;
        }
        let mut line = self.to_line();
        line.push('\n');
        let stdout = std::io::stdout();
        let mut handle = stdout.lock(); // lint: allow(lock) stdout lock, not a poisonable mutex
        let _ = handle.write_all(line.as_bytes());
        let _ = handle.flush();
    }
}

/// Serializes the cumulative counter/gauge/histogram state of `snapshot`
/// as a `snapshot` event. Counters and gauges are name→value objects;
/// histograms and spans carry `count`/`sum` per name (enough for the
/// parent to show live rates and the hottest span — full log2 buckets
/// travel in the end-of-run sidecar, not on every beat).
#[must_use]
pub fn snapshot_event(snapshot: &Snapshot) -> Event {
    let mut counters = JsonObject::new();
    for (name, value) in &snapshot.counters {
        counters.field_u64(name, *value);
    }
    let mut gauges = JsonObject::new();
    for (name, value) in &snapshot.gauges {
        gauges.field_u64(name, *value);
    }
    let stats = |section: &[crate::HistStat]| {
        let mut out = JsonObject::new();
        for h in section {
            let mut stat = JsonObject::new();
            stat.field_u64("count", h.count);
            stat.field_u64("sum", h.sum);
            out.field_raw(&h.name, &stat.finish());
        }
        out.finish()
    };
    Event::new("snapshot")
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &stats(&snapshot.histograms))
        .raw("spans", &stats(&snapshot.spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistStat;

    #[test]
    fn events_serialize_with_ev_first() {
        let line = Event::new("hb").u64("elapsed_ns", 12).to_line();
        assert!(line.starts_with(r#"{"ev": "hb""#), "{line}");
        assert!(line.contains(r#""elapsed_ns": 12"#));
    }

    #[test]
    fn shard_identity_rides_every_event() {
        let _guard = crate::test_lock();
        enable_for_shard(2, 5);
        let line = Event::new("start").to_line();
        assert!(
            line.contains(r#""shard": 2, "shards": 5"#),
            "shard fields travel on every event: {line}"
        );
        disable();
        let line = Event::new("start").to_line();
        assert!(!line.contains("shard"), "{line}");
    }

    #[test]
    fn disabled_events_do_not_claim_enabled() {
        let _guard = crate::test_lock();
        disable();
        assert!(!enabled());
        assert!(shard().is_none());
        // emit() on a disabled gate is a no-op; nothing to assert beyond
        // not panicking (stdout is not captured here).
        Event::new("hb").emit();
    }

    #[test]
    fn snapshot_event_carries_cumulative_state() {
        let snap = Snapshot {
            counters: vec![("lp.pivots".to_string(), 42)],
            gauges: vec![("par.jobs".to_string(), 4)],
            histograms: vec![HistStat {
                name: "lp.simplex.constraints".to_string(),
                count: 3,
                sum: 30,
                buckets: vec![(3, 3)],
            }],
            spans: vec![HistStat {
                name: "e1.solve".to_string(),
                count: 7,
                sum: 700,
                buckets: Vec::new(),
            }],
        };
        let line = snapshot_event(&snap).to_line();
        assert!(line.contains(r#""counters": {"lp.pivots": 42}"#), "{line}");
        assert!(line.contains(r#""gauges": {"par.jobs": 4}"#), "{line}");
        assert!(
            line.contains(r#""lp.simplex.constraints": {"count": 3, "sum": 30}"#),
            "{line}"
        );
        assert!(
            line.contains(r#""spans": {"e1.solve": {"count": 7, "sum": 700}}"#),
            "{line}"
        );
    }
}
