//! A hand-rolled JSON writer (no serde — the workspace builds offline).
//!
//! Produces deterministic, human-auditable JSON: fields appear in
//! insertion order, numbers are rendered minimally, and strings are
//! escaped per RFC 8259. This is a *writer* only; the workspace never
//! needs to parse JSON, just to emit stable machine-diffable reports.
//!
//! # Examples
//!
//! ```
//! use defender_obs::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("name", "e5");
//! obj.field_u64("pivots", 42);
//! assert_eq!(obj.finish(), r#"{"name": "e5", "pivots": 42}"#);
//! ```

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as JSON: finite values as decimals, non-finite as
/// `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // 17 significant digits round-trip every f64; trim the usual case.
        let s = format!("{v}");
        if s.parse::<f64>() == Ok(v) {
            s
        } else {
            format!("{v:.17}")
        }
    } else {
        "null".to_string()
    }
}

/// An incrementally built JSON object (`{...}`).
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Appends `"key": "value"` with escaping on both sides.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.field_raw(key, &value.to_string())
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.field_raw(key, &value.to_string())
    }

    /// Appends a float field (`null` for NaN/infinities).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.field_raw(key, &number(value))
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Appends a pre-rendered JSON value (object, array, literal).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.sep();
        self.buf.push_str(&format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Closes the object and returns its JSON text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An incrementally built JSON array (`[...]`).
#[derive(Clone, Debug, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// An empty array.
    #[must_use]
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Appends an escaped string element.
    pub fn push_str(&mut self, value: &str) -> &mut JsonArray {
        self.sep();
        self.buf.push_str(&format!("\"{}\"", escape(value)));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut JsonArray {
        self.push_raw(&value.to_string())
    }

    /// Appends a float element (`null` for NaN/infinities).
    pub fn push_f64(&mut self, value: f64) -> &mut JsonArray {
        self.push_raw(&number(value))
    }

    /// Appends a pre-rendered JSON value.
    pub fn push_raw(&mut self, value: &str) -> &mut JsonArray {
        self.sep();
        self.buf.push_str(value);
        self
    }

    /// Closes the array and returns its JSON text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("unicode: μ(G) ≤ ν"), "unicode: μ(G) ≤ ν");
    }

    #[test]
    fn numbers_render_and_nan_is_null() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let tricky = 0.1 + 0.2;
        assert_eq!(
            number(tricky).parse::<f64>().unwrap(),
            tricky,
            "round-trips"
        );
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = JsonArray::new();
        inner.push_u64(1).push_f64(0.5).push_str("x");
        let mut obj = JsonObject::new();
        obj.field_str("id", "run")
            .field_bool("ok", true)
            .field_raw("xs", &inner.finish());
        assert_eq!(
            obj.finish(),
            r#"{"id": "run", "ok": true, "xs": [1, 0.5, "x"]}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
