//! A hand-rolled JSON writer *and* minimal reader (no serde — the
//! workspace builds offline).
//!
//! The writer produces deterministic, human-auditable JSON: fields appear
//! in insertion order, numbers are rendered minimally, and strings are
//! escaped per RFC 8259. The reader ([`parse`] → [`JsonValue`]) exists
//! for the consumers of that output — `bench diff` loads `BENCH_*.json`
//! sidecars back, and CI validates exported Chrome traces — so it favors
//! strictness and good error positions over speed.
//!
//! # Examples
//!
//! ```
//! use defender_obs::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("name", "e5");
//! obj.field_u64("pivots", 42);
//! assert_eq!(obj.finish(), r#"{"name": "e5", "pivots": 42}"#);
//! ```

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as JSON: finite values as decimals, non-finite as
/// `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // 17 significant digits round-trip every f64; trim the usual case.
        let s = format!("{v}");
        if s.parse::<f64>() == Ok(v) {
            s
        } else {
            format!("{v:.17}")
        }
    } else {
        "null".to_string()
    }
}

/// An incrementally built JSON object (`{...}`).
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Appends `"key": "value"` with escaping on both sides.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.field_raw(key, &value.to_string())
    }

    /// Appends a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut JsonObject {
        self.field_raw(key, &value.to_string())
    }

    /// Appends a float field (`null` for NaN/infinities).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.field_raw(key, &number(value))
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Appends a pre-rendered JSON value (object, array, literal).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.sep();
        self.buf.push_str(&format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Closes the object and returns its JSON text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An incrementally built JSON array (`[...]`).
#[derive(Clone, Debug, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// An empty array.
    #[must_use]
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Appends an escaped string element.
    pub fn push_str(&mut self, value: &str) -> &mut JsonArray {
        self.sep();
        self.buf.push_str(&format!("\"{}\"", escape(value)));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut JsonArray {
        self.push_raw(&value.to_string())
    }

    /// Appends a float element (`null` for NaN/infinities).
    pub fn push_f64(&mut self, value: f64) -> &mut JsonArray {
        self.push_raw(&number(value))
    }

    /// Appends a pre-rendered JSON value.
    pub fn push_raw(&mut self, value: &str) -> &mut JsonArray {
        self.sep();
        self.buf.push_str(value);
        self
    }

    /// Closes the array and returns its JSON text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A parsed JSON value (objects keep field order as written).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`; the workspace's documents
    /// never exceed 2^53 so this is lossless in practice).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered object fields, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Maximum container nesting depth [`parse`] accepts. The reader is
/// recursive-descent, so unbounded nesting would turn a hostile document
/// (`[[[[…`) into a stack overflow; 512 levels is far beyond anything the
/// workspace's writers emit while staying well inside the default thread
/// stack.
pub const MAX_DEPTH: usize = 512;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected, container nesting bounded by [`MAX_DEPTH`]).
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {}",
            *pos
        ));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    // lint: allow(panic) the scanned range matched ASCII number bytes only
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates are not produced by our writer; map
                        // them to U+FFFD rather than failing the parse.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are safe to re-derive).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                // lint: allow(panic) the Some(_) arm guarantees at least one byte remains
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("unicode: μ(G) ≤ ν"), "unicode: μ(G) ≤ ν");
    }

    #[test]
    fn numbers_render_and_nan_is_null() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let tricky = 0.1 + 0.2;
        assert_eq!(
            number(tricky).parse::<f64>().unwrap(),
            tricky,
            "round-trips"
        );
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = JsonArray::new();
        inner.push_u64(1).push_f64(0.5).push_str("x");
        let mut obj = JsonObject::new();
        obj.field_str("id", "run")
            .field_bool("ok", true)
            .field_raw("xs", &inner.finish());
        assert_eq!(
            obj.finish(),
            r#"{"id": "run", "ok": true, "xs": [1, 0.5, "x"]}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-2.5e1").unwrap(), JsonValue::Number(-25.0));
        assert_eq!(
            parse(r#""a\nbA μ""#).unwrap(),
            JsonValue::String("a\nbA μ".to_string())
        );
    }

    #[test]
    fn parses_nested_containers() {
        let doc = parse(r#"{"xs": [1, {"y": "z"}], "ok": true}"#).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        let xs = doc.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].get("y").unwrap().as_str(), Some("z"));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"open",
            "{\"a\" 1}",
            "[1] extra",
            "nan",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_is_bounded_not_a_stack_overflow() {
        // One level under the bound parses; one level over is a clean
        // error, not a recursion crash. Arrays and objects both count.
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok(), "depth {MAX_DEPTH} is accepted");
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&deep_bad).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // A hostile prefix with no closers must also fail cheaply.
        let unclosed = "[".repeat(100_000);
        assert!(parse(&unclosed).unwrap_err().contains("nesting deeper"));
        let objects = "{\"k\":".repeat(100_000);
        assert!(parse(&objects).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn duplicate_keys_keep_both_and_get_returns_first() {
        let doc = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k").unwrap().as_u64(), Some(1), "first match wins");
        assert_eq!(doc.as_object().unwrap().len(), 2, "both pairs retained");
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Unpaired UTF-16 surrogate halves are not valid scalar values;
        // the reader substitutes U+FFFD instead of failing or panicking.
        assert_eq!(
            parse(r#""\ud800""#).unwrap().as_str(),
            Some("\u{fffd}"),
            "lone high surrogate"
        );
        assert_eq!(
            parse(r#""\udfff tail""#).unwrap().as_str(),
            Some("\u{fffd} tail"),
            "lone low surrogate"
        );
    }

    #[test]
    fn malformed_escapes_are_rejected() {
        for bad in [
            r#""\x""#,     // unknown escape letter
            r#""\u12""#,   // truncated hex
            r#""\uzzzz""#, // non-hex digits
            r#""\"#,       // backslash at end of input
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_positioned() {
        let err = parse("{\"a\": 1}  x").unwrap_err();
        assert_eq!(err, "trailing data at byte 10");
        assert!(parse("[1, 2] ,").is_err());
        assert!(parse("null null").is_err());
        // Trailing whitespace alone stays fine.
        assert!(parse("{\"a\": 1}  \n").is_ok());
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut inner = JsonArray::new();
        inner.push_u64(7).push_str("two\nlines");
        let mut obj = JsonObject::new();
        obj.field_str("name", "quo\"ted")
            .field_f64("x", 0.125)
            .field_raw("xs", &inner.finish());
        let doc = parse(&obj.finish()).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("quo\"ted"));
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(0.125));
        let xs = doc.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[1].as_str(), Some("two\nlines"));
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
