//! Event-level tracing: bounded per-thread ring buffers of timestamped
//! begin/end/instant events, exported as Chrome trace-event JSON.
//!
//! Where the span registry in the crate root answers "how much total time
//! went into `a_tuple/step1_matching_ne`?", this module answers "where did
//! the time go inside *this one run*?" — a timeline loadable in Perfetto
//! or `chrome://tracing`.
//!
//! Design (mirrors the metrics layer):
//!
//! - **off by default**: one relaxed [`AtomicBool`] load per call site
//!   while disabled, just like the metrics gate — and an independent gate,
//!   so `--trace` and `--metrics` compose freely;
//! - **no blocking on the hot path**: every thread owns its own ring
//!   buffer and reaches it through a `try_lock` that only an exporter can
//!   ever contend, so the recording thread never waits — a contended
//!   event is *dropped and counted*, never a stall;
//! - **bounded memory**: each ring holds at most [`capacity`] events;
//!   overflow drops the *oldest* event and increments the buffer's drop
//!   counter, so a long run degrades into "the most recent window" rather
//!   than OOM;
//! - **free coverage**: [`crate::span!`] call sites emit begin/end pairs
//!   automatically whenever tracing is enabled, so the `lp` simplex,
//!   `matching` blossom and `core` `A_tuple` timelines need no new code.
//!
//! # Examples
//!
//! ```
//! use defender_obs as obs;
//!
//! obs::trace::start();
//! {
//!     let _outer = obs::span!("demo");
//!     obs::trace::instant("milestone");
//! }
//! let doc = obs::trace::chrome_trace_json();
//! obs::trace::stop();
//! assert!(doc.contains("\"traceEvents\""));
//! assert!(doc.contains("\"ph\": \"B\"") && doc.contains("\"ph\": \"E\""));
//! obs::trace::clear();
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
// lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
use std::time::Instant;

use crate::json::{JsonArray, JsonObject};

/// Default per-thread ring capacity (events); see [`set_capacity`].
pub const DEFAULT_CAPACITY: usize = 65_536;

static TRACING: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The kind of a trace event, mapping 1:1 onto Chrome trace-event phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered (`"ph": "B"`).
    Begin,
    /// A span was exited (`"ph": "E"`).
    End,
    /// A point-in-time marker (`"ph": "i"`).
    // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
    Instant,
}

impl EventKind {
    /// The Chrome trace-event `ph` code for this kind.
    #[must_use]
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
            EventKind::Instant => "i",
        }
    }
}

/// One recorded event: what happened, where on the timeline, on which
/// thread (the thread id lives on the owning buffer).
#[derive(Clone, Debug)]
pub struct Event {
    /// Nanoseconds since the trace epoch (first [`start`] of the process).
    pub ts_ns: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// The span or marker name (static — recording never allocates for it).
    pub name: &'static str,
}

/// The bounded event ring owned by one thread.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event, capacity: usize) {
        if capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.events.len() >= capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A registered per-thread buffer: the ring plus its stable thread id.
#[derive(Debug)]
struct ThreadBuffer {
    tid: u64,
    ring: Mutex<Ring>,
    /// Events dropped because an exporter held the ring lock at record
    /// time (the owner thread never blocks — see module docs).
    contended: AtomicU64,
    /// Human-readable lane name (empty = unnamed); exported as a Chrome
    /// `thread_name` metadata event and surfaced by [`snapshot_threads`].
    label: Mutex<String>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide trace epoch: fixed on first use so timestamps from
/// every thread and every start/stop cycle share one origin.
// lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
fn epoch() -> Instant {
    // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn with_local_buffer(f: impl FnOnce(&ThreadBuffer)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer = Arc::new(ThreadBuffer {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring::default()),
                contended: AtomicU64::new(0),
                label: Mutex::new(String::new()),
            });
            registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&buffer));
            buffer
        });
        f(buffer);
    });
}

/// Turns event recording on (process-wide). Timestamps are nanoseconds
/// since the first `start` of the process, so repeated start/stop cycles
/// stay on one timeline.
pub fn start() {
    epoch();
    TRACING.store(true, Ordering::Relaxed);
}

/// Turns event recording off; [`crate::span!`] sites fall back to a
/// single relaxed load.
pub fn stop() {
    TRACING.store(false, Ordering::Relaxed);
}

/// Whether event recording is currently on.
#[must_use]
pub fn enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Sets the per-thread ring capacity, in events. Applies to events
/// recorded from now on (existing rings are trimmed lazily on their next
/// push). Mainly for tests and memory-constrained embeddings.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events, Ordering::Relaxed);
}

/// The current per-thread ring capacity.
#[must_use]
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Discards every recorded event, zeroes the drop counters, and forgets
/// thread labels. Buffers stay registered so thread ids remain stable
/// across clears.
pub fn clear() {
    for buffer in registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        let mut ring = buffer
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.events.clear();
        ring.dropped = 0;
        buffer.contended.store(0, Ordering::Relaxed);
        buffer
            .label
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

fn record(kind: EventKind, name: &'static str) {
    let ts_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    with_local_buffer(|buffer| {
        // The owning thread is the only writer; the lock is contended only
        // while an exporter reads. Never block the traced workload: drop
        // the event, count the drop.
        match buffer.ring.try_lock() {
            Ok(mut ring) => ring.push(Event { ts_ns, kind, name }, capacity()),
            Err(_) => {
                buffer.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
}

/// Records a span-begin event (called by [`crate::enter_span`]).
pub(crate) fn record_begin(name: &'static str) {
    record(EventKind::Begin, name);
}

/// Records a span-end event. Bypasses the enable gate so a guard that
/// traced its begin always closes its pair, even if [`stop`] ran while
/// the span was live — exporters never see an unbalanced stack.
pub(crate) fn record_end(name: &'static str) {
    record(EventKind::End, name);
}

/// Names the calling thread's trace lane (no-op while tracing is
/// disabled, so untraced runs never register buffers).
///
/// The label is exported as a Chrome `thread_name` metadata event and
/// carried on [`ThreadSnapshot`]s, which is how `defender-profile`
/// attributes lanes to pool workers: `defender-par` labels each worker
/// `w<i>` at spawn, and repeated pool spawns reuse the label even though
/// every scoped thread gets a fresh tid.
pub fn set_thread_label(label: &str) {
    if !enabled() {
        return;
    }
    with_local_buffer(|buffer| {
        let mut slot = buffer
            .label
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.as_str() != label {
            slot.clear();
            slot.push_str(label);
        }
    });
}

/// Nanoseconds elapsed since the trace epoch (the first [`start`] of the
/// process) — the "now" that in-process consumers such as
/// `defender-profile` use to close still-open spans when harvesting a
/// live trace mid-run.
#[must_use]
pub fn elapsed_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records a point-in-time marker (no-op while tracing is disabled).
///
/// ```
/// # use defender_obs as obs;
/// obs::trace::start();
/// obs::trace::instant("lp_degenerate_pivot");
/// obs::trace::stop();
/// # obs::trace::clear();
/// ```
pub fn instant(name: &'static str) {
    if enabled() {
        // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
        record(EventKind::Instant, name);
    }
}

/// Total events dropped so far (ring overflow + exporter contention),
/// summed over every thread.
#[must_use]
pub fn dropped_events() -> u64 {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|b| {
            let ring = b
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ring.dropped + b.contended.load(Ordering::Relaxed)
        })
        .sum()
}

/// Publishes the cumulative drop total into the `trace.dropped_events`
/// obs counter (no-op while the metrics gate is off), so harvested
/// snapshots and `BENCH_*.json` sidecars surface trace truncation
/// alongside the algorithm counters.
///
/// Idempotent: the counter is raised to the current [`dropped_events`]
/// total, so repeated publishes (or publishes after a metrics
/// [`crate::reset`]) never double-count.
pub fn publish_drop_counter() {
    let counter = crate::counter!("trace.dropped_events");
    let total = dropped_events();
    let published = counter.get();
    if total > published {
        counter.add(total - published);
    } else {
        // Register the name even when no drop occurred, so a traced run's
        // sidecar pins the zero and a later drop shows up as growth.
        counter.add(0);
    }
}

/// One thread's buffered events, copied out for in-process analysis.
#[derive(Clone, Debug)]
pub struct ThreadSnapshot {
    /// The stable per-thread id (the Chrome `tid`).
    pub tid: u64,
    /// The lane label from [`set_thread_label`] (empty = unnamed).
    pub label: String,
    /// Buffered events in recording order.
    pub events: Vec<Event>,
    /// Events this thread dropped (ring overflow + exporter contention).
    pub dropped: u64,
}

/// Copies every thread's buffered events out of the rings (threads sorted
/// by tid), for in-process consumers like `defender-profile` that analyze
/// a live trace without a JSON round-trip.
#[must_use]
pub fn snapshot_threads() -> Vec<ThreadSnapshot> {
    let buffers: Vec<Arc<ThreadBuffer>> = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(Arc::clone)
        .collect();
    let mut out: Vec<ThreadSnapshot> = buffers
        .iter()
        .map(|buffer| {
            let ring = buffer
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ThreadSnapshot {
                tid: buffer.tid,
                label: buffer
                    .label
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
                events: ring.events.iter().cloned().collect(),
                dropped: ring.dropped + buffer.contended.load(Ordering::Relaxed),
            }
        })
        .collect();
    out.sort_by_key(|s| s.tid);
    out
}

/// Total events currently buffered, summed over every thread.
#[must_use]
pub fn buffered_events() -> u64 {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|b| {
            b.ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .events
                .len() as u64
        })
        .sum()
}

/// Exports every buffered event as a Chrome trace-event JSON document
/// (the `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Events are grouped per thread in recording order (Chrome requires
/// per-thread ordering only), threads sorted by id, so identical buffer
/// state renders byte-identical JSON. Drop counts are reported under
/// `"otherData"` so a truncated timeline is visible as such.
#[must_use]
pub fn chrome_trace_json() -> String {
    let buffers: Vec<Arc<ThreadBuffer>> = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(Arc::clone)
        .collect();
    let mut sorted: Vec<&Arc<ThreadBuffer>> = buffers.iter().collect();
    sorted.sort_by_key(|b| b.tid);
    let mut events = JsonArray::new();
    let mut total_dropped = 0u64;
    for buffer in sorted {
        let ring = buffer
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        total_dropped += ring.dropped + buffer.contended.load(Ordering::Relaxed);
        let label = buffer
            .label
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if !label.is_empty() {
            // Chrome metadata event: names the lane in Perfetto and
            // carries the worker identity for `defender profile`.
            let mut args = JsonObject::new();
            args.field_str("name", &label);
            let mut obj = JsonObject::new();
            obj.field_str("name", "thread_name");
            obj.field_str("ph", "M");
            obj.field_u64("pid", 1);
            obj.field_u64("tid", buffer.tid);
            obj.field_raw("args", &args.finish());
            events.push_raw(&obj.finish());
        }
        for event in &ring.events {
            let mut obj = JsonObject::new();
            obj.field_str("name", event.name);
            obj.field_str("cat", "span");
            obj.field_str("ph", event.kind.phase());
            // Chrome's ts unit is microseconds; fractional digits keep ns.
            obj.field_f64("ts", event.ts_ns as f64 / 1_000.0);
            obj.field_u64("pid", 1);
            obj.field_u64("tid", buffer.tid);
            // lint: allow(determinism) span timing is the obs layer's purpose; durations never feed counter values
            if event.kind == EventKind::Instant {
                obj.field_str("s", "t");
            }
            events.push_raw(&obj.finish());
        }
    }
    let mut other = JsonObject::new();
    other.field_u64("droppedEvents", total_dropped);
    other.field_u64("ringCapacityPerThread", capacity() as u64);
    let mut root = JsonObject::new();
    root.field_raw("traceEvents", &events.finish());
    root.field_str("displayTimeUnit", "ns");
    root.field_raw("otherData", &other.finish());
    root.finish()
}

/// Writes [`chrome_trace_json`] to `path` (with a trailing newline).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json() + "\n")
}

/// Structural summary returned by [`validate_chrome_trace`].
#[derive(Clone, Debug)]
pub struct TraceCheck {
    /// Total events in the document.
    pub events: usize,
    /// Deepest begin/end nesting observed on any thread.
    pub max_depth: usize,
    /// Drop count the exporter reported (`otherData.droppedEvents`).
    pub dropped: u64,
    /// Distinct thread ids carrying events — a parallel run (`--jobs N`,
    /// N > 1) shows the main thread plus one lane per worker.
    pub threads: usize,
}

/// Parses and structurally validates a Chrome trace-event JSON document:
/// every event carries `name`/`ph`/`ts`/`tid`, timestamps are
/// non-decreasing per thread, and begin/end events obey stack discipline
/// (each `E` closes the matching `B`; no unclosed spans remain). A
/// document that reported dropped events is excused from pair balance —
/// ring overflow legitimately orphans the oldest begins.
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    use crate::json::{self, JsonValue};
    use std::collections::BTreeMap;
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing `traceEvents` array")?;
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut max_depth = 0usize;
    for (i, event) in events.iter().enumerate() {
        let field_str = |key: &str| {
            event
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or(format!("event {i}: missing string `{key}`"))
        };
        let name = field_str("name")?;
        let ph = field_str("ph")?;
        if ph == "M" {
            // Metadata events (thread names) carry no timestamp and no
            // stack semantics; they only need a tid to attach to.
            event
                .get("tid")
                .and_then(JsonValue::as_u64)
                .ok_or(format!("event {i}: missing integer `tid`"))?;
            continue;
        }
        let ts = event
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or(format!("event {i}: missing number `ts`"))?;
        let tid = event
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or(format!("event {i}: missing integer `tid`"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative timestamp"));
        }
        let last = last_ts.entry(tid).or_insert(ts);
        if ts < *last {
            return Err(format!("event {i}: timestamps regress on tid {tid}"));
        }
        *last = ts;
        match ph {
            "B" => {
                let stack = stacks.entry(tid).or_default();
                stack.push(name.to_string());
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stacks.entry(tid).or_default().pop() {
                Some(top) if top == name => {}
                Some(top) => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` closes `{top}` on tid {tid}"
                    ));
                }
                None if dropped > 0 => {} // begin fell off the ring
                None => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` with empty stack on tid {tid}"
                    ));
                }
            },
            "i" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    if dropped == 0 {
        for (tid, stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(format!("unclosed span `{open}` on tid {tid}"));
            }
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        max_depth,
        dropped,
        threads: last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests mutate process-global state; serialize on the same
    /// mutex as the metrics tests (spans touch both registries).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn disabled_instants_record_nothing() {
        let _guard = lock();
        clear();
        stop();
        instant("ghost");
        assert_eq!(buffered_events(), 0);
        clear();
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let _guard = lock();
        clear();
        set_capacity(4);
        start();
        for _ in 0..10 {
            instant("tick");
        }
        stop();
        assert_eq!(buffered_events(), 4);
        assert_eq!(dropped_events(), 6);
        // The survivors are the newest four: strictly the tail in ts order.
        let doc = chrome_trace_json();
        assert!(doc.contains("\"droppedEvents\": 6"), "{doc}");
        set_capacity(DEFAULT_CAPACITY);
        clear();
    }

    #[test]
    fn span_sites_emit_balanced_pairs() {
        let _guard = lock();
        clear();
        start();
        {
            let _a = crate::span!("outer_t");
            let _b = crate::span!("inner_t");
        }
        stop();
        let doc = chrome_trace_json();
        clear();
        let begins = doc.matches("\"ph\": \"B\"").count();
        let ends = doc.matches("\"ph\": \"E\"").count();
        assert_eq!((begins, ends), (2, 2), "{doc}");
        // Inner closes before outer: B outer, B inner, E inner, E outer.
        let order: Vec<usize> = [
            r#""name": "outer_t", "cat": "span", "ph": "B""#,
            r#""name": "inner_t", "cat": "span", "ph": "B""#,
            r#""name": "inner_t", "cat": "span", "ph": "E""#,
            r#""name": "outer_t", "cat": "span", "ph": "E""#,
        ]
        .iter()
        .map(|needle| doc.find(needle).expect(needle))
        .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{doc}");
    }

    #[test]
    fn stop_mid_span_still_closes_the_pair() {
        let _guard = lock();
        clear();
        start();
        let guard = crate::span!("straddler");
        stop();
        drop(guard);
        let doc = chrome_trace_json();
        clear();
        assert!(doc.contains(r#""name": "straddler", "cat": "span", "ph": "B""#));
        assert!(doc.contains(r#""name": "straddler", "cat": "span", "ph": "E""#));
    }

    #[test]
    fn exported_traces_validate() {
        let _guard = lock();
        clear();
        start();
        {
            let _a = crate::span!("v_outer");
            let _b = crate::span!("v_inner");
        }
        instant("v_mark");
        stop();
        let doc = chrome_trace_json();
        clear();
        let check = validate_chrome_trace(&doc).expect("exporter output validates");
        assert_eq!(check.events, 5);
        assert!(check.max_depth >= 2);
        assert_eq!(check.dropped, 0);
        assert!(check.threads >= 1);
    }

    #[test]
    fn validator_counts_distinct_threads() {
        let doc = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "tid": 1},
            {"name": "w", "ph": "B", "ts": 2, "tid": 2},
            {"name": "w", "ph": "E", "ts": 3, "tid": 2},
            {"name": "w", "ph": "B", "ts": 2, "tid": 3},
            {"name": "w", "ph": "E", "ts": 4, "tid": 3},
            {"name": "a", "ph": "E", "ts": 5, "tid": 1}]}"#;
        let check = validate_chrome_trace(doc).unwrap();
        assert_eq!(check.threads, 3);
    }

    #[test]
    fn validator_rejects_corrupt_documents() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let mismatched = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "tid": 1}]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("closes"));
        let unclosed = r#"{"traceEvents": [{"name": "a", "ph": "B", "ts": 1, "tid": 1}]}"#;
        assert!(validate_chrome_trace(unclosed)
            .unwrap_err()
            .contains("unclosed"));
        let regressing = r#"{"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "tid": 1},
            {"name": "b", "ph": "i", "ts": 1, "tid": 1}]}"#;
        assert!(validate_chrome_trace(regressing)
            .unwrap_err()
            .contains("regress"));
    }

    #[test]
    fn thread_labels_export_as_metadata_and_validate() {
        let _guard = lock();
        clear();
        start();
        set_thread_label("w7");
        instant("labeled_tick");
        stop();
        let doc = chrome_trace_json();
        let threads = snapshot_threads();
        clear();
        assert!(doc.contains(r#""name": "thread_name", "ph": "M""#), "{doc}");
        assert!(doc.contains(r#""args": {"name": "w7"}"#), "{doc}");
        let check = validate_chrome_trace(&doc).expect("metadata events validate");
        assert_eq!(check.events, 2, "M event + instant");
        let lane = threads
            .iter()
            .find(|t| t.label == "w7")
            .expect("labeled lane snapshot");
        assert_eq!(lane.events.len(), 1);
        assert_eq!(lane.events[0].name, "labeled_tick");
        assert_eq!(lane.dropped, 0);
    }

    #[test]
    fn labels_are_ignored_while_disabled_and_cleared_by_clear() {
        let _guard = lock();
        clear();
        stop();
        set_thread_label("ghost_lane");
        assert!(
            !chrome_trace_json().contains("ghost_lane"),
            "disabled labels must not register buffers"
        );
        start();
        set_thread_label("real_lane");
        stop();
        assert!(chrome_trace_json().contains("real_lane"));
        clear();
        assert!(!chrome_trace_json().contains("real_lane"));
    }

    #[test]
    fn snapshot_threads_carries_events_in_order() {
        let _guard = lock();
        clear();
        start();
        {
            let _a = crate::span!("snap_outer");
            instant("snap_mark");
        }
        stop();
        let threads = snapshot_threads();
        clear();
        let lane = threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == "snap_outer"))
            .expect("recording lane present");
        let names: Vec<&str> = lane.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["snap_outer", "snap_mark", "snap_outer"]);
        assert_eq!(lane.events[0].kind, EventKind::Begin);
        assert_eq!(lane.events[2].kind, EventKind::End);
        assert!(lane.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn publish_drop_counter_is_idempotent() {
        let _guard = lock();
        clear();
        crate::reset();
        crate::enable();
        set_capacity(2);
        start();
        for _ in 0..5 {
            instant("drop_me");
        }
        stop();
        let published = || crate::snapshot().counter("trace.dropped_events");
        publish_drop_counter();
        assert_eq!(published(), Some(3));
        publish_drop_counter();
        assert_eq!(published(), Some(3), "republishing must not double-count");
        // After a metrics reset the counter self-heals to the ring total.
        crate::reset();
        crate::enable();
        publish_drop_counter();
        assert_eq!(published(), Some(3));
        set_capacity(DEFAULT_CAPACITY);
        crate::disable();
        crate::reset();
        clear();
    }

    #[test]
    fn elapsed_ns_is_monotonic() {
        let a = elapsed_ns();
        let b = elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let _guard = lock();
        clear();
        start();
        for _ in 0..50 {
            instant("t");
        }
        stop();
        let all: Vec<u64> = registry()
            .lock()
            .unwrap()
            .iter()
            .flat_map(|b| {
                b.ring
                    .lock()
                    .unwrap()
                    .events
                    .iter()
                    .map(|e| e.ts_ns)
                    .collect::<Vec<_>>()
            })
            .collect();
        clear();
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }
}
