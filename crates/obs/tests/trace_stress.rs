//! Concurrent stress tests for the event tracer.
//!
//! These run as an integration test (own process) because they mutate the
//! process-global tracer gate, capacity, and per-thread buffer registry.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::thread;

use defender_obs::trace;

/// The tracer state is process-global; serialize the tests in this file.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_threads_produce_a_valid_interleaved_trace() {
    let _guard = lock();
    trace::clear();
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::start();

    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 200;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..SPANS_PER_THREAD {
                    let _outer = defender_obs::span!("stress_outer");
                    {
                        let _inner = defender_obs::span!("stress_inner");
                        if i % 10 == 0 {
                            trace::instant("stress_marker");
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }
    trace::stop();

    let document = trace::chrome_trace_json();
    let check = trace::validate_chrome_trace(&document).expect("stress trace must validate");
    // 8 threads × 200 × (2 spans × B+E) + 20 instants each, minus any drops.
    let expected_max = THREADS * (SPANS_PER_THREAD * 4 + SPANS_PER_THREAD / 10);
    assert!(check.events > 0, "trace must contain events");
    assert!(
        check.events as usize + check.dropped as usize >= expected_max,
        "every event is either exported or accounted as dropped: \
         {} events + {} dropped < {expected_max}",
        check.events,
        check.dropped
    );
    assert!(check.max_depth >= 2, "nested spans must show depth >= 2");
    trace::clear();
}

#[test]
fn concurrent_export_under_load_never_corrupts_the_document() {
    let _guard = lock();
    trace::clear();
    trace::set_capacity(1024);
    trace::start();

    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(5));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for _ in 0..5_000 {
                    let _span = defender_obs::span!("load_span");
                    trace::instant("load_marker");
                }
            })
        })
        .collect();

    // Export repeatedly while writers hammer their rings: the owner-side
    // try_lock must degrade to counted drops, never to a torn document.
    let exporter = {
        let done = Arc::clone(&done);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            barrier.wait();
            while !done.load(Ordering::Relaxed) {
                let document = trace::chrome_trace_json();
                assert!(
                    defender_obs::json::parse(&document).is_ok(),
                    "mid-load export must always be valid JSON"
                );
            }
        })
    };
    for writer in writers {
        writer.join().expect("writer panicked");
    }
    done.store(true, Ordering::Relaxed);
    exporter.join().expect("exporter panicked");
    trace::stop();

    let final_document = trace::chrome_trace_json();
    let check = trace::validate_chrome_trace(&final_document).expect("final trace must validate");
    assert!(check.events > 0);
    trace::clear();
}

#[test]
fn tiny_rings_drop_oldest_and_account_for_it() {
    let _guard = lock();
    trace::clear();
    trace::set_capacity(8);
    trace::start();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(|| {
                for _ in 0..100 {
                    trace::instant("overflow_marker");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }
    trace::stop();

    // 4 threads × 100 instants into rings of 8: nearly everything drops,
    // and the export must say so.
    assert!(trace::buffered_events() <= 4 * 8);
    assert!(trace::dropped_events() >= 4 * (100 - 8) as u64);
    let document = trace::chrome_trace_json();
    let check = trace::validate_chrome_trace(&document).expect("overflow trace must validate");
    assert_eq!(
        check.events as u64 + check.dropped,
        400,
        "exported + dropped must account for every recorded instant"
    );
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::clear();
}
