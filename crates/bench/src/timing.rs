//! Light-weight timing and curve-fitting used by the runtime experiments
//! and the standalone `benches/` binaries (the build is offline-only, so
//! there is no external benchmark harness; these helpers feed the printed
//! scaling tables).

use std::time::{Duration, Instant};

/// Median wall-clock time of `runs` executions of `f`.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn median_time<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    assert!(runs > 0, "need at least one run");
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Ordinary least squares `y ≈ slope·x + intercept`, returning
/// `(slope, intercept, r²)`.
///
/// # Panics
///
/// Panics if the series differ in length or have fewer than two points.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx == 0.0 {
        // All x equal: the data is a vertical line, no finite slope exists
        // and x explains none of y's variance. Report a flat fit through
        // the mean rather than dividing by zero.
        return (0.0, my, if syy == 0.0 { 1.0 } else { 0.0 });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_r2_detects_noise() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0];
        let (_, _, r2) = linear_fit(&xs, &ys);
        assert!(r2 < 0.5);
    }

    #[test]
    fn median_time_runs() {
        let d = median_time(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn median_time_single_run() {
        let mut calls = 0;
        let d = median_time(1, || {
            calls += 1;
        });
        assert_eq!(calls, 1);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn median_time_zero_runs_rejected() {
        median_time(0, || {});
    }

    #[test]
    fn fit_two_points_is_exact() {
        let (slope, intercept, r2) = linear_fit(&[0.0, 2.0], &[1.0, 5.0]);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_degenerate_all_equal_x() {
        // Vertical data: no finite slope; the fit falls back to the mean
        // and every value stays finite (this used to divide by zero).
        let (slope, intercept, r2) = linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(slope, 0.0);
        assert!((intercept - 2.0).abs() < 1e-12);
        assert_eq!(r2, 0.0);
        // Fully constant data is a perfect (flat) fit.
        let (slope, intercept, r2) = linear_fit(&[3.0, 3.0], &[4.0, 4.0]);
        assert_eq!(slope, 0.0);
        assert!((intercept - 4.0).abs() < 1e-12);
        assert_eq!(r2, 1.0);
    }

    #[test]
    fn fit_constant_y_is_flat_and_perfect() {
        let (slope, intercept, r2) = linear_fit(&[1.0, 2.0, 3.0], &[7.0, 7.0, 7.0]);
        assert!(slope.abs() < 1e-12);
        assert!((intercept - 7.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }
}
