//! `bench diff` — the regression gate over `BENCH_*.json` sidecars.
//!
//! Every experiment writes a sidecar ([`crate::RunReport`]) recording its
//! per-phase wall time and the harvested counter registry. This module
//! loads two of them — a committed baseline and a fresh run — compares
//! phase-by-phase and counter-by-counter, and renders a verdict table.
//! A phase or counter that grew beyond the configured threshold is a
//! **regression**; the CLI (`defender bench diff`) turns any regression
//! into a non-zero exit, which is what lets CI enforce the ROADMAP's
//! "measurably faster PR over PR" promise instead of merely hoping.
//!
//! Wall-clock comparisons are noisy, so two knobs keep the gate honest:
//!
//! - `threshold`: relative growth tolerated before a row regresses
//!   (default 20%; CI uses a much looser value so machine variance
//!   doesn't flake the build);
//! - `noise_floor_seconds`: phases where *both* sides are below this are
//!   never judged (default 1 ms — a 3 µs phase doubling is not signal).
//!
//! Counters are deterministic algorithm work (simplex pivots, blossom
//! augmentations), so they get no noise floor: any growth beyond the
//! threshold — or a counter appearing from zero — is a real change in
//! work done. A baseline counter *missing* from the fresh run is also a
//! failure ([`Verdict::Orphaned`]): a gate that silently stops measuring
//! a quantity would pass forever after, so lost instrumentation must be
//! acknowledged by refreshing the baseline, not ignored.

use std::path::Path;

use defender_obs::json::{self, JsonArray, JsonObject, JsonValue};

use crate::Table;

/// Default relative-growth tolerance (20%).
pub const DEFAULT_THRESHOLD: f64 = 0.20;

/// Default wall-time noise floor in seconds (phases faster than this on
/// both sides are never judged).
pub const DEFAULT_NOISE_FLOOR_SECONDS: f64 = 0.001;

/// A parsed `BENCH_<experiment>.json` sidecar.
#[derive(Clone, Debug, PartialEq)]
pub struct Sidecar {
    /// The experiment name recorded by the run.
    pub experiment: String,
    /// Phases in recorded order as `(name, wall_seconds)`.
    pub phases: Vec<(String, f64)>,
    /// Harvested counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Execution-shape metrics (`par.*`, `sw.*`, `prof.worker_busy_ppm.*`)
    /// as `(name, value)`. Optional section; never judged by the gate —
    /// these legitimately vary with `--jobs` and `--shards`.
    pub parallelism: Vec<(String, u64)>,
}

impl Sidecar {
    /// Parses a sidecar document (the schema [`crate::RunReport::to_json`]
    /// emits).
    ///
    /// # Errors
    ///
    /// Rejects documents missing the `experiment`/`phases`/`counters`
    /// structure.
    pub fn parse(text: &str) -> Result<Sidecar, String> {
        let doc = json::parse(text)?;
        let experiment = doc
            .get("experiment")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `experiment`")?
            .to_string();
        let mut phases = Vec::new();
        for (i, phase) in doc
            .get("phases")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `phases`")?
            .iter()
            .enumerate()
        {
            let name = phase
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or(format!("phase {i}: missing `name`"))?;
            let seconds = phase
                .get("wall_seconds")
                .and_then(JsonValue::as_f64)
                .ok_or(format!("phase {i}: missing `wall_seconds`"))?;
            phases.push((name.to_string(), seconds));
        }
        let mut counters = Vec::new();
        for (name, value) in doc
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or("missing object field `counters`")?
        {
            let value = value
                .as_u64()
                .ok_or(format!("counter `{name}`: not a non-negative integer"))?;
            counters.push((name.clone(), value));
        }
        let mut parallelism = Vec::new();
        if let Some(section) = doc.get("parallelism").and_then(JsonValue::as_object) {
            for (name, value) in section {
                let value = value
                    .as_u64()
                    .ok_or(format!("parallelism `{name}`: not a non-negative integer"))?;
                parallelism.push((name.clone(), value));
            }
        }
        Ok(Sidecar {
            experiment,
            phases,
            counters,
            parallelism,
        })
    }

    /// Loads and parses a sidecar file.
    ///
    /// # Errors
    ///
    /// Reports I/O and parse failures with the path in the message.
    pub fn load(path: &Path) -> Result<Sidecar, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Sidecar::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Tuning for [`diff`]; see the module docs for the semantics.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Relative growth tolerated before a row counts as regressed.
    pub threshold: f64,
    /// Wall-time floor below which phases are never judged.
    pub noise_floor_seconds: f64,
    /// Skip the wall-clock phases entirely and judge only the
    /// deterministic counters. Wall time is machine-sensitive — a CI
    /// runner slower than the machine that recorded the baseline fails
    /// the gate without any code change — whereas counters are exact
    /// algorithm work. CI uses this mode; same-machine comparisons keep
    /// the time-aware gate.
    pub counters_only: bool,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            threshold: DEFAULT_THRESHOLD,
            noise_floor_seconds: DEFAULT_NOISE_FLOOR_SECONDS,
            counters_only: false,
        }
    }
}

/// The judgement for one compared row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or under the noise floor).
    Ok,
    /// Shrunk beyond the threshold — the good direction.
    Improved,
    /// Grew beyond the threshold — fails the gate.
    Regressed,
    /// A *phase* present in the baseline, absent in the current run
    /// (warning only — renames and removed phases are not regressions).
    MissingInCurrent,
    /// A *counter* present in the baseline, absent in the current run —
    /// fails the gate. Counters are deterministic algorithm work; one
    /// disappearing means instrumentation was dropped (or the baseline is
    /// stale), and a gate that silently stops measuring a quantity would
    /// pass forever after.
    Orphaned,
    /// Present only in the current run (informational).
    NewInCurrent,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::MissingInCurrent => "missing",
            Verdict::Orphaned => "ORPHANED",
            Verdict::NewInCurrent => "new",
        }
    }
}

/// One compared phase or counter.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// `"phase"` or `"counter"`.
    pub section: &'static str,
    /// Phase or counter name.
    pub name: String,
    /// Baseline value (seconds for phases, raw count for counters).
    pub baseline: Option<f64>,
    /// Current value, same unit as `baseline`.
    pub current: Option<f64>,
    /// The judgement.
    pub verdict: Verdict,
}

impl DiffRow {
    /// `current / baseline` when both sides are present and non-zero.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

/// The outcome of comparing two sidecars.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The experiment name (from the baseline).
    pub experiment: String,
    /// All compared rows, phases first.
    pub rows: Vec<DiffRow>,
    /// The tolerance the verdicts were judged against.
    pub config: DiffConfig,
}

impl DiffReport {
    /// Number of rows that fail the gate.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count()
    }

    /// Number of baseline counters absent from the current run.
    #[must_use]
    pub fn orphans(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Orphaned)
            .count()
    }

    /// Whether the gate passes (no regressions and no orphaned counters).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions() == 0 && self.orphans() == 0
    }

    /// Renders the verdict table plus a one-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "kind", "name", "baseline", "current", "ratio", "verdict",
        ]);
        for row in &self.rows {
            let fmt = |v: Option<f64>| match v {
                None => "-".to_string(),
                Some(v) if row.section == "phase" => format!("{v:.6}s"),
                Some(v) => format!("{v:.0}"),
            };
            table.row(vec![
                row.section.to_string(),
                row.name.clone(),
                fmt(row.baseline),
                fmt(row.current),
                row.ratio().map_or("-".to_string(), |r| format!("{r:.2}x")),
                row.verdict.label().to_string(),
            ]);
        }
        let mut out = format!("bench diff: {} (threshold ", self.experiment);
        if self.config.counters_only {
            out.push_str(&format!(
                "+{:.0}%, counters only — wall time not judged)\n",
                self.config.threshold * 100.0
            ));
        } else {
            out.push_str(&format!(
                "+{:.0}%, noise floor {:.3}s)\n",
                self.config.threshold * 100.0,
                self.config.noise_floor_seconds
            ));
        }
        out.push_str(&table.render());
        let regressions = self.regressions();
        let orphans = self.orphans();
        if regressions == 0 && orphans == 0 {
            out.push_str("verdict: PASS — no phase or counter regressed\n");
        } else {
            let mut causes = Vec::new();
            if regressions > 0 {
                causes.push(format!(
                    "{regressions} row(s) regressed beyond the threshold"
                ));
            }
            if orphans > 0 {
                causes.push(format!(
                    "{orphans} baseline counter(s) missing from the current run"
                ));
            }
            out.push_str(&format!("verdict: FAIL — {}\n", causes.join("; ")));
        }
        out
    }

    /// The report as one line of stable JSON (the `--format json` output
    /// of `defender bench diff`), so the sweep monitor and CI can consume
    /// gate results without grepping the table.
    ///
    /// Field-order contract (stable across releases; consumers may key on
    /// names but the order will not shift under them):
    ///
    /// 1. `experiment` — string;
    /// 2. `config` — object with `threshold`, `noise_floor_seconds`,
    ///    `counters_only`, in that order;
    /// 3. `rows` — array in table order (phases before counters, baseline
    ///    order within a section, current-only rows last); each row holds
    ///    `kind`, `name`, `baseline`, `current`, `ratio`, `verdict`, in
    ///    that order, with `null` for an absent side or undefined ratio.
    ///    `verdict` uses the table labels (`ok`, `improved`, `REGRESSED`,
    ///    `missing`, `ORPHANED`, `new`);
    /// 4. `regressions`, `orphans` — row counts;
    /// 5. `passed` — the gate outcome.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut config = JsonObject::new();
        config.field_f64("threshold", self.config.threshold);
        config.field_f64("noise_floor_seconds", self.config.noise_floor_seconds);
        config.field_bool("counters_only", self.config.counters_only);
        let mut rows = JsonArray::new();
        for row in &self.rows {
            let mut r = JsonObject::new();
            r.field_str("kind", row.section);
            r.field_str("name", &row.name);
            let side = |r: &mut JsonObject, key: &str, value: Option<f64>| {
                match value {
                    Some(v) => r.field_f64(key, v),
                    None => r.field_raw(key, "null"),
                };
            };
            side(&mut r, "baseline", row.baseline);
            side(&mut r, "current", row.current);
            side(&mut r, "ratio", row.ratio());
            r.field_str("verdict", row.verdict.label());
            rows.push_raw(&r.finish());
        }
        let mut root = JsonObject::new();
        root.field_str("experiment", &self.experiment);
        root.field_raw("config", &config.finish());
        root.field_raw("rows", &rows.finish());
        root.field_u64("regressions", self.regressions() as u64);
        root.field_u64("orphans", self.orphans() as u64);
        root.field_bool("passed", self.passed());
        root.finish()
    }
}

fn judge(baseline: f64, current: f64, config: &DiffConfig, noisy: bool) -> Verdict {
    if noisy && baseline < config.noise_floor_seconds && current < config.noise_floor_seconds {
        return Verdict::Ok;
    }
    if baseline == 0.0 {
        return if current == 0.0 {
            Verdict::Ok
        } else {
            // Work appearing from nothing cannot be expressed as a ratio;
            // for deterministic counters it is always a real change.
            Verdict::Regressed
        };
    }
    let ratio = current / baseline;
    if ratio > 1.0 + config.threshold {
        Verdict::Regressed
    } else if ratio < 1.0 - config.threshold {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

fn compare_section(
    rows: &mut Vec<DiffRow>,
    section: &'static str,
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    config: &DiffConfig,
) {
    let noisy = section == "phase";
    for (name, base) in baseline {
        match current.iter().find(|(n, _)| n == name) {
            Some((_, cur)) => rows.push(DiffRow {
                section,
                name: name.clone(),
                baseline: Some(*base),
                current: Some(*cur),
                verdict: judge(*base, *cur, config, noisy),
            }),
            None => rows.push(DiffRow {
                section,
                name: name.clone(),
                baseline: Some(*base),
                current: None,
                // Dropped phases are renames or restructuring (warn);
                // dropped counters mean lost instrumentation (fail).
                verdict: if noisy {
                    Verdict::MissingInCurrent
                } else {
                    Verdict::Orphaned
                },
            }),
        }
    }
    for (name, cur) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            rows.push(DiffRow {
                section,
                name: name.clone(),
                baseline: None,
                current: Some(*cur),
                verdict: Verdict::NewInCurrent,
            });
        }
    }
}

/// Compares two sidecars under `config`; phases first, then counters.
#[must_use]
pub fn diff(baseline: &Sidecar, current: &Sidecar, config: DiffConfig) -> DiffReport {
    let mut rows = Vec::new();
    if !config.counters_only {
        compare_section(
            &mut rows,
            "phase",
            &baseline.phases,
            &current.phases,
            &config,
        );
    }
    let to_f64 = |cs: &[(String, u64)]| -> Vec<(String, f64)> {
        cs.iter().map(|(n, v)| (n.clone(), *v as f64)).collect()
    };
    compare_section(
        &mut rows,
        "counter",
        &to_f64(&baseline.counters),
        &to_f64(&current.counters),
        &config,
    );
    DiffReport {
        experiment: baseline.experiment.clone(),
        rows,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sidecar(phases: &[(&str, f64)], counters: &[(&str, u64)]) -> Sidecar {
        Sidecar {
            experiment: "e_test".to_string(),
            phases: phases.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            parallelism: Vec::new(),
        }
    }

    #[test]
    fn identical_sidecars_pass() {
        let s = sidecar(&[("sweep", 1.0)], &[("lp.pivots", 100)]);
        let report = diff(&s, &s.clone(), DiffConfig::default());
        assert!(report.passed());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn injected_2x_phase_regression_fails() {
        let base = sidecar(&[("sweep", 1.0), ("verify", 0.5)], &[]);
        let cur = sidecar(&[("sweep", 2.0), ("verify", 0.5)], &[]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert_eq!(report.regressions(), 1);
        assert!(!report.passed());
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED") && rendered.contains("2.00x"));
    }

    #[test]
    fn threshold_is_respected() {
        let base = sidecar(&[("sweep", 1.0)], &[]);
        let cur = sidecar(&[("sweep", 1.15)], &[]);
        assert!(diff(&base, &cur, DiffConfig::default()).passed());
        let tight = DiffConfig {
            threshold: 0.10,
            ..DiffConfig::default()
        };
        assert!(!diff(&base, &cur, tight).passed());
    }

    #[test]
    fn noise_floor_shields_micro_phases() {
        let base = sidecar(&[("blink", 0.00001)], &[]);
        let cur = sidecar(&[("blink", 0.00009)], &[]);
        assert!(diff(&base, &cur, DiffConfig::default()).passed());
    }

    #[test]
    fn counters_have_no_noise_floor_and_flag_growth() {
        let base = sidecar(&[], &[("lp.pivots", 100), ("new.work", 0)]);
        let cur = sidecar(&[], &[("lp.pivots", 150), ("new.work", 5)]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert_eq!(report.regressions(), 2, "{}", report.render());
    }

    #[test]
    fn cache_counters_break_the_gate_unless_segregated() {
        // A baseline recorded from a `--cache` run would pin run-variant
        // `cache.*` state if those counters sat in the judged section: a
        // later warm run has misses == 0 → ORPHANED; a later cold run of
        // a cache-less binary drops them entirely → ORPHANED too. That is
        // exactly why `RunReport::is_execution_shape` routes `cache.*`
        // into the unjudged parallelism section.
        let base = sidecar(&[], &[("lp.simplex.pivots", 100), ("cache.misses", 728)]);
        let cur = sidecar(&[], &[("lp.simplex.pivots", 100)]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert_eq!(report.orphans(), 1);
        assert!(!report.passed());
        assert!(report.render().contains("ORPHANED"), "{}", report.render());

        // Segregated, the same comparison is clean: cache.* lives in the
        // parallelism section, which the gate never judges.
        let mut warm = sidecar(&[], &[("lp.simplex.pivots", 100)]);
        warm.parallelism = vec![
            ("cache.canon_ns".to_string(), 123_456),
            ("cache.hits".to_string(), 728),
            ("cache.misses".to_string(), 0),
        ];
        let mut cold = sidecar(&[], &[("lp.simplex.pivots", 100)]);
        cold.parallelism = vec![
            ("cache.canon_ns".to_string(), 654_321),
            ("cache.hits".to_string(), 0),
            ("cache.misses".to_string(), 728),
        ];
        let report = diff(&cold, &warm, DiffConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.orphans(), 0);
    }

    #[test]
    fn missing_and_new_rows_warn_without_failing() {
        let base = sidecar(&[("old_phase", 1.0)], &[]);
        let cur = sidecar(&[("new_phase", 1.0)], &[]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert!(report.passed());
        let rendered = report.render();
        assert!(rendered.contains("missing") && rendered.contains("new"));
    }

    #[test]
    fn baseline_counter_missing_from_current_fails() {
        let base = sidecar(&[], &[("lp.pivots", 100), ("se.supports", 7)]);
        let cur = sidecar(&[], &[("lp.pivots", 100)]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert_eq!(report.orphans(), 1);
        assert_eq!(report.regressions(), 0);
        assert!(!report.passed());
        let rendered = report.render();
        assert!(
            rendered.contains("ORPHANED") && rendered.contains("missing from the current run"),
            "{rendered}"
        );
        // counters-only mode (the CI gate) must also catch it.
        let config = DiffConfig {
            counters_only: true,
            ..DiffConfig::default()
        };
        assert!(!diff(&base, &cur, config).passed());
    }

    #[test]
    fn improvements_are_reported() {
        let base = sidecar(&[("sweep", 2.0)], &[]);
        let cur = sidecar(&[("sweep", 1.0)], &[]);
        let report = diff(&base, &cur, DiffConfig::default());
        assert!(report.passed());
        assert!(report.render().contains("improved"));
    }

    #[test]
    fn parses_run_report_output() {
        let mut rr = crate::RunReport::new("e_round_trip");
        rr.phase("sweep", std::time::Duration::from_millis(1500));
        rr.counter("lp.pivots", 42);
        let parsed = Sidecar::parse(&rr.to_json()).unwrap();
        assert_eq!(parsed.experiment, "e_round_trip");
        assert_eq!(parsed.phases.len(), 1);
        assert!((parsed.phases[0].1 - 1.5).abs() < 1e-9);
        assert_eq!(parsed.counters, vec![("lp.pivots".to_string(), 42)]);
    }

    #[test]
    fn counters_only_ignores_phase_regressions() {
        // A machine-speed "regression": phases doubled, counters exact.
        let base = sidecar(&[("sweep", 1.0)], &[("lp.pivots", 100)]);
        let cur = sidecar(&[("sweep", 2.0)], &[("lp.pivots", 100)]);
        assert!(!diff(&base, &cur, DiffConfig::default()).passed());
        let config = DiffConfig {
            counters_only: true,
            ..DiffConfig::default()
        };
        let report = diff(&base, &cur, config);
        assert!(report.passed(), "{}", report.render());
        assert!(report.rows.iter().all(|r| r.section == "counter"));
        assert!(report.render().contains("counters only"));
    }

    #[test]
    fn counters_only_still_gates_counter_growth() {
        let base = sidecar(&[("sweep", 1.0)], &[("lp.pivots", 100)]);
        let cur = sidecar(&[("sweep", 1.0)], &[("lp.pivots", 200)]);
        let config = DiffConfig {
            counters_only: true,
            ..DiffConfig::default()
        };
        assert!(!diff(&base, &cur, config).passed());
    }

    #[test]
    fn json_report_follows_the_field_order_contract() {
        let base = sidecar(&[("sweep", 1.0)], &[("lp.pivots", 100), ("gone", 5)]);
        let cur = sidecar(&[("sweep", 2.0)], &[("lp.pivots", 100)]);
        let report = diff(&base, &cur, DiffConfig::default());
        let text = report.to_json();
        // Top-level order: experiment, config, rows, regressions, orphans, passed.
        let order = [
            "\"experiment\"",
            "\"config\"",
            "\"rows\"",
            "\"regressions\"",
            "\"orphans\"",
            "\"passed\"",
        ];
        let mut last = 0;
        for key in order {
            let at = text.find(key).unwrap_or_else(|| panic!("{key} in {text}"));
            assert!(at >= last, "{key} out of order in {text}");
            last = at;
        }
        // Rows carry kind..verdict in order, null for absent sides.
        assert!(
            text.contains(r#"{"kind": "phase", "name": "sweep", "baseline": 1, "current": 2, "ratio": 2, "verdict": "REGRESSED"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#""name": "gone", "baseline": 5, "current": null, "ratio": null, "verdict": "ORPHANED""#),
            "{text}"
        );
        assert!(text.ends_with(r#""passed": false}"#), "{text}");
        // The document round-trips through the workspace parser.
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("regressions").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("orphans").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            doc.get("rows")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(report.rows.len())
        );
    }

    #[test]
    fn sidecar_parses_the_parallelism_section() {
        let mut rr = crate::RunReport::new("e_par");
        rr.counter("lp.pivots", 7);
        rr.parallelism("par.jobs", 4).parallelism("sw.shards", 3);
        let parsed = Sidecar::parse(&rr.to_json()).unwrap();
        assert_eq!(
            parsed.parallelism,
            vec![("par.jobs".to_string(), 4), ("sw.shards".to_string(), 3)]
        );
        // Absent section parses as empty, not an error.
        let bare = Sidecar::parse(r#"{"experiment": "x", "phases": [], "counters": {}}"#).unwrap();
        assert!(bare.parallelism.is_empty());
    }

    #[test]
    fn rejects_malformed_sidecars() {
        assert!(Sidecar::parse("not json").is_err());
        assert!(Sidecar::parse("{}").is_err());
        assert!(Sidecar::parse(r#"{"experiment": "x", "phases": [{}], "counters": {}}"#).is_err());
    }
}
