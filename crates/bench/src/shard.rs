//! Shard windows: deterministic corpus partitioning for out-of-process
//! sweeps.
//!
//! A sweep worker is an ordinary `exp_*` binary invoked with
//! `--shard <i>/<N>` (parsed by [`crate::experiment_main`]). Experiments
//! with an indexed instance corpus ask this module for their window via
//! [`window`]; an unsharded run gets the full corpus back, so the same
//! code path serves both modes. Partitioning is **contiguous by index** —
//! shard `i` of `N` over a corpus of `total` instances owns
//! `[⌊total·i/N⌋, ⌊total·(i+1)/N⌋)` — which makes the windows disjoint,
//! exhaustive, and a pure function of `(total, i, N)`: the determinism
//! bar (merged counters byte-identical at every shard width) reduces to
//! "every counter increment is attributable to exactly one instance",
//! which each sharded experiment upholds by constructing *only* its
//! window's instances.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard index of the current process (meaningful while `SHARD_TOTAL` is
/// non-zero).
static SHARD_INDEX: AtomicU64 = AtomicU64::new(0);
/// Shard count; `0` means "not sharded".
static SHARD_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Declares this process to be shard `index` of `total`.
///
/// # Errors
///
/// Rejects `total == 0` and `index >= total`.
pub fn set_shard(index: u64, total: u64) -> Result<(), String> {
    if total == 0 {
        return Err("shard count must be at least 1".to_string());
    }
    if index >= total {
        return Err(format!(
            "shard index {index} out of range for {total} shard(s) (indices are 0-based)"
        ));
    }
    SHARD_INDEX.store(index, Ordering::Relaxed);
    SHARD_TOTAL.store(total, Ordering::Relaxed);
    Ok(())
}

/// Clears the shard declaration (tests).
pub fn clear_shard() {
    SHARD_TOTAL.store(0, Ordering::Relaxed);
    SHARD_INDEX.store(0, Ordering::Relaxed);
}

/// The `(index, total)` declared via [`set_shard`], if any.
#[must_use]
pub fn shard() -> Option<(u64, u64)> {
    let total = SHARD_TOTAL.load(Ordering::Relaxed);
    if total == 0 {
        None
    } else {
        Some((SHARD_INDEX.load(Ordering::Relaxed), total))
    }
}

/// Whether this process runs a proper sub-window of its corpora (shard
/// count > 1). Experiments guard *global* corpus assertions (extreme
/// values over the whole atlas) behind this: a window cannot witness a
/// whole-corpus fact.
#[must_use]
pub fn sharded() -> bool {
    shard().is_some_and(|(_, total)| total > 1)
}

/// The contiguous window of shard `index` of `shards` over `total`
/// instances: `[⌊total·index/shards⌋, ⌊total·(index+1)/shards⌋)`.
///
/// Windows partition `0..total` exactly (disjoint, exhaustive, in index
/// order) and every window's length is `⌊total/shards⌋` or
/// `⌈total/shards⌉`. Intermediate products use `u128`, so corpora up to
/// `u64::MAX` instances cannot overflow.
#[must_use]
pub fn window_of(total: usize, index: u64, shards: u64) -> Range<usize> {
    debug_assert!(shards > 0 && index < shards);
    let cut = |i: u64| -> usize {
        let exact = (total as u128) * u128::from(i) / u128::from(shards.max(1));
        // lint-free cast: exact ≤ total, which already fit in usize.
        usize::try_from(exact).unwrap_or(total)
    };
    cut(index)..cut(index + 1)
}

/// The current process's window over a corpus of `total` instances: the
/// full range when unsharded, the [`window_of`] slice when `--shard i/N`
/// was given. When sharded it also records the shard-shape metrics
/// (`sw.shard_index`/`sw.shard_total` gauges, `sw.window_instances`
/// counter — all segregated into the sidecar's "parallelism" section,
/// since they vary with shard width by construction) and announces the
/// partition on the telemetry stream (`window` event).
#[must_use]
pub fn window(total: usize) -> Range<usize> {
    let Some((index, shards)) = shard() else {
        return 0..total;
    };
    let range = window_of(total, index, shards);
    defender_obs::gauge!("sw.shard_index").set(index);
    defender_obs::gauge!("sw.shard_total").set(shards);
    defender_obs::counter!("sw.window_instances").add((range.end - range.start) as u64);
    defender_obs::telemetry::Event::new("window")
        .u64("total", total as u64)
        .u64("lo", range.start as u64)
        .u64("hi", range.end as u64)
        .emit();
    range
}

/// Parses the `--shard` flag value `"<i>/<N>"`.
///
/// # Errors
///
/// Reports malformed values and out-of-range indices.
pub fn parse_shard_flag(value: &str) -> Result<(u64, u64), String> {
    let usage =
        || format!("option `--shard` needs the form <index>/<count> (e.g. 0/3), got `{value}`");
    let (index, total) = value.split_once('/').ok_or_else(usage)?;
    let index: u64 = index.trim().parse().map_err(|_| usage())?;
    let total: u64 = total.trim().parse().map_err(|_| usage())?;
    if total == 0 {
        return Err("option `--shard` needs a count of at least 1".to_string());
    }
    if index >= total {
        return Err(format!(
            "option `--shard`: index {index} out of range for {total} shard(s) (0-based)"
        ));
    }
    Ok((index, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_corpus_exactly() {
        for total in [0usize, 1, 2, 16, 17, 1000, 1024] {
            for shards in [1u64, 2, 3, 7, 16, 64] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..shards {
                    let w = window_of(total, i, shards);
                    assert_eq!(w.start, prev_end, "contiguous at shard {i}/{shards}");
                    assert!(w.end >= w.start);
                    covered += w.len();
                    prev_end = w.end;
                    // Balanced: every window is within one of total/shards.
                    let base = total / shards as usize;
                    assert!(
                        w.len() == base || w.len() == base + 1,
                        "unbalanced window {w:?} for total {total}, shards {shards}"
                    );
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total, "exhaustive");
            }
        }
    }

    #[test]
    fn huge_corpora_do_not_overflow() {
        // The last shard of a usize::MAX corpus: start = ⌊MAX·(MAX−1)/MAX⌋
        // = MAX−1 via u128 arithmetic; a u64 product would have wrapped.
        let last = window_of(usize::MAX, u64::MAX - 1, u64::MAX);
        assert_eq!(last, (usize::MAX - 1)..usize::MAX);
        assert_eq!(window_of(usize::MAX, 0, 1), 0..usize::MAX);
    }

    #[test]
    fn unsharded_window_is_the_full_corpus() {
        let _guard = crate::test_lock();
        clear_shard();
        assert_eq!(window(17), 0..17);
        assert!(!sharded());
        assert!(shard().is_none());
    }

    #[test]
    fn sharded_window_is_the_declared_slice() {
        let _guard = crate::test_lock();
        set_shard(1, 3).unwrap();
        assert_eq!(window(17), window_of(17, 1, 3));
        assert!(sharded());
        assert_eq!(shard(), Some((1, 3)));
        set_shard(0, 1).unwrap();
        assert_eq!(window(17), 0..17, "1 shard owns everything");
        assert!(!sharded(), "a 1/1 shard is not a sub-window");
        clear_shard();
    }

    #[test]
    fn set_shard_validates() {
        let _guard = crate::test_lock();
        assert!(set_shard(0, 0).is_err());
        assert!(set_shard(3, 3).is_err());
        assert!(set_shard(2, 3).is_ok());
        clear_shard();
    }

    #[test]
    fn shard_flag_parses_and_rejects() {
        assert_eq!(parse_shard_flag("0/3").unwrap(), (0, 3));
        assert_eq!(parse_shard_flag("2/3").unwrap(), (2, 3));
        for bad in ["", "3", "a/b", "1/0", "3/3", "4/3", "-1/3"] {
            assert!(parse_shard_flag(bad).is_err(), "{bad}");
        }
    }
}
