//! E13 (extension) — exact game values on arbitrary graphs via the
//! rational LP, cross-checked against every constructive family.
//!
//! The LP route needs no structure at all; wherever a construction
//! applies, the constant-sum uniqueness of the value forces agreement.
//! On graphs outside *every* family (odd, non-regular, no perfect
//! matching — e.g. a triangle with a tail) the LP is the only exact
//! solver, and the exhaustive first-principles verifier certifies its
//! output.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::covering_ne::covering_ne;
use defender_core::exhaustive::GameAdapter;
use defender_core::model::TupleGame;
use defender_graph::{generators, Graph, GraphBuilder};
use defender_num::Ratio;

use crate::Table;

const LIMIT: usize = 300_000;

fn tadpole() -> Graph {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
    b.add_edge(2, 3).add_edge(3, 4);
    b.build()
}

/// Runs the experiment; panics on any value disagreement.
pub fn run() {
    println!(
        "== E13: exact game values by rational LP, on and beyond the constructive families ==\n"
    );
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e13_exact_value");
    let sweep_start = std::time::Instant::now();
    let mut table = Table::new(vec![
        "instance",
        "k",
        "LP value",
        "k-matching k/|IS|",
        "covering 2k/n",
        "agreement",
    ]);
    let instances: Vec<(&str, Graph, usize)> = vec![
        ("path P4", generators::path(4), 1),
        ("cycle C6", generators::cycle(6), 2),
        ("star K_{1,5}", generators::star(5), 2),
        ("K_{2,4}", generators::complete_bipartite(2, 4), 3),
        ("complete K4", generators::complete(4), 2),
        ("Petersen", generators::petersen(), 1),
        ("cycle C5 (odd)", generators::cycle(5), 1),
        ("cycle C5 (odd)", generators::cycle(5), 2),
        ("cycle C7 (odd)", generators::cycle(7), 2),
        ("tadpole (no family)", tadpole(), 1),
        ("wheel W5", generators::wheel(5), 1),
    ];
    for (name, graph, k) in instances {
        let game = TupleGame::new(&graph, k, 1).expect("valid game");
        let exact = crate::cache::solve_exact_cached(&game, LIMIT).expect("within limit");

        // First-principles certificate.
        let adapter = GameAdapter::new(&game, LIMIT).expect("within limit");
        let truth = adapter.verify(&exact.config);
        assert!(
            truth.is_equilibrium(),
            "{name}: LP output fails best-response check"
        );

        // Family cross-checks (constant-sum ⇒ unique value).
        let matching_cell = match a_tuple_bipartite(&game) {
            Ok(ne) => {
                assert_eq!(
                    ne.defender_gain(),
                    exact.value,
                    "{name}: k-matching disagrees"
                );
                ne.defender_gain().to_string()
            }
            Err(_) => "-".to_string(),
        };
        let covering_cell = match covering_ne(&game) {
            Ok(ne) => {
                assert_eq!(
                    ne.defender_gain(),
                    exact.value,
                    "{name}: covering disagrees"
                );
                ne.defender_gain().to_string()
            }
            Err(_) => "-".to_string(),
        };
        // Known closed form for odd cycles (uniform/uniform): 2k/n.
        if name.contains("odd") {
            assert_eq!(
                exact.value,
                Ratio::from(2 * k) / Ratio::from(graph.vertex_count()),
                "{name}: odd-cycle closed form"
            );
        }
        table.row(vec![
            name.to_string(),
            k.to_string(),
            exact.value.to_string(),
            matching_cell,
            covering_cell,
            "certified".to_string(),
        ]);
    }
    report.phase("lp_sweep", sweep_start.elapsed());
    table.print();
    println!("\nPrediction: the LP agrees with every applicable construction and extends");
    println!("exact solving to instances no constructive family covers — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
