//! E12 (extension) — the Path model of \[8\]: what the defender loses when
//! its `k` edges must form a simple path.
//!
//! Two comparisons:
//!
//! 1. **Pure equilibria**: in the Tuple model existence is polynomial
//!    (`k ≥ ρ(G)`); in the Path model it collapses to `k = n − 1` **and**
//!    Hamiltonicity (NP-hard). The experiment tabulates both frontiers on
//!    small families.
//! 2. **Mixed gain on cycles**: the rotation equilibrium yields
//!    `(k + 1)·ν/n` against the Tuple model's `2k·ν/n` — the path shape
//!    costs the defender a factor approaching 2.

use defender_core::covering_ne::covering_ne;
use defender_core::model::TupleGame;
use defender_core::path_model::{
    cycle_path_ne, pure_ne_existence_path, verify_path_ne, PathPureOutcome,
};
use defender_core::pure::pure_ne_existence;
use defender_graph::generators;
use defender_num::Ratio;

use crate::Table;

/// Runs the experiment; panics on any broken prediction.
pub fn run() {
    println!("== E12: the Path model — the cost of a shape-constrained defender ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e12_path_model");
    let phase_start = std::time::Instant::now();

    println!("pure-NE frontiers (tuple: k ≥ ρ(G); path: k = n−1 AND Hamiltonian path):");
    let mut table = Table::new(vec![
        "family",
        "n",
        "tuple frontier",
        "path frontier",
        "traceable",
    ]);
    for (name, graph) in [
        ("path P6", generators::path(6)),
        ("cycle C6", generators::cycle(6)),
        ("star K_{1,4}", generators::star(4)),
        ("complete K5", generators::complete(5)),
        ("grid 2x3", generators::grid(2, 3)),
        ("K_{2,3}", generators::complete_bipartite(2, 3)),
        ("Petersen", generators::petersen()),
    ] {
        let n = graph.vertex_count();
        let tuple_frontier = (1..=graph.edge_count())
            .find(|&k| pure_ne_existence(&TupleGame::new(&graph, k, 2).expect("valid")).exists())
            .map_or("none".to_string(), |k| k.to_string());
        let (path_frontier, traceable) = if n - 1 <= graph.edge_count() {
            let game = TupleGame::new(&graph, n - 1, 2).expect("valid");
            match pure_ne_existence_path(&game).expect("small instance") {
                PathPureOutcome::Exists { .. } => ((n - 1).to_string(), true),
                PathPureOutcome::None { .. } => ("none".to_string(), false),
            }
        } else {
            ("none".to_string(), false)
        };
        // Sanity: below n−1 the path model never has a pure NE.
        for k in 1..n.saturating_sub(1).min(graph.edge_count()) {
            let game = TupleGame::new(&graph, k, 2).expect("valid");
            assert!(
                !pure_ne_existence_path(&game).expect("small").exists(),
                "{name}: spurious path pure NE at k = {k}"
            );
        }
        table.row(vec![
            name.to_string(),
            n.to_string(),
            tuple_frontier,
            path_frontier,
            traceable.to_string(),
        ]);
    }
    table.print();
    report.phase("pure_frontiers", phase_start.elapsed());
    let phase_start = std::time::Instant::now();

    println!("\nmixed gain on cycles (ν = 6): rotation path NE vs covering tuple NE:");
    let nu = 6usize;
    let mut table = Table::new(vec![
        "n",
        "k",
        "path gain (k+1)ν/n",
        "tuple gain 2kν/n",
        "tuple/path",
    ]);
    for (n, k) in [(8usize, 1usize), (8, 2), (8, 3), (12, 2), (12, 4), (16, 5)] {
        let graph = generators::cycle(n);
        let game = TupleGame::new(&graph, k, nu).expect("valid");
        let path_ne = cycle_path_ne(&game).expect("cycles");
        assert!(
            verify_path_ne(&game, &path_ne, 100_000).expect("small"),
            "n={n}, k={k}"
        );
        let tuple_ne = covering_ne(&game).expect("even cycles have PMs");
        assert_eq!(
            path_ne.defender_gain,
            Ratio::from((k + 1) * nu) / Ratio::from(n)
        );
        assert!(
            tuple_ne.defender_gain() >= path_ne.defender_gain,
            "tuples dominate"
        );
        let ratio = tuple_ne.defender_gain() / path_ne.defender_gain;
        assert_eq!(ratio, Ratio::from(2 * k) / Ratio::from(k + 1));
        table.row(vec![
            n.to_string(),
            k.to_string(),
            path_ne.defender_gain.to_string(),
            tuple_ne.defender_gain().to_string(),
            ratio.to_string(),
        ]);
    }
    table.print();
    report.phase("mixed_cycle_gains", phase_start.elapsed());
    println!("\nPrediction: the path constraint costs the defender a factor 2k/(k+1) → 2,");
    println!("and turns polynomial pure-NE existence into Hamiltonicity — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
