//! E11 (extension) — fictitious play learns the equilibrium value.
//!
//! With one attacker the game is constant-sum, so Robinson's theorem says
//! best-response play against empirical histories converges in
//! time-average to the value — which equals the k-matching gain `k/|IS|`
//! wherever that equilibrium exists. The experiment charts convergence on
//! three instances and asserts the final average lands near the value.

use defender_core::dynamics::{fictitious_play, known_value, OracleMode};
use defender_core::model::TupleGame;
use defender_graph::generators;

use crate::Table;

/// Runs the experiment; panics if the learned value drifts.
pub fn run() {
    println!("== E11: fictitious play converges to the game value (extension) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e11_dynamics");
    let scenarios = [
        ("cycle C6, k=1", generators::cycle(6), 1usize, 3usize),
        ("star K_{1,4}, k=2", generators::star(4), 2, 4),
        ("K_{2,4}, k=1", generators::complete_bipartite(2, 4), 1, 4),
        ("grid 2x3, k=2", generators::grid(2, 3), 2, 3),
    ];
    for (name, graph, k, is_size) in scenarios {
        let scenario_start = std::time::Instant::now();
        let game = TupleGame::new(&graph, k, 1).expect("one attacker");
        let value = known_value(k, is_size);
        let trace = fictitious_play(&game, 4_000, OracleMode::Exact { limit: 200_000 })
            .expect("small tuple spaces");
        println!("{name}: value k/|IS| = {value:.4}");
        let mut table = Table::new(vec![
            "round",
            "time-averaged defender payoff",
            "|avg - value|",
        ]);
        for &(round, avg) in trace.checkpoints.iter().filter(|(r, _)| *r >= 16) {
            table.row(vec![
                round.to_string(),
                format!("{avg:.4}"),
                format!("{:.4}", (avg - value).abs()),
            ]);
        }
        table.print();
        let err = (trace.average_payoff - value).abs();
        assert!(err < 0.05, "{name}: final error {err:.4}");
        println!();
        report.phase(name, scenario_start.elapsed());
    }
    println!("Prediction (Robinson): time-averaged payoff → value — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
