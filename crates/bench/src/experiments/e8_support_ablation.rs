//! E8 — ablation of Lemma 4.8's cyclic construction (Claim 4.9).
//!
//! The paper's window construction emits `δ = E/gcd(E, k)` tuples and
//! claims this is the *least* number giving every support edge equal
//! multiplicity. The ablation compares it against the naive alternative —
//! one window per starting offset (`E` tuples) — which also satisfies
//! Definition 4.1 and also yields a Nash equilibrium, but with a support
//! up to `gcd(E, k)` times larger. Both variants are verified as
//! equilibria; the support-size ratio is reported.

use defender_core::bipartite::a_tuple_bipartite_report;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::k_matching::{k_matching_ne_from_config, KMatchingConfig};
use defender_core::model::TupleGame;
use defender_core::reduction::support_tuple_count;
use defender_core::tuple::Tuple;
use defender_graph::generators;

use crate::Table;

/// Runs the ablation; panics if either construction fails to verify or
/// the paper's support is not minimal among the two.
pub fn run() {
    println!("== E8: cyclic-construction ablation (Lemma 4.8 / Claim 4.9) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e8_support_ablation");
    let sweep_start = std::time::Instant::now();
    let nu = 5usize;
    let mut table = Table::new(vec![
        "E_num",
        "k",
        "gcd",
        "paper delta",
        "naive (all offsets)",
        "ratio",
        "both verify",
    ]);
    // Even cycles give E_num = n/2 support edges for any even n.
    for (n, k) in [
        (12usize, 2usize),
        (12, 3),
        (12, 4),
        (12, 6),
        (16, 6),
        (20, 4),
        (24, 9),
    ] {
        let graph = generators::cycle(n);
        let game = TupleGame::new(&graph, k, nu).expect("valid game");
        let report = a_tuple_bipartite_report(&game).expect("even cycles admit k-matching NE");
        let e_num = report.e_num;
        let gcd = defender_num::gcd(e_num as u128, k as u128) as usize;
        assert_eq!(report.delta, support_tuple_count(e_num, k));

        // Naive variant: a window at every offset.
        let edges = report.base.supports().tp_support.clone();
        let naive_tuples: Vec<Tuple> = (0..e_num)
            .map(|offset| {
                Tuple::new((0..k).map(|j| edges[(offset + j) % e_num]).collect())
                    .expect("cyclic windows hold distinct edges")
            })
            .collect();
        let naive_count = {
            let mut sorted = naive_tuples.clone();
            sorted.sort();
            sorted.dedup();
            sorted.len()
        };
        let naive = k_matching_ne_from_config(
            &game,
            KMatchingConfig {
                vp_support: report.base.supports().vp_support.clone(),
                tuples: naive_tuples,
            },
        )
        .expect("all-offset windows form a k-matching configuration");

        let paper_ok = verify_mixed_ne(&game, report.ne.config(), VerificationMode::Analytic)
            .expect("analytic applies")
            .is_equilibrium();
        let naive_ok = verify_mixed_ne(&game, naive.config(), VerificationMode::Analytic)
            .expect("analytic applies")
            .is_equilibrium();
        assert!(paper_ok && naive_ok, "E = {e_num}, k = {k}");
        assert!(
            report.delta <= naive_count,
            "paper construction must be minimal"
        );
        // An arc of length k on a cycle of E positions is determined by its
        // start unless k = E, where all offsets give the same full set.
        let expected_ratio = if k == e_num { 1 } else { gcd };
        assert_eq!(
            naive_count / report.delta,
            expected_ratio,
            "size ratio (E = {e_num}, k = {k})"
        );
        // Same equilibrium payoffs from both supports.
        assert_eq!(report.ne.defender_gain(), naive.defender_gain());

        table.row(vec![
            e_num.to_string(),
            k.to_string(),
            gcd.to_string(),
            report.delta.to_string(),
            naive_count.to_string(),
            format!("{}x", naive_count / report.delta),
            "yes".into(),
        ]);
    }
    report.phase("ablation_sweep", sweep_start.elapsed());
    table.print();
    println!("\nPaper prediction: δ = E/gcd(E,k) suffices and is gcd(E,k)× smaller than the");
    println!("naive all-offsets support, with identical equilibrium payoffs — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
