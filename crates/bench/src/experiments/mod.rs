//! One module per experiment of DESIGN.md §4. Each exposes a `run()` that
//! prints its table/series to stdout and panics if the paper's predicted
//! shape fails (so `run_all_experiments` doubles as a reproduction gate).

pub mod common;
pub mod e10_covering;
pub mod e11_dynamics;
pub mod e12_path_model;
pub mod e13_exact_value;
pub mod e14_defense_ratio;
pub mod e15_value_atlas;
pub mod e1_pure_frontier;
pub mod e2_pure_runtime;
pub mod e3_characterization;
pub mod e4_defender_power;
pub mod e5_atuple_runtime;
pub mod e6_bipartite;
pub mod e7_montecarlo;
pub mod e8_support_ablation;
pub mod e9_roundtrip;
