//! E14 (extension) — the Price of Defense for width-k defenders.
//!
//! The defense ratio `DR = ν/IP_tp` of any mixed NE obeys `DR ≥ n/(2k)`
//! (the `defender_core::defense` module proves it from Theorem 3.4), and
//! covering equilibria attain it. The experiment sweeps families and k,
//! tabulating the bound, the k-matching ratio `|IS|/k` and the covering
//! ratio, and checks tightness exactly where perfect matchings exist.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::covering_ne::covering_ne;
use defender_core::defense::{defense_ratio, defense_ratio_lower_bound, is_defense_optimal};
use defender_core::model::TupleGame;
use defender_graph::generators;

use crate::Table;

const ATTACKERS: usize = 6;

/// Runs the experiment; panics if any equilibrium beats the bound.
pub fn run() {
    println!("== E14: defense ratio and the Price of Defense (extension) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e14_defense_ratio");
    let mut table = Table::new(vec![
        "family",
        "k",
        "bound n/2k",
        "k-matching |IS|/k",
        "covering n/2k",
        "optimal family",
    ]);
    let instances = [
        ("cycle C8", generators::cycle(8), 2usize),
        ("cycle C12", generators::cycle(12), 3),
        ("star K_{1,6}", generators::star(6), 2),
        ("path P9", generators::path(9), 2),
        ("K_{2,6}", generators::complete_bipartite(2, 6), 2),
        ("grid 4x4", generators::grid(4, 4), 4),
        ("complete K6", generators::complete(6), 2),
        ("Petersen", generators::petersen(), 2),
    ];
    for (name, graph, k) in instances {
        let family_start = std::time::Instant::now();
        let game = TupleGame::new(&graph, k, ATTACKERS).expect("valid game");
        let bound = defense_ratio_lower_bound(&game);

        let matching_cell = match a_tuple_bipartite(&game) {
            Ok(ne) => {
                let dr = defense_ratio(&game, ne.config()).expect("positive gain");
                assert!(dr >= bound, "{name}: k-matching DR below the bound");
                dr.to_string()
            }
            Err(_) => "-".to_string(),
        };
        let (covering_cell, optimal) = match covering_ne(&game) {
            Ok(ne) => {
                let dr = defense_ratio(&game, ne.config()).expect("positive gain");
                assert_eq!(dr, bound, "{name}: covering NE must attain the bound");
                assert!(is_defense_optimal(&game, ne.config()));
                (dr.to_string(), "covering".to_string())
            }
            Err(_) => ("-".to_string(), "none (no PM)".to_string()),
        };
        table.row(vec![
            name.to_string(),
            k.to_string(),
            bound.to_string(),
            matching_cell,
            covering_cell,
            optimal,
        ]);
        report.phase(name, family_start.elapsed());
    }
    table.print();
    println!("\nPrediction: every NE has DR ≥ n/(2k); covering equilibria are exactly");
    println!("defense-optimal, so PoD(Π_k) = n/(2k) on perfect-matching graphs — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
