//! E10 (extension) — covering vs k-matching equilibria.
//!
//! The covering family (\[8\], lifted to the Tuple model in
//! `defender_core::covering_ne`) serves every graph with a perfect
//! matching — including non-bipartite ones the k-matching theory cannot
//! reach — with gain `2k·ν/n`. On bipartite instances with a perfect
//! matching, König forces `|IS| = n/2`, so the two families' gains
//! coincide exactly; the experiment checks both facts.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::covering_ne::covering_ne;
use defender_core::model::TupleGame;
use defender_core::CoreError;
use defender_graph::{generators, properties};
use defender_num::Ratio;

use crate::Table;

const ATTACKERS: usize = 6;

/// Runs the experiment; panics on any broken prediction.
pub fn run() {
    println!("== E10: covering NE vs k-matching NE (extension, after [8]) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e10_covering");
    let families = vec![
        ("cycle C6", generators::cycle(6)),
        ("cycle C10", generators::cycle(10)),
        ("grid 4x4", generators::grid(4, 4)),
        ("K_{3,3}", generators::complete_bipartite(3, 3)),
        ("ladder L4", generators::ladder(4)),
        ("complete K4", generators::complete(4)),
        ("complete K6", generators::complete(6)),
        ("Petersen", generators::petersen()),
    ];
    let k = 2usize;
    let mut table = Table::new(vec![
        "family",
        "bipartite",
        "covering gain 2kν/n",
        "k-matching gain kν/|IS|",
        "relation",
    ]);
    for (name, graph) in families {
        let family_start = std::time::Instant::now();
        let game = TupleGame::new(&graph, k, ATTACKERS).expect("valid game");
        let cov = covering_ne(&game).expect("all E10 families have perfect matchings");
        let check = verify_mixed_ne(&game, cov.config(), VerificationMode::Analytic)
            .expect("full-support analytic case");
        assert!(check.is_equilibrium(), "{name}: {:?}", check.failures());
        assert_eq!(
            cov.defender_gain(),
            Ratio::from(2 * k * ATTACKERS) / Ratio::from(graph.vertex_count()),
            "{name}: closed form"
        );
        let bipartite = properties::is_bipartite(&graph);
        let (matching_cell, relation) = match a_tuple_bipartite(&game) {
            Ok(mat) => {
                assert!(bipartite);
                assert_eq!(
                    mat.defender_gain(),
                    cov.defender_gain(),
                    "{name}: with a perfect matching König forces |IS| = n/2"
                );
                (mat.defender_gain().to_string(), "equal".to_string())
            }
            Err(CoreError::Graph(defender_graph::GraphError::NotBipartite)) => {
                assert!(!bipartite);
                ("none".to_string(), "covering only".to_string())
            }
            Err(e) => panic!("{name}: {e}"),
        };
        table.row(vec![
            name.to_string(),
            bipartite.to_string(),
            cov.defender_gain().to_string(),
            matching_cell,
            relation,
        ]);
        report.phase(name, family_start.elapsed());
    }
    table.print();
    println!("\nPrediction: equal gains on bipartite+PM instances; covering NE alone");
    println!("extends protection to non-bipartite PM graphs (K4, K6, Petersen) — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
