//! E5 — Theorem 4.13: `A_tuple` runs in `O(k·n)` after the partition is
//! known.
//!
//! Two sweeps on even cycles (where the partition is the trivial
//! alternation): `n` grows at fixed `k`, and `k` grows at fixed `n`.
//! Both series are fitted linearly; the paper predicts r² ≈ 1 slopes in
//! each variable.

use defender_core::algorithm::a_tuple;
use defender_core::model::TupleGame;
use defender_graph::{generators, VertexId};

use crate::{linear_fit, median_time, RunReport, Table};

fn alternating_partition(n: usize) -> (Vec<VertexId>, Vec<VertexId>) {
    let is = (0..n).step_by(2).map(VertexId::new).collect();
    let vc = (1..n).step_by(2).map(VertexId::new).collect();
    (is, vc)
}

/// Runs the experiment; panics if either fit is visibly non-linear.
pub fn run() {
    println!("== E5: A_tuple runtime is O(k·n) (Theorem 4.13) ==\n");

    // Counters harvested at the end land in the BENCH sidecar.
    defender_obs::enable();
    defender_obs::reset();
    let mut report = RunReport::new("e5_atuple_runtime");

    // Sweep n at fixed k.
    let k = 8usize;
    println!("sweep 1: k = {k}, growing n (cycle C_n)");
    let mut table = Table::new(vec!["n", "median time", "us"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    report.timed_phase("sweep_n", || {
        let ns = [2_000usize, 4_000, 8_000, 16_000, 32_000];
        // Cycle + partition construction fans out over the pool; the
        // timing loop below stays serial so medians are unloaded.
        let instances = defender_par::par_for_indexed(ns.len(), |i| {
            let n = ns[i];
            (generators::cycle(n), alternating_partition(n))
        });
        for (&n, (graph, (is, vc))) in ns.iter().zip(&instances) {
            let game = TupleGame::new(graph, k, 4).expect("valid game");
            let t = median_time(5, || {
                std::hint::black_box(
                    a_tuple(&game, is, vc).expect("even cycles admit k-matching NE"),
                );
            });
            xs.push(n as f64);
            ys.push(t.as_secs_f64());
            table.row(vec![
                n.to_string(),
                format!("{t:?}"),
                format!("{:.0}", t.as_secs_f64() * 1e6),
            ]);
        }
    });
    table.print();
    let (_, _, r2_n) = linear_fit(&xs, &ys);
    println!("linear fit in n: r² = {r2_n:.3}\n");

    // Sweep k at fixed n.
    let n = 16_000usize;
    println!("sweep 2: n = {n}, growing k");
    let graph = generators::cycle(n);
    let (is, vc) = alternating_partition(n);
    let mut table = Table::new(vec!["k", "delta", "median time", "us"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    report.timed_phase("sweep_k", || {
        for k in [2usize, 4, 8, 16, 32, 64] {
            let game = TupleGame::new(&graph, k, 4).expect("valid game");
            let mut delta = 0usize;
            let t = median_time(5, || {
                let report = a_tuple(&game, &is, &vc).expect("even cycles admit k-matching NE");
                delta = report.delta;
                std::hint::black_box(report);
            });
            xs.push(k as f64);
            ys.push(t.as_secs_f64());
            table.row(vec![
                k.to_string(),
                delta.to_string(),
                format!("{t:?}"),
                format!("{:.0}", t.as_secs_f64() * 1e6),
            ]);
        }
    });
    table.print();
    let (_, _, r2_k) = linear_fit(&xs, &ys);
    println!("linear fit in k: r² = {r2_k:.3}");
    assert!(
        r2_n > 0.9,
        "n-scaling does not look linear (r² = {r2_n:.3})"
    );
    println!("\nPaper prediction: time linear in n — confirmed (r² = {r2_n:.3}).");
    println!("(The k-sweep is dominated by the k-independent O(m√n) step-1 matching at this n,");
    println!(" so its fit (r² = {r2_k:.3}) mainly certifies that k does NOT blow the time up —");
    println!(" the window construction itself is O(k·n) with a tiny constant.)");

    report.harvest_and_write();
    defender_obs::disable();
}
