//! E15 (extension) — a complete atlas of exact game values.
//!
//! Sweep **every** labeled connected graph on five vertices (1 024 edge
//! subsets, 728 connected), solve each single-attacker instance exactly
//! with the rational LP at `k = 1`, and histogram the values. Two
//! structural facts emerge and are asserted:
//!
//! - the *minimum* value is `1/4`, attained exactly by the 5 labeled
//!   stars `K_{1,4}` (the only connected 5-vertex graph shape with
//!   independence number 4 — the attacker's best hiding ground);
//! - the *maximum* is `2/5 = 2k/n`, the defense-ratio bound of
//!   `defender_core::defense`, attained already by the 5-cycle;
//! - and, a sharper empirical fact: the value set is exactly
//!   `{1/4, 1/3, 2/5}` — nothing in between ever occurs.

use defender_core::model::TupleGame;
use defender_graph::{properties, GraphBuilder, VertexId};
use defender_num::Ratio;
use std::collections::BTreeMap;

use crate::Table;

const N: usize = 5;

/// Warm-start hint for the `k = 1` LP: on sparse instances (≤ 6 edges),
/// find one equilibrium's supports by early-exit support enumeration on
/// the edge-vertex incidence bimatrix. At `k = 1` the tuple enumeration
/// order *is* the edge order, so the bimatrix row support doubles as the
/// LP's tuple support verbatim. Dense instances return `None` (the scan
/// would cost more than the pivots it saves) and solve cold.
fn support_hint(game: &TupleGame<'_>) -> Option<(Vec<usize>, Vec<usize>)> {
    let graph = game.graph();
    if graph.edge_count() == 0 || graph.edge_count() > 6 {
        return None;
    }
    let incidence: Vec<Vec<Ratio>> = graph
        .edges()
        .map(|e| {
            let ends = graph.endpoints(e);
            (0..graph.vertex_count())
                .map(|v| {
                    if ends.contains(VertexId::new(v)) {
                        Ratio::ONE
                    } else {
                        Ratio::ZERO
                    }
                })
                .collect()
        })
        .collect();
    let bimatrix = defender_game::TwoPlayerMatrixGame::zero_sum(incidence);
    defender_game::first_equilibrium_supports(&bimatrix)
}

/// Runs the experiment; panics if the extremes are not as predicted.
pub fn run() {
    println!("== E15: exact-value atlas over all labeled connected graphs on {N} vertices ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e15_value_atlas");
    let sweep_start = std::time::Instant::now();
    let pairs: Vec<(usize, usize)> = (0..N)
        .flat_map(|i| ((i + 1)..N).map(move |j| (i, j)))
        .collect();
    // Each of the 1 024 edge subsets is an independent rational LP solve;
    // fan the sweep over the pool and fold the histogram in mask order.
    // The fold is commutative anyway, and the `lp.*`/`core.*` counters are
    // atomic sums, so the sidecar counters come out identical for every
    // `--jobs` width. Under `--shard i/N` the mask range is windowed: each
    // shard touches only its own contiguous slice of the atlas, so merged
    // counters across all shards equal a single-process run.
    let window = crate::shard::window(1 << pairs.len());
    let lo = window.start;
    let sweep_progress = defender_profile::Progress::with_default_stride(
        "e15.atlas_sweep",
        window.len() as u64,
        crate::profiling_enabled(),
    );
    let values: Vec<Option<Ratio>> = defender_par::par_for_indexed(window.len(), |local| {
        sweep_progress.tick();
        let mask = lo + local;
        let mut b = GraphBuilder::new(N);
        for (bit, &(i, j)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                b.add_edge(i, j);
            }
        }
        let graph = b.build();
        if !properties::is_connected(&graph) || graph.vertex_count() == 0 {
            return None;
        }
        let game = TupleGame::new(&graph, 1, 1).expect("connected graphs are game-ready");
        Some(
            crate::cache::solve_exact_cached_with_hint(&game, 100_000, support_hint)
                .expect("tiny instance")
                .value,
        )
    });
    let mut histogram: BTreeMap<Ratio, usize> = BTreeMap::new();
    let mut connected_count = 0usize;
    for &value in values.iter().flatten() {
        connected_count += 1;
        *histogram.entry(value).or_insert(0) += 1;
    }
    report.phase("atlas_sweep", sweep_start.elapsed());

    // Second pass: cross-check the LP values against full support
    // enumeration on the sparse part of the atlas (≤ 6 edges keeps the
    // 2^rows × 2^cols sweep per graph small). The k = 1 incidence
    // bimatrix is rebuilt inline from the mask — deliberately *not* via
    // GraphBuilder/GameAdapter, so the first pass's `graph.build.*` and
    // `core.exhaustive.*` counters stay untouched — and every equilibrium
    // the (pruned) enumeration finds must sit exactly on the zero-sum
    // value. This drives the `se.pairs_skipped` / `se.pairs_tested`
    // pruning counters at experiment scale.
    let crosscheck_start = std::time::Instant::now();
    let check_progress = defender_profile::Progress::with_default_stride(
        "e15.enumeration_crosscheck",
        window.len() as u64,
        crate::profiling_enabled(),
    );
    let checks: Vec<Option<usize>> = defender_par::par_for_indexed(window.len(), |local| {
        check_progress.tick();
        let mask = lo + local;
        let value = values[local]?;
        if (mask as u32).count_ones() > 6 {
            return None;
        }
        let incidence: Vec<Vec<Ratio>> = pairs
            .iter()
            .enumerate()
            .filter(|&(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, &(i, j))| {
                (0..N)
                    .map(|v| {
                        if v == i || v == j {
                            Ratio::ONE
                        } else {
                            Ratio::ZERO
                        }
                    })
                    .collect()
            })
            .collect();
        let game = defender_game::TwoPlayerMatrixGame::zero_sum(incidence);
        let equilibria = defender_game::enumerate_equilibria(&game);
        for eq in &equilibria {
            assert_eq!(
                eq.row_payoff, value,
                "support-enumeration equilibrium disagrees with the LP value on mask {mask}"
            );
        }
        Some(equilibria.len())
    });
    let mut graphs_checked = 0usize;
    let mut graphs_with_equilibria = 0usize;
    let mut equilibria_total = 0usize;
    for count in checks.into_iter().flatten() {
        graphs_checked += 1;
        if count > 0 {
            graphs_with_equilibria += 1;
        }
        equilibria_total += count;
    }
    report.phase("enumeration_crosscheck", crosscheck_start.elapsed());
    // Whole-corpus facts cannot be witnessed by a proper sub-window, so
    // the global assertions only run unsharded (the per-instance LP-vs-
    // enumeration agreement above still holds on every shard).
    let whole_atlas = !crate::shard::sharded();
    if whole_atlas {
        assert!(
            graphs_with_equilibria > 0,
            "the sparse atlas must carry equal-support equilibria"
        );
    }

    let mut table = Table::new(vec!["value", "graphs", "share"]);
    for (&value, &count) in &histogram {
        table.row(vec![
            value.to_string(),
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / connected_count as f64),
        ]);
    }
    table.print();
    println!("\n{connected_count} labeled connected graphs on {N} vertices");

    if whole_atlas {
        let min = *histogram.keys().next().expect("non-empty atlas");
        let max = *histogram.keys().next_back().expect("non-empty atlas");
        assert_eq!(
            min,
            Ratio::new(1, 4),
            "minimum value is the star's 1/|IS| = 1/4"
        );
        assert_eq!(max, Ratio::new(2, 5), "maximum value is the 2k/n bound");
        println!(
            "extremes: min = {min} (attacker hides in a size-4 independent set), \
             max = {max} (the n/(2k) defense bound, tight)"
        );
    }
    println!(
        "cross-check: support enumeration on the {graphs_checked} graphs with <= 6 edges \
         found {equilibria_total} equal-support equilibria ({graphs_with_equilibria} graphs \
         carry at least one); every equilibrium sits exactly on its LP value"
    );
    if whole_atlas {
        println!("\nPrediction: all values lie in [1/4, 2/5] with both ends attained — confirmed.");
    }
    report.harvest_and_write();
    defender_obs::disable();
}
