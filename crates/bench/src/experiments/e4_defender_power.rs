//! E4 — the headline figure: defender gain is linear in `k`
//! (Theorem 4.5, Corollaries 4.7/4.10).
//!
//! For each bipartite family, sweep every feasible width `k` and report
//! the defender's exact equilibrium gain, the closed form `k·ν/|IS|`, the
//! amplification over the Edge model, and a Monte-Carlo estimate from
//! simulated play. Predicted shape: gain/base = k exactly; simulation
//! within sampling error.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::gain::predicted_k_matching_gain;
use defender_core::model::TupleGame;
use defender_core::simulate::{SimulationConfig, Simulator};
use defender_num::Ratio;

use crate::experiments::common::bipartite_families;
use crate::Table;

const ATTACKERS: usize = 6;
const ROUNDS: u64 = 20_000;

/// Runs the experiment; panics if the linearity law fails anywhere.
pub fn run() {
    println!("== E4: the power of the defender — gain linear in k (Thm 4.5, Cors 4.7/4.10) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e4_defender_power");
    for (name, graph) in bipartite_families() {
        let family_start = std::time::Instant::now();
        let edge_game = TupleGame::new(&graph, 1, ATTACKERS).expect("valid game");
        let base = a_tuple_bipartite(&edge_game).expect("bipartite instances have matching NE");
        let is_size = base.supports().vp_support.len();
        println!(
            "{name}: n = {}, m = {}, |IS| = {is_size}, ν = {ATTACKERS}",
            graph.vertex_count(),
            graph.edge_count()
        );
        let mut table = Table::new(vec![
            "k",
            "gain",
            "k·ν/|IS|",
            "gain/base",
            "simulated",
            "err",
        ]);
        let k_max = is_size.min(graph.edge_count());
        for k in 1..=k_max {
            let game = TupleGame::new(&graph, k, ATTACKERS).expect("valid game");
            let ne = a_tuple_bipartite(&game).expect("k ≤ |IS| succeeds");
            let predicted = predicted_k_matching_gain(k, ATTACKERS, is_size);
            assert_eq!(
                ne.defender_gain(),
                predicted,
                "{name}, k = {k}: closed form"
            );
            let ratio = ne.defender_gain() / base.defender_gain();
            assert_eq!(ratio, Ratio::from(k), "{name}, k = {k}: linearity");
            let sim = Simulator::new(&game, ne.config()).run(&SimulationConfig {
                rounds: ROUNDS,
                seed: 2006 + k as u64,
            });
            let err = sim.gain_error(predicted);
            assert!(
                err < 0.15,
                "{name}, k = {k}: simulation strays ({} vs {predicted})",
                sim.mean_caught
            );
            table.row(vec![
                k.to_string(),
                ne.defender_gain().to_string(),
                predicted.to_string(),
                ratio.to_string(),
                format!("{:.3}", sim.mean_caught),
                format!("{err:.3}"),
            ]);
        }
        table.print();
        println!();
        report.phase(name, family_start.elapsed());
    }
    println!("Paper prediction: gain/base = k in every row — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
