//! E7 — equations (1)–(2) under simulated play.
//!
//! The paper's payoffs are expectations; the simulator plays the mixed
//! equilibrium for real and the empirical means must converge to the
//! closed forms at the Monte-Carlo rate `~1/√rounds`.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::model::TupleGame;
use defender_core::simulate::{SimulationConfig, Simulator};
use defender_graph::generators;
use defender_num::Ratio;

use crate::Table;

/// Runs the experiment; panics if the error at 10⁵ rounds is out of band.
pub fn run() {
    println!("== E7: Monte-Carlo play matches equations (1)-(2) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e7_montecarlo");
    let scenarios = [
        (
            "grid 3x4, k=2, nu=6",
            generators::grid(3, 4),
            2usize,
            6usize,
        ),
        ("cycle C10, k=3, nu=4", generators::cycle(10), 3, 4),
        (
            "K_{3,5}, k=4, nu=8",
            generators::complete_bipartite(3, 5),
            4,
            8,
        ),
    ];
    for (name, graph, k, nu) in scenarios {
        let scenario_start = std::time::Instant::now();
        let game = TupleGame::new(&graph, k, nu).expect("valid game");
        let ne = a_tuple_bipartite(&game).expect("bipartite with k ≤ |IS|");
        let exact_gain = ne.defender_gain();
        let exact_escape = (Ratio::ONE - ne.hit_probability()).to_f64();
        println!(
            "{name}: exact IP_tp = {exact_gain}, exact escape = {:.4}",
            exact_escape
        );
        let mut table = Table::new(vec!["rounds", "mean caught", "gain err", "escape err"]);
        let mut final_err = f64::MAX;
        for rounds in [100u64, 1_000, 10_000, 100_000] {
            let outcome =
                Simulator::new(&game, ne.config()).run(&SimulationConfig { rounds, seed: 0xE7 });
            let mean_escape: f64 = outcome.escape_frequency.iter().sum::<f64>()
                / outcome.escape_frequency.len() as f64;
            let gain_err = outcome.gain_error(exact_gain);
            final_err = gain_err;
            table.row(vec![
                rounds.to_string(),
                format!("{:.4}", outcome.mean_caught),
                format!("{gain_err:.4}"),
                format!("{:.4}", (mean_escape - exact_escape).abs()),
            ]);
        }
        table.print();
        assert!(
            final_err < 0.05,
            "{name}: residual error {final_err:.4} too large"
        );
        println!();
        report.phase(name, scenario_start.elapsed());
    }
    println!("Paper prediction: empirical means converge to the exact rationals — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
