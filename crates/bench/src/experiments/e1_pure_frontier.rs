//! E1 — Theorem 3.1 + Corollary 3.3: the pure-NE existence frontier.
//!
//! For every family in the zoo, report `n`, `m`, the edge-cover number
//! `ρ(G)` and the `⌈n/2⌉` lower bound, then sweep *every* width `k` and
//! check that a pure NE exists exactly when `k ≥ ρ(G)` — and that
//! Corollary 3.3's size test never contradicts the exact answer.

use defender_core::model::TupleGame;
use defender_core::pure::{no_pure_ne_by_size, pure_ne_existence};
use defender_matching::edge_cover::edge_cover_number;

use crate::experiments::common::family_specs;
use crate::{RunReport, Table};

/// Runs the experiment; panics if any instance violates Theorem 3.1.
pub fn run() {
    println!("== E1: pure Nash equilibrium existence frontier (Theorem 3.1, Cor 3.3) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = RunReport::new("e1_pure_frontier");
    let mut table = Table::new(vec![
        "family",
        "n",
        "m",
        "rho(G)",
        "ceil(n/2)",
        "frontier k*",
        "sweep",
    ]);
    // Families are independent instances: sweep them on the worker pool
    // and merge rows/phases in family order, so the table (and hence
    // stdout) is byte-identical for every `--jobs` width. A violated
    // theorem panics inside a task and propagates, failing the run just
    // as the sequential sweep did.
    //
    // Under `--shard i/N` only this shard's window of the zoo is even
    // *constructed* — graph builds emit counters, so touching instances
    // outside the window would break the merged-counters bar.
    let specs = family_specs();
    let window = crate::shard::window(specs.len());
    let families: Vec<(&'static str, defender_graph::Graph)> = specs[window]
        .iter()
        .map(|(name, build)| (*name, build()))
        .collect();
    let progress = defender_profile::Progress::with_default_stride(
        "e1",
        families.len() as u64,
        crate::profiling_enabled(),
    );
    let results = defender_par::par_map(&families, |(name, graph)| {
        let family_start = std::time::Instant::now();
        let rho = edge_cover_number(graph).expect("zoo graphs are game-ready");
        let mut observed_frontier = None;
        for k in 1..=graph.edge_count() {
            let game = TupleGame::new(graph, k, 3).expect("valid width");
            let exists = pure_ne_existence(&game).exists();
            assert_eq!(exists, k >= rho, "{name}: k = {k} disagrees with ρ = {rho}");
            if no_pure_ne_by_size(&game) {
                assert!(!exists, "{name}: Corollary 3.3 contradicted at k = {k}");
            }
            if exists && observed_frontier.is_none() {
                observed_frontier = Some(k);
            }
        }
        let row = vec![
            name.to_string(),
            graph.vertex_count().to_string(),
            graph.edge_count().to_string(),
            rho.to_string(),
            graph.vertex_count().div_ceil(2).to_string(),
            observed_frontier.map_or("none".into(), |k| k.to_string()),
            "ok".into(),
        ];
        progress.tick();
        (row, family_start.elapsed())
    });
    for ((name, _), (row, elapsed)) in families.iter().zip(results) {
        table.row(row);
        report.phase(name, elapsed);
    }
    table.print();
    println!("\nPaper prediction: frontier k* = ρ(G) everywhere; sweep column confirms.");
    report.harvest_and_write();
    defender_obs::disable();
}
