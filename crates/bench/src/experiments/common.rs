//! Shared workload definitions for the experiments.

use defender_graph::{generators, Graph};
use defender_num::rng::StdRng;

/// One lazy graph-family spec: display name plus constructor.
pub type FamilySpec = (&'static str, fn() -> Graph);

/// The standard deterministic family zoo as *lazy* specs:
/// `(name, constructor)`.
///
/// Sharded experiments index this list through
/// [`crate::shard::window`] and construct **only** their window's
/// graphs: graph construction emits `graph.build.*` counters, so an
/// eager zoo would charge every shard for all seventeen builds and the
/// merged counters could never match a single-process run. Unsharded
/// callers use [`deterministic_families`], which builds the whole zoo.
#[must_use]
pub fn family_specs() -> Vec<FamilySpec> {
    vec![
        ("path P8", || generators::path(8)),
        ("path P15", || generators::path(15)),
        ("cycle C6", || generators::cycle(6)),
        ("cycle C7", || generators::cycle(7)),
        ("cycle C12", || generators::cycle(12)),
        ("star K_{1,6}", || generators::star(6)),
        ("wheel W6", || generators::wheel(6)),
        ("complete K5", || generators::complete(5)),
        ("complete K6", || generators::complete(6)),
        ("K_{2,5}", || generators::complete_bipartite(2, 5)),
        ("K_{4,4}", || generators::complete_bipartite(4, 4)),
        ("grid 3x4", || generators::grid(3, 4)),
        ("grid 4x4", || generators::grid(4, 4)),
        ("hypercube Q3", || generators::hypercube(3)),
        ("hypercube Q4", || generators::hypercube(4)),
        ("Petersen", generators::petersen),
        ("ladder L5", || generators::ladder(5)),
    ]
}

/// The standard deterministic family zoo: `(name, graph)`.
#[must_use]
pub fn deterministic_families() -> Vec<(&'static str, Graph)> {
    family_specs()
        .into_iter()
        .map(|(name, build)| (name, build()))
        .collect()
}

/// The bipartite subset of the zoo (instances where Theorem 5.1 applies).
#[must_use]
pub fn bipartite_families() -> Vec<(&'static str, Graph)> {
    deterministic_families()
        .into_iter()
        .filter(|(_, g)| defender_graph::properties::is_bipartite(g))
        .collect()
}

/// Seeded random connected graphs of a given size.
#[must_use]
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::gnp_connected(n, p, &mut rng)
}

/// Seeded random bipartite graph.
#[must_use]
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_bipartite(a, b, p, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_game_ready() {
        for (name, g) in deterministic_families() {
            assert!(!g.has_isolated_vertex(), "{name}");
            assert!(g.edge_count() >= 1, "{name}");
        }
    }

    #[test]
    fn specs_build_the_same_zoo() {
        let specs = family_specs();
        let families = deterministic_families();
        assert_eq!(specs.len(), families.len());
        for ((spec_name, build), (name, graph)) in specs.into_iter().zip(&families) {
            assert_eq!(spec_name, *name);
            let built = build();
            assert_eq!(built.vertex_count(), graph.vertex_count(), "{name}");
            assert_eq!(built.edge_count(), graph.edge_count(), "{name}");
        }
    }

    #[test]
    fn bipartite_subset_is_bipartite() {
        let all = deterministic_families().len();
        let bip = bipartite_families();
        assert!(!bip.is_empty() && bip.len() < all);
    }
}
