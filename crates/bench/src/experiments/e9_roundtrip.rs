//! E9 — Theorem 4.5 round-trips: `1 → k → 1` preserves the matching NE and
//! multiplies/divides the gain by exactly `k`.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::model::TupleGame;
use defender_core::reduction::{expand_to_k_matching, gain_ratio, restrict_to_matching};
use defender_core::CoreError;
use defender_num::Ratio;

use crate::experiments::common::bipartite_families;
use crate::Table;

const ATTACKERS: usize = 6;

/// Runs the experiment; panics on any broken round-trip.
pub fn run() {
    println!("== E9: reduction round-trips (Theorem 4.5, Lemmas 4.6/4.8) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e9_roundtrip");
    let mut table = Table::new(vec![
        "family",
        "E_num",
        "k range",
        "gain ratios",
        "supports preserved",
    ]);
    for (name, graph) in bipartite_families() {
        let family_start = std::time::Instant::now();
        let edge_game = TupleGame::edge_model(&graph, ATTACKERS).expect("valid game");
        let base_k = a_tuple_bipartite(&edge_game).expect("bipartite matching NE");
        let base = restrict_to_matching(&edge_game, &base_k).expect("k = 1 restriction");
        let e_num = base.supports().tp_support.len();
        let mut ratios = Vec::new();
        let mut k_used = Vec::new();
        for k in 1..=graph.edge_count() {
            let game = TupleGame::new(&graph, k, ATTACKERS).expect("valid game");
            match expand_to_k_matching(&game, &base) {
                Ok(kne) => {
                    let ratio = gain_ratio(&kne, &base);
                    assert_eq!(ratio, Ratio::from(k), "{name}, k = {k}");
                    let back = restrict_to_matching(&edge_game, &kne).expect("restriction");
                    assert_eq!(back.supports(), base.supports(), "{name}, k = {k}");
                    assert_eq!(back.defender_gain(), base.defender_gain());
                    ratios.push(ratio.to_string());
                    k_used.push(k);
                }
                Err(CoreError::TupleWiderThanSupport { support_size, .. }) => {
                    assert_eq!(support_size, e_num);
                    assert!(k > e_num, "{name}: premature width failure at k = {k}");
                }
                Err(e) => panic!("{name}, k = {k}: {e}"),
            }
        }
        assert_eq!(
            k_used.len(),
            e_num.min(graph.edge_count()),
            "{name}: feasible range is 1..=E_num"
        );
        table.row(vec![
            name.to_string(),
            e_num.to_string(),
            format!("1..={}", k_used.last().copied().unwrap_or(0)),
            format!("1..{} (= k)", ratios.len()),
            "yes".into(),
        ]);
        report.phase(name, family_start.elapsed());
    }
    table.print();
    println!("\nPaper prediction: every expansion multiplies the gain by exactly k and");
    println!("restriction recovers the original matching NE — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
