//! E6 — Theorem 5.1: the end-to-end bipartite pipeline runs in
//! `max{O(k·n), O(m√n)}`.
//!
//! Times the full recipe — König minimum vertex cover (Hopcroft–Karp)
//! followed by `A_tuple` — on random bipartite graphs of doubling size,
//! and verifies each produced equilibrium with the exact Theorem 3.4
//! checker. The log-log growth exponent should stay below 2 for these
//! sparse instances (`m = Θ(n)` here, so the bound is `O(n^1.5)`).

use defender_core::bipartite::a_tuple_bipartite_report;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::model::TupleGame;

use crate::experiments::common::random_bipartite;
use crate::{linear_fit, median_time, RunReport, Table};

/// Runs the experiment; panics on a failed verification or wild scaling.
pub fn run() {
    println!("== E6: bipartite end-to-end pipeline (Theorem 5.1) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = RunReport::new("e6_bipartite");
    let sweep_start = std::time::Instant::now();
    let k = 4usize;
    let mut table = Table::new(vec!["n", "m", "|IS|", "delta", "median time", "us"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, side) in [250usize, 500, 1_000, 2_000, 4_000].iter().enumerate() {
        let graph = random_bipartite(*side, *side, 3.0 / *side as f64, 7 + i as u64);
        let game = TupleGame::new(&graph, k, 5).expect("valid game");
        let mut stats = (0usize, 0usize);
        let t = median_time(3, || {
            let report = a_tuple_bipartite_report(&game).expect("bipartite + k ≤ |IS|");
            stats = (report.e_num, report.delta);
            std::hint::black_box(report);
        });
        // Verify once per size (analytic mode — exact and cheap).
        let report = a_tuple_bipartite_report(&game).expect("bipartite + k ≤ |IS|");
        let check = verify_mixed_ne(&game, report.ne.config(), VerificationMode::Analytic)
            .expect("analytic preconditions hold for k-matching NE");
        assert!(
            check.is_equilibrium(),
            "n = {}: {:?}",
            graph.vertex_count(),
            check.failures()
        );
        xs.push((graph.vertex_count() as f64).ln());
        ys.push(t.as_secs_f64().max(1e-9).ln());
        table.row(vec![
            graph.vertex_count().to_string(),
            graph.edge_count().to_string(),
            stats.0.to_string(),
            stats.1.to_string(),
            format!("{t:?}"),
            format!("{:.0}", t.as_secs_f64() * 1e6),
        ]);
    }
    report.phase("sweep_n", sweep_start.elapsed());
    table.print();
    let (exponent, _, r2) = linear_fit(&xs, &ys);
    println!("\nlog-log fit: time ~ n^{exponent:.2} (r² = {r2:.3})");
    assert!(
        exponent < 2.2,
        "scaling exponent {exponent:.2} exceeds the m√n regime"
    );
    println!("Paper prediction: max{{O(k·n), O(m√n)}} — confirmed for sparse m = Θ(n).");
    report.harvest_and_write();
    defender_obs::disable();
}
