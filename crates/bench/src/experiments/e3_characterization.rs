//! E3 — Theorem 3.4: the characterization accepts exactly the equilibria.
//!
//! For each bipartite family, build the k-matching NE (accepted) and five
//! perturbation families that each break one equilibrium condition
//! (all rejected). Because Theorem 3.4 is an *iff*, a rejection is a proof
//! of non-equilibrium; the experiment panics if any perturbation slips
//! through or the true NE is rejected.

use defender_core::bipartite::a_tuple_bipartite;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::model::{MixedConfig, TupleGame};
use defender_game::MixedStrategy;
use defender_graph::VertexId;
use defender_num::Ratio;

use crate::experiments::common::bipartite_families;
use crate::Table;

/// Outcome marker for one cell of the matrix.
fn verdict(game: &TupleGame<'_>, config: Option<MixedConfig>) -> &'static str {
    match config {
        None => "n/a",
        Some(c) => {
            let report =
                verify_mixed_ne(game, &c, VerificationMode::Auto).expect("verification applies");
            if report.is_equilibrium() {
                "ACCEPT"
            } else {
                "reject"
            }
        }
    }
}

/// Re-weights a uniform distribution by doubling the first entry's weight.
fn bias<S: Clone + Ord>(strategy: &MixedStrategy<S>) -> Option<MixedStrategy<S>> {
    let n = strategy.support_size();
    if n < 2 {
        return None;
    }
    let denom = i64::try_from(n + 1).expect("small support");
    let entries: Vec<(S, Ratio)> = strategy
        .iter()
        .enumerate()
        .map(|(i, (s, _))| {
            let w = if i == 0 {
                Ratio::new(2, denom)
            } else {
                Ratio::new(1, denom)
            };
            (s.clone(), w)
        })
        .collect();
    MixedStrategy::from_entries(entries).ok()
}

/// Drops the last entry of a distribution, re-uniforming the rest.
fn shrink<S: Clone + Ord>(strategy: &MixedStrategy<S>) -> Option<MixedStrategy<S>> {
    let n = strategy.support_size();
    if n < 2 {
        return None;
    }
    let kept: Vec<S> = strategy
        .iter()
        .take(n - 1)
        .map(|(s, _)| s.clone())
        .collect();
    Some(MixedStrategy::uniform(kept))
}

/// Runs the experiment; panics on any misclassification.
pub fn run() {
    println!("== E3: the Theorem 3.4 characterization accepts exactly the equilibria ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = crate::RunReport::new("e3_characterization");
    let k = 2usize;
    let nu = 4usize;
    let mut table = Table::new(vec![
        "family",
        "NE",
        "biased tp",
        "biased vp",
        "tp support-1",
        "vp onto VC",
        "vp dependent",
    ]);
    for (name, graph) in bipartite_families() {
        if k > graph.edge_count() {
            continue;
        }
        let family_start = std::time::Instant::now();
        let game = TupleGame::new(&graph, k, nu).expect("valid game");
        let Ok(ne) = a_tuple_bipartite(&game) else {
            continue; // k > |IS| — out of scope here
        };
        let base = ne.config();
        let vp = base.attacker(0).clone();
        let tp = base.defender().clone();

        // Perturbation 1: biased defender weights (breaks 2(a)).
        let biased_tp = bias(&tp)
            .map(|tp2| MixedConfig::symmetric(&game, vp.clone(), tp2).expect("valid config"));
        // Perturbation 2: biased attacker weights (breaks 3(a)).
        let biased_vp = bias(&vp)
            .map(|vp2| MixedConfig::symmetric(&game, vp2, tp.clone()).expect("valid config"));
        // Perturbation 3: defender forgets a tuple (breaks cover or 2(a)).
        let shrunk_tp = shrink(&tp)
            .map(|tp2| MixedConfig::symmetric(&game, vp.clone(), tp2).expect("valid config"));
        // Perturbation 4: an attacker support vertex swapped for a covered
        // VC vertex (breaks 3(a): some support tuple outweighs others).
        let onto_vc = {
            let is = ne.supports().vp_support.clone();
            let vc: Vec<VertexId> = graph
                .vertices()
                .filter(|v| is.binary_search(v).is_err())
                .collect();
            vc.first().map(|&u| {
                let mut moved = is.clone();
                moved.pop();
                moved.push(u);
                moved.sort_unstable();
                moved.dedup();
                MixedConfig::symmetric(&game, MixedStrategy::uniform(moved), tp.clone())
                    .expect("valid config")
            })
        };
        // Perturbation 5: dependent attacker support (breaks minimal-hit or
        // mass maximality; Definition 4.1 condition (1) is gone).
        let dependent = {
            let is = ne.supports().vp_support.clone();
            let neighbor = graph.neighbors(is[0]).next().expect("no isolated vertices");
            let mut bigger = is.clone();
            bigger.push(neighbor);
            bigger.sort_unstable();
            bigger.dedup();
            Some(
                MixedConfig::symmetric(&game, MixedStrategy::uniform(bigger), tp.clone())
                    .expect("valid config"),
            )
        };

        let cells = [
            verdict(&game, Some(base.clone())),
            verdict(&game, biased_tp),
            verdict(&game, biased_vp),
            verdict(&game, shrunk_tp),
            verdict(&game, onto_vc),
            verdict(&game, dependent),
        ];
        assert_eq!(cells[0], "ACCEPT", "{name}: the true NE must be accepted");
        for (i, &c) in cells.iter().enumerate().skip(1) {
            assert_ne!(c, "ACCEPT", "{name}: perturbation {i} slipped through");
        }
        table.row(vec![
            name.to_string(),
            cells[0].into(),
            cells[1].into(),
            cells[2].into(),
            cells[3].into(),
            cells[4].into(),
            cells[5].into(),
        ]);
        report.phase(name, family_start.elapsed());
    }
    table.print();
    println!("\nPaper prediction: ACCEPT on column 1, reject (or n/a) elsewhere — confirmed.");
    report.harvest_and_write();
    defender_obs::disable();
}
