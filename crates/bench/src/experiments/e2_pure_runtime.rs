//! E2 — Corollary 3.2: pure-NE existence is decidable in polynomial time.
//!
//! Times [`pure_ne_existence`] (minimum edge cover via blossom matching +
//! padding) on connected `G(n, p)` graphs of doubling size and fits the
//! log-log growth rate: a bounded exponent certifies polynomial scaling.

use defender_core::model::TupleGame;
use defender_core::pure::pure_ne_existence;

use crate::experiments::common::random_connected;
use crate::{linear_fit, median_time, RunReport, Table};

/// Runs the experiment; panics if the fitted growth exponent explodes.
pub fn run() {
    println!("== E2: pure-NE existence runtime (Corollary 3.2) ==\n");
    defender_obs::enable();
    defender_obs::reset();
    let mut report = RunReport::new("e2_pure_runtime");
    let sweep_start = std::time::Instant::now();
    let sizes = [64usize, 128, 256, 512, 1024];
    let mut table = Table::new(vec!["n", "m", "median time", "us/run"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    // Instance *construction* (seeded G(n,p) generation, connectivity
    // retries) parallelizes; the timing loop below stays serial so the
    // medians measure an unloaded machine.
    let graphs = defender_par::par_for_indexed(sizes.len(), |i| {
        let n = sizes[i];
        random_connected(n, 4.0 / n as f64, 42 + i as u64)
    });
    for (&n, graph) in sizes.iter().zip(&graphs) {
        let game = TupleGame::new(graph, 1, 2).expect("valid game");
        let t = median_time(5, || {
            std::hint::black_box(pure_ne_existence(&game));
        });
        xs.push((n as f64).ln());
        ys.push(t.as_secs_f64().max(1e-9).ln());
        table.row(vec![
            n.to_string(),
            graph.edge_count().to_string(),
            format!("{t:?}"),
            format!("{:.1}", t.as_secs_f64() * 1e6),
        ]);
    }
    report.phase("sweep_n", sweep_start.elapsed());
    table.print();
    let (exponent, _, r2) = linear_fit(&xs, &ys);
    println!("\nlog-log fit: time ~ n^{exponent:.2} (r² = {r2:.3})");
    assert!(
        exponent < 3.5,
        "growth exponent {exponent:.2} is not polynomial-looking for this range"
    );
    println!(
        "Paper prediction: polynomial — confirmed (blossom matching dominates, O(n³) worst case)."
    );
    report.harvest_and_write();
    defender_obs::disable();
}
