//! Process-wide wiring for the `--cache <DIR>` experiment flag.
//!
//! Experiments that solve exact equilibria route through
//! [`defender_cache::EquilibriumCache`] when a cache is installed and
//! fall back to the direct solver otherwise, so the flag is purely an
//! accelerator: answers (and main-section counters, thanks to delta
//! replay) are identical either way the cache is warm or cold.

use std::path::Path;
use std::sync::{Arc, Mutex};

use defender_cache::EquilibriumCache;

static CACHE: Mutex<Option<Arc<EquilibriumCache>>> = Mutex::new(None);

fn slot() -> std::sync::MutexGuard<'static, Option<Arc<EquilibriumCache>>> {
    CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Opens (or initializes) the persistent cache at `dir` and installs it
/// for the rest of the process.
///
/// # Errors
///
/// Propagates [`EquilibriumCache::open`] failures as a displayable
/// message (the experiment harness turns it into a usage error).
pub fn set_cache_dir(dir: &Path) -> Result<(), String> {
    let cache = EquilibriumCache::open(dir)
        .map_err(|e| format!("cannot open cache {}: {e}", dir.display()))?;
    *slot() = Some(Arc::new(cache));
    Ok(())
}

/// Uninstalls the process cache (test hygiene).
pub fn clear_cache() {
    *slot() = None;
}

/// The installed cache, if `--cache` was passed.
#[must_use]
pub fn handle() -> Option<Arc<EquilibriumCache>> {
    slot().clone()
}

/// Solves through the installed cache when there is one, directly
/// otherwise — the single entry point experiments use so `--cache` can
/// change the route without changing the answer.
///
/// # Errors
///
/// Same as [`defender_core::solve::solve_exact`].
pub fn solve_exact_cached(
    game: &defender_core::model::TupleGame<'_>,
    tuple_limit: usize,
) -> Result<defender_core::solve::ExactEquilibrium, defender_core::CoreError> {
    solve_exact_cached_with_hint(game, tuple_limit, |_| None)
}

/// [`solve_exact_cached`] with a warm-start hint. Cached route: the hint
/// sees the canonical game (the one actually solved). Direct route: it
/// sees `game` itself.
///
/// # Errors
///
/// Same as [`defender_core::solve::solve_exact`].
pub fn solve_exact_cached_with_hint<F>(
    game: &defender_core::model::TupleGame<'_>,
    tuple_limit: usize,
    hint: F,
) -> Result<defender_core::solve::ExactEquilibrium, defender_core::CoreError>
where
    F: Fn(&defender_core::model::TupleGame<'_>) -> Option<(Vec<usize>, Vec<usize>)>,
{
    match handle() {
        Some(cache) => cache.solve_with_hint(game, tuple_limit, hint),
        None => {
            let supports = hint(game);
            let refs = supports
                .as_ref()
                .map(|(rows, cols)| (rows.as_slice(), cols.as_slice()));
            defender_core::solve::solve_exact_hinted(game, tuple_limit, refs)
        }
    }
}

/// Persists the installed cache's sidecar, if any.
///
/// # Errors
///
/// Propagates sidecar write failures as a displayable message.
pub fn persist() -> Result<(), String> {
    match handle() {
        Some(cache) => cache
            .persist()
            .map_err(|e| format!("cannot persist cache: {e}")),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_none_until_installed_and_clears() {
        let _guard = crate::test_lock();
        clear_cache();
        assert!(handle().is_none());
        let dir = std::env::temp_dir().join(format!("bench-cache-{}", std::process::id()));
        set_cache_dir(&dir).unwrap();
        assert!(handle().is_some());
        persist().unwrap();
        assert!(dir.join(defender_cache::SIDECAR_FILE).exists());
        clear_cache();
        assert!(handle().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
