//! Experiment harness for the reproduction.
//!
//! The paper is pure theory, so "tables and figures" are its theorems;
//! every module under [`experiments`] regenerates one of them empirically
//! (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! outcomes). Each `exp_*` binary is a thin wrapper over the matching
//! `experiments::eN::run` function; `run_all_experiments` chains them.

pub mod cache;
pub mod diff;
pub mod experiments;
pub mod report;
pub mod shard;
pub mod timing;

pub use report::{RunReport, Table};
pub use timing::{linear_fit, median_time};

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether `--profile` was passed to the running experiment binary.
/// Consulted by [`RunReport::harvest_and_write`] (append the in-process
/// profile to the sidecar) and by the heartbeat reporters in the sweep
/// loops.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Whether the current experiment run was started with `--profile`.
#[must_use]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Shared entry point for every `exp_*` binary: parses the flags all
/// experiments share, runs the experiment, and exports artifacts.
///
/// Supported flags:
///
/// - `--trace <FILE>` — record an event-level timeline of the run and
///   write it as Chrome trace-event JSON (open in Perfetto or
///   `chrome://tracing`).
/// - `--jobs <N>` — worker-pool width for the parallel inner loops
///   (default: the machine's available parallelism). Results are
///   byte-identical for every `N`; only wall-clock time changes.
/// - `--profile` — record the trace in-process, harvest it with
///   `defender-profile` at the end of the run, append a `profile`
///   section (`prof.calls.*` / `prof.self_ns.*`) to the `BENCH_*.json`
///   sidecar, and emit live heartbeat lines from the sweep loops.
///   Composes with `--trace`: one recording serves both.
/// - `--shard <i>/<N>` — run only shard `i` of an `N`-way corpus
///   partition (see [`shard::window`]); used by `defender sweep` to
///   split one experiment across worker processes. Merged counters over
///   all `N` shards are byte-identical to a single-process run.
/// - `--cache <DIR>` — memoize exact equilibrium solves keyed by the
///   instance's canonical graph form (see `defender-cache`), persisting
///   the memo as a JSON sidecar in `DIR`. A warm cache makes repeat runs
///   near-instant while main-section counters stay byte-identical to the
///   cold run (delta replay); the cache's own `cache.*` counters land in
///   the sidecar's run-variant section.
/// - `--telemetry` — stream NDJSON telemetry events on stdout
///   (`start`/`window`/`phase`/`instance`/`hb`/`snapshot`/`summary`,
///   see `defender_obs::telemetry`) so a parent sweep runner can render
///   live per-shard progress and health.
///
/// Exits with status 2 on a usage or export error (experiment assertion
/// failures panic, as before).
pub fn experiment_main(run: impl FnOnce()) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = experiment_main_with(&argv, run) {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}

fn experiment_main_with(argv: &[String], run: impl FnOnce()) -> Result<(), String> {
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut profile = false;
    let mut telemetry = false;
    let mut shard_spec: Option<(u64, u64)> = None;
    let mut iter = argv.iter();
    while let Some(token) = iter.next() {
        match token.as_str() {
            "--trace" => {
                let value = iter.next().ok_or("option `--trace` needs a value")?;
                trace_path = Some(std::path::PathBuf::from(value));
            }
            "--jobs" => {
                let value = iter.next().ok_or("option `--jobs` needs a value")?;
                let n: usize = value.parse().map_err(|_| {
                    format!("option `--jobs` needs a positive integer, got `{value}`")
                })?;
                if n == 0 {
                    return Err("option `--jobs` needs a positive integer, got `0`".to_string());
                }
                defender_par::set_jobs(n);
            }
            "--cache" => {
                let value = iter.next().ok_or("option `--cache` needs a value")?;
                cache::set_cache_dir(std::path::Path::new(value))?;
            }
            "--profile" => profile = true,
            "--telemetry" => telemetry = true,
            "--shard" => {
                let value = iter.next().ok_or("option `--shard` needs a value")?;
                shard_spec = Some(shard::parse_shard_flag(value)?);
            }
            other => {
                return Err(format!(
                    "unknown option `{other}` (supported: --trace <FILE>, --jobs <N>, \
                     --profile, --shard <i>/<N>, --telemetry, --cache <DIR>)"
                ))
            }
        }
    }
    PROFILING.store(profile, Ordering::Relaxed);
    if let Some((index, total)) = shard_spec {
        shard::set_shard(index, total)?;
    }
    if telemetry {
        let (index, total) = shard_spec.unwrap_or((0, 1));
        defender_obs::telemetry::enable_for_shard(index, total);
    }
    if trace_path.is_some() || profile {
        defender_obs::trace::start();
    }
    let heartbeat = telemetry.then(spawn_heartbeat);
    defender_obs::telemetry::Event::new("start")
        .u64("pid", u64::from(std::process::id()))
        .emit();
    run();
    if let Some(handle) = heartbeat {
        handle.stop();
    }
    cache::persist()?;
    defender_obs::telemetry::Event::new("summary")
        .bool("ok", true)
        .u64("elapsed_ns", defender_obs::trace::elapsed_ns())
        .emit();
    defender_obs::telemetry::disable();
    if let Some(path) = trace_path {
        defender_obs::trace::stop();
        defender_obs::trace::write_chrome_trace(&path)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        eprintln!("wrote trace {}", path.display());
    } else if profile {
        defender_obs::trace::stop();
    }
    Ok(())
}

/// Handle for the `--telemetry` heartbeat thread: signals it to stop and
/// joins it, so the last `hb`/`snapshot` pair never interleaves with the
/// `summary` event.
struct HeartbeatHandle {
    stop: std::sync::Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl HeartbeatHandle {
    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

/// Interval between liveness heartbeats on the telemetry stream. Half a
/// second keeps the parent dashboard fresh while staying far under any
/// sane stall-detection timeout.
const HEARTBEAT_INTERVAL: std::time::Duration = std::time::Duration::from_millis(500);

/// Spawns the `--telemetry` heartbeat thread: every [`HEARTBEAT_INTERVAL`]
/// it emits an `hb` event (liveness) followed by a `snapshot` event
/// carrying the cumulative obs counter/gauge/histogram state, so the
/// parent sweep runner can show live rates and detect stalls even while
/// the experiment is deep inside one long instance.
fn spawn_heartbeat() -> HeartbeatHandle {
    let start = std::time::Instant::now();
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let stop_flag = std::sync::Arc::clone(&stop);
    // lint: allow(spawn) telemetry heartbeat; joined by HeartbeatHandle::stop
    let thread = std::thread::Builder::new()
        .name("telemetry-hb".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(HEARTBEAT_INTERVAL);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                defender_obs::telemetry::Event::new("hb")
                    .u64("elapsed_ns", start.elapsed().as_nanos() as u64)
                    .emit();
                defender_obs::telemetry::snapshot_event(&defender_obs::snapshot()).emit();
            }
        })
        .expect("spawn telemetry heartbeat thread");
    HeartbeatHandle { stop, thread }
}

/// Serializes unit tests that mutate the process-global shard/telemetry
/// state (the statics in [`shard`] and `defender_obs::telemetry`).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn jobs_flag_sets_the_pool_width() {
        let mut ran = false;
        experiment_main_with(&args(&["--jobs", "3"]), || {
            ran = true;
            assert_eq!(defender_par::jobs(), 3);
        })
        .unwrap();
        assert!(ran);
        defender_par::set_jobs(1);
    }

    #[test]
    fn jobs_flag_rejects_garbage() {
        let run = || panic!("must not run");
        assert!(experiment_main_with(&args(&["--jobs"]), run).is_err());
        assert!(experiment_main_with(&args(&["--jobs", "zero"]), run).is_err());
        assert!(experiment_main_with(&args(&["--jobs", "0"]), run).is_err());
        assert!(experiment_main_with(&args(&["--bogus"]), run).is_err());
    }

    #[test]
    fn shard_flag_declares_the_window() {
        let _guard = test_lock();
        let mut seen = None;
        experiment_main_with(&args(&["--shard", "1/3"]), || {
            seen = shard::shard();
        })
        .unwrap();
        assert_eq!(seen, Some((1, 3)));
        shard::clear_shard();
        let run = || panic!("must not run");
        assert!(experiment_main_with(&args(&["--shard"]), run).is_err());
        assert!(experiment_main_with(&args(&["--shard", "3/3"]), run).is_err());
        assert!(experiment_main_with(&args(&["--shard", "x"]), run).is_err());
    }

    #[test]
    fn cache_flag_installs_and_persists_the_memo() {
        let _guard = test_lock();
        cache::clear_cache();
        let dir = std::env::temp_dir().join(format!("bench-cache-flag-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut installed = false;
        experiment_main_with(&args(&["--cache", dir.to_str().unwrap()]), || {
            installed = cache::handle().is_some();
        })
        .unwrap();
        assert!(installed, "cache installed during the run");
        assert!(
            dir.join(defender_cache::SIDECAR_FILE).exists(),
            "sidecar persisted after the run"
        );
        cache::clear_cache();
        let run = || panic!("must not run");
        assert!(experiment_main_with(&args(&["--cache"]), run).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_flag_gates_the_event_stream() {
        let _guard = test_lock();
        let mut during = false;
        experiment_main_with(&args(&["--telemetry", "--shard", "0/2"]), || {
            during = defender_obs::telemetry::enabled();
        })
        .unwrap();
        assert!(during, "telemetry on during the run");
        assert!(
            !defender_obs::telemetry::enabled(),
            "telemetry off after the run"
        );
        shard::clear_shard();
    }

    #[test]
    fn profile_flag_starts_tracing_and_sets_the_gate() {
        let mut observed = (false, false);
        experiment_main_with(&args(&["--profile"]), || {
            observed = (profiling_enabled(), defender_obs::trace::enabled());
        })
        .unwrap();
        assert_eq!(observed, (true, true), "gate + recording during run");
        assert!(
            !defender_obs::trace::enabled(),
            "recording stops after the run"
        );
        PROFILING.store(false, Ordering::Relaxed);
        defender_obs::trace::clear();
        experiment_main_with(&args(&[]), || {
            assert!(!profiling_enabled());
        })
        .unwrap();
    }
}
