//! Experiment harness for the reproduction.
//!
//! The paper is pure theory, so "tables and figures" are its theorems;
//! every module under [`experiments`] regenerates one of them empirically
//! (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! outcomes). Each `exp_*` binary is a thin wrapper over the matching
//! `experiments::eN::run` function; `run_all_experiments` chains them.

pub mod experiments;
pub mod report;
pub mod timing;

pub use report::{RunReport, Table};
pub use timing::{linear_fit, median_time};
