//! Experiment harness for the reproduction.
//!
//! The paper is pure theory, so "tables and figures" are its theorems;
//! every module under [`experiments`] regenerates one of them empirically
//! (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! outcomes). Each `exp_*` binary is a thin wrapper over the matching
//! `experiments::eN::run` function; `run_all_experiments` chains them.

pub mod diff;
pub mod experiments;
pub mod report;
pub mod timing;

pub use report::{RunReport, Table};
pub use timing::{linear_fit, median_time};

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether `--profile` was passed to the running experiment binary.
/// Consulted by [`RunReport::harvest_and_write`] (append the in-process
/// profile to the sidecar) and by the heartbeat reporters in the sweep
/// loops.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Whether the current experiment run was started with `--profile`.
#[must_use]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Shared entry point for every `exp_*` binary: parses the flags all
/// experiments share, runs the experiment, and exports artifacts.
///
/// Supported flags:
///
/// - `--trace <FILE>` — record an event-level timeline of the run and
///   write it as Chrome trace-event JSON (open in Perfetto or
///   `chrome://tracing`).
/// - `--jobs <N>` — worker-pool width for the parallel inner loops
///   (default: the machine's available parallelism). Results are
///   byte-identical for every `N`; only wall-clock time changes.
/// - `--profile` — record the trace in-process, harvest it with
///   `defender-profile` at the end of the run, append a `profile`
///   section (`prof.calls.*` / `prof.self_ns.*`) to the `BENCH_*.json`
///   sidecar, and emit live heartbeat lines from the sweep loops.
///   Composes with `--trace`: one recording serves both.
///
/// Exits with status 2 on a usage or export error (experiment assertion
/// failures panic, as before).
pub fn experiment_main(run: impl FnOnce()) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = experiment_main_with(&argv, run) {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}

fn experiment_main_with(argv: &[String], run: impl FnOnce()) -> Result<(), String> {
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut profile = false;
    let mut iter = argv.iter();
    while let Some(token) = iter.next() {
        match token.as_str() {
            "--trace" => {
                let value = iter.next().ok_or("option `--trace` needs a value")?;
                trace_path = Some(std::path::PathBuf::from(value));
            }
            "--jobs" => {
                let value = iter.next().ok_or("option `--jobs` needs a value")?;
                let n: usize = value.parse().map_err(|_| {
                    format!("option `--jobs` needs a positive integer, got `{value}`")
                })?;
                if n == 0 {
                    return Err("option `--jobs` needs a positive integer, got `0`".to_string());
                }
                defender_par::set_jobs(n);
            }
            "--profile" => profile = true,
            other => {
                return Err(format!(
                    "unknown option `{other}` (supported: --trace <FILE>, --jobs <N>, --profile)"
                ))
            }
        }
    }
    PROFILING.store(profile, Ordering::Relaxed);
    if trace_path.is_some() || profile {
        defender_obs::trace::start();
    }
    run();
    if let Some(path) = trace_path {
        defender_obs::trace::stop();
        defender_obs::trace::write_chrome_trace(&path)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        eprintln!("wrote trace {}", path.display());
    } else if profile {
        defender_obs::trace::stop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn jobs_flag_sets_the_pool_width() {
        let mut ran = false;
        experiment_main_with(&args(&["--jobs", "3"]), || {
            ran = true;
            assert_eq!(defender_par::jobs(), 3);
        })
        .unwrap();
        assert!(ran);
        defender_par::set_jobs(1);
    }

    #[test]
    fn jobs_flag_rejects_garbage() {
        let run = || panic!("must not run");
        assert!(experiment_main_with(&args(&["--jobs"]), run).is_err());
        assert!(experiment_main_with(&args(&["--jobs", "zero"]), run).is_err());
        assert!(experiment_main_with(&args(&["--jobs", "0"]), run).is_err());
        assert!(experiment_main_with(&args(&["--bogus"]), run).is_err());
    }

    #[test]
    fn profile_flag_starts_tracing_and_sets_the_gate() {
        let mut observed = (false, false);
        experiment_main_with(&args(&["--profile"]), || {
            observed = (profiling_enabled(), defender_obs::trace::enabled());
        })
        .unwrap();
        assert_eq!(observed, (true, true), "gate + recording during run");
        assert!(
            !defender_obs::trace::enabled(),
            "recording stops after the run"
        );
        PROFILING.store(false, Ordering::Relaxed);
        defender_obs::trace::clear();
        experiment_main_with(&args(&[]), || {
            assert!(!profiling_enabled());
        })
        .unwrap();
    }
}
