//! Plain-text table rendering and machine-readable run reports for
//! experiment output.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use defender_obs::json::{JsonArray, JsonObject};

/// A right-aligned text table printed in GitHub-markdown style, so
/// experiment output can be pasted straight into EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A machine-readable record of one experiment run: named phases with
/// wall-clock time plus algorithm counters harvested from `defender-obs`.
///
/// Experiment binaries call [`RunReport::write_sidecar`] at the end of a
/// run to drop a `BENCH_<experiment>.json` file next to the working
/// directory, so successive runs can be diffed mechanically (the JSON is
/// emitted by the same stable writer the obs registry uses).
#[derive(Debug)]
pub struct RunReport {
    experiment: String,
    phases: Vec<(String, Duration)>,
    counters: Vec<(String, u64)>,
    parallelism: Vec<(String, u64)>,
    profile: Vec<(String, u64)>,
}

impl RunReport {
    /// Starts an empty report for `experiment` (e.g. `"e5_atuple_runtime"`).
    #[must_use]
    pub fn new(experiment: &str) -> RunReport {
        RunReport {
            experiment: experiment.to_string(),
            phases: Vec::new(),
            counters: Vec::new(),
            parallelism: Vec::new(),
            profile: Vec::new(),
        }
    }

    /// Records a completed phase with its wall-clock duration, and
    /// announces it on the telemetry stream (`phase` event) when a sweep
    /// runner is listening.
    pub fn phase(&mut self, name: &str, elapsed: Duration) -> &mut RunReport {
        defender_obs::telemetry::Event::new("phase")
            .str("name", name)
            .u64("wall_ns", elapsed.as_nanos() as u64)
            .emit();
        self.phases.push((name.to_string(), elapsed));
        self
    }

    /// Runs `body` as a named phase, recording its wall-clock time.
    pub fn timed_phase<T>(&mut self, name: &str, body: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = body();
        self.phase(name, start.elapsed());
        out
    }

    /// Records one algorithm counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut RunReport {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Records one execution-shape metric into the "parallelism" section
    /// (used by the sweep merger for `sw.*` shard-shape entries).
    pub fn parallelism(&mut self, name: &str, value: u64) -> &mut RunReport {
        self.parallelism.push((name.to_string(), value));
        self
    }

    /// Whether `name` belongs in the "parallelism" section rather than
    /// the jobs-invariant "counters" object: the `par.*` namespace varies
    /// with `--jobs`, the `sw.*` namespace with `--shards`, `cache.*`
    /// with the warmth of the `--cache` store (hits on a second run are
    /// misses on the first; `cache.canon_ns` is wall time), and `srv.*`
    /// with serving traffic shape (hit/miss/coalesced splits, queue
    /// depth, latency — all warmth- and timing-variant by design; the
    /// serve sidecar's judged counters come from the cache's stored
    /// per-class deltas instead).
    fn is_execution_shape(name: &str) -> bool {
        ["par.", "sw.", "cache.", "srv."]
            .iter()
            .any(|ns| name.starts_with(ns))
    }

    /// Copies every counter from an obs snapshot into the report.
    ///
    /// The `par.*` namespace is an execution-shape record (pool width,
    /// per-worker task splits) that legitimately varies with `--jobs`,
    /// and `sw.*` (shard window shape) varies with `--shards`; both go
    /// into the separate "parallelism" section so the "counters" object
    /// stays byte-identical for every pool and shard width.
    pub fn counters_from(&mut self, snapshot: &defender_obs::Snapshot) -> &mut RunReport {
        for (name, value) in &snapshot.counters {
            if Self::is_execution_shape(name) {
                self.parallelism.push((name.clone(), *value));
            } else {
                self.counters.push((name.clone(), *value));
            }
        }
        for (name, value) in &snapshot.gauges {
            if Self::is_execution_shape(name) {
                self.parallelism.push((name.clone(), *value));
            }
        }
        self
    }

    /// Appends the span attribution of a trace profile: `prof.calls.*`
    /// and `prof.self_ns.*` into the `profile` section (self-times are
    /// machine-sensitive, so they stay out of the jobs-invariant
    /// `counters` object), and the jobs-variant `prof.worker_busy_ppm.*`
    /// into the `parallelism` section next to `par.tasks.w*`.
    pub fn profile_from(&mut self, profile: &defender_profile::Profile) -> &mut RunReport {
        for span in &profile.spans {
            self.profile
                .push((format!("prof.calls.{}", span.name), span.calls));
        }
        for span in &profile.spans {
            self.profile
                .push((format!("prof.self_ns.{}", span.name), span.self_ns));
        }
        for worker in &profile.workers {
            self.parallelism.push((
                format!("prof.worker_busy_ppm.{}", worker.label),
                worker.busy_ppm,
            ));
        }
        self
    }

    /// The report as a stable JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut phases = JsonArray::new();
        for (name, elapsed) in &self.phases {
            let mut p = JsonObject::new();
            p.field_str("name", name);
            p.field_f64("wall_seconds", elapsed.as_secs_f64());
            phases.push_raw(&p.finish());
        }
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.field_u64(name, *value);
        }
        let mut root = JsonObject::new();
        root.field_str("experiment", &self.experiment);
        root.field_raw("phases", &phases.finish());
        root.field_raw("counters", &counters.finish());
        if !self.parallelism.is_empty() {
            let mut par = JsonObject::new();
            for (name, value) in &self.parallelism {
                par.field_u64(name, *value);
            }
            root.field_raw("parallelism", &par.finish());
        }
        if !self.profile.is_empty() {
            let mut prof = JsonObject::new();
            for (name, value) in &self.profile {
                prof.field_u64(name, *value);
            }
            root.field_raw("profile", &prof.finish());
        }
        root.finish()
    }

    /// Writes `BENCH_<experiment>.json` in the current directory and
    /// returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write_sidecar(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// The standard tail call of every experiment: harvests the counter
    /// registry from the current obs snapshot, writes the sidecar, and
    /// reports the outcome (a failed write warns on stderr rather than
    /// failing the run — the experiment result itself still stands).
    ///
    /// Publishes the trace-ring drop total into `trace.dropped_events`
    /// first, so truncated timelines surface in the sidecar. Under
    /// `--profile` ([`crate::profiling_enabled`]) it also harvests the
    /// live trace through `defender-profile` and appends the span
    /// attribution (see [`RunReport::profile_from`]).
    pub fn harvest_and_write(&mut self) {
        defender_obs::trace::publish_drop_counter();
        if crate::profiling_enabled() {
            let profile =
                defender_profile::Profile::build(&defender_profile::TraceInput::from_live());
            self.profile_from(&profile);
            eprint!("{}", defender_profile::to_table(&profile, 10));
        }
        self.counters_from(&defender_obs::snapshot());
        match self.write_sidecar() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncould not write BENCH sidecar: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["k", "gain"]);
        t.row(vec!["1", "2"]).row(vec!["10", "20/3"]);
        let s = t.render();
        assert!(s.contains("|  k | gain |"));
        assert!(s.contains("| 10 | 20/3 |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn par_metrics_are_segregated_from_counters() {
        let snapshot = defender_obs::Snapshot {
            counters: vec![
                ("algo.pivots".to_string(), 7),
                ("par.tasks.w0".to_string(), 12),
                ("par.tasks.w1".to_string(), 5),
            ],
            gauges: vec![("other.gauge".to_string(), 3), ("par.jobs".to_string(), 2)],
            histograms: Vec::new(),
            spans: Vec::new(),
        };
        let mut report = RunReport::new("unit");
        report.counters_from(&snapshot);
        let json = report.to_json();
        // The jobs-invariant counters object holds only algorithm work.
        assert!(json.contains(r#""counters": {"algo.pivots": 7}"#), "{json}");
        // Execution shape lands in the parallelism section.
        assert!(json.contains(r#""parallelism""#), "{json}");
        assert!(json.contains(r#""par.jobs": 2"#), "{json}");
        assert!(json.contains(r#""par.tasks.w0": 12"#), "{json}");
        // Non-par gauges are not counters and stay out entirely.
        assert!(!json.contains("other.gauge"), "{json}");
    }

    #[test]
    fn sw_metrics_are_segregated_like_par() {
        let snapshot = defender_obs::Snapshot {
            counters: vec![
                ("algo.pivots".to_string(), 7),
                ("sw.window_instances".to_string(), 6),
            ],
            gauges: vec![
                ("sw.shard_index".to_string(), 1),
                ("sw.shard_total".to_string(), 3),
            ],
            histograms: Vec::new(),
            spans: Vec::new(),
        };
        let mut report = RunReport::new("unit");
        report.counters_from(&snapshot);
        let json = report.to_json();
        assert!(json.contains(r#""counters": {"algo.pivots": 7}"#), "{json}");
        assert!(json.contains(r#""sw.window_instances": 6"#), "{json}");
        assert!(json.contains(r#""sw.shard_index": 1"#), "{json}");
        assert!(json.contains(r#""sw.shard_total": 3"#), "{json}");
    }

    #[test]
    fn srv_metrics_are_segregated_like_par() {
        // Serving counters split by cache warmth and traffic shape
        // (hit/miss/coalesced, queue depth); they must never land in the
        // judged counters object the bench gate diffs.
        let snapshot = defender_obs::Snapshot {
            counters: vec![
                ("algo.pivots".to_string(), 7),
                ("srv.hits".to_string(), 40),
                ("srv.misses".to_string(), 2),
                ("cache.hits".to_string(), 41),
            ],
            gauges: vec![("srv.queue_depth".to_string(), 3)],
            histograms: Vec::new(),
            spans: Vec::new(),
        };
        let mut report = RunReport::new("unit");
        report.counters_from(&snapshot);
        let json = report.to_json();
        assert!(json.contains(r#""counters": {"algo.pivots": 7}"#), "{json}");
        assert!(json.contains(r#""srv.hits": 40"#), "{json}");
        assert!(json.contains(r#""srv.misses": 2"#), "{json}");
        assert!(json.contains(r#""srv.queue_depth": 3"#), "{json}");
        assert!(json.contains(r#""cache.hits": 41"#), "{json}");
    }

    #[test]
    fn cache_metrics_are_segregated_like_par() {
        let snapshot = defender_obs::Snapshot {
            counters: vec![
                ("algo.pivots".to_string(), 7),
                ("cache.canon_ns".to_string(), 987),
                ("cache.hits".to_string(), 3),
                ("cache.misses".to_string(), 1),
            ],
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
        };
        let mut report = RunReport::new("unit");
        report.counters_from(&snapshot);
        let json = report.to_json();
        // Run-variant cache state never lands in the judged counters.
        assert!(json.contains(r#""counters": {"algo.pivots": 7}"#), "{json}");
        assert!(json.contains(r#""cache.hits": 3"#), "{json}");
        assert!(json.contains(r#""cache.misses": 1"#), "{json}");
        assert!(json.contains(r#""cache.canon_ns": 987"#), "{json}");
    }

    #[test]
    fn parallelism_section_is_omitted_when_empty() {
        let mut report = RunReport::new("unit");
        report.counter("algo.steps", 1);
        assert!(!report.to_json().contains("parallelism"));
        assert!(!report.to_json().contains("profile"));
    }

    #[test]
    fn profile_section_segregates_worker_stats() {
        let profile = defender_profile::Profile {
            duration_ns: 100,
            spans: vec![defender_profile::SpanAgg {
                name: "e1.solve".to_string(),
                calls: 4,
                self_ns: 90,
                total_ns: 95,
            }],
            workers: vec![defender_profile::WorkerStat {
                label: "w1".to_string(),
                busy_ns: 50,
                busy_ppm: 500_000,
                stints: 1,
                longest_idle_ns: 0,
            }],
            ..defender_profile::Profile::default()
        };
        let mut report = RunReport::new("unit");
        report.profile_from(&profile);
        let json = report.to_json();
        assert!(
            json.contains(r#""profile": {"prof.calls.e1.solve": 4, "prof.self_ns.e1.solve": 90}"#),
            "{json}"
        );
        assert!(
            json.contains(r#""parallelism": {"prof.worker_busy_ppm.w1": 500000}"#),
            "{json}"
        );
        // Span attribution never leaks into the gated counters object.
        assert!(json.contains(r#""counters": {}"#), "{json}");
    }
}
