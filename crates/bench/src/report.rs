//! Plain-text table rendering for experiment output.

/// A right-aligned text table printed in GitHub-markdown style, so
/// experiment output can be pasted straight into EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["k", "gain"]);
        t.row(vec!["1", "2"]).row(vec!["10", "20/3"]);
        let s = t.render();
        assert!(s.contains("|  k | gain |"));
        assert!(s.contains("| 10 | 20/3 |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }
}
