//! Runs every experiment (E1-E15) in sequence. Each experiment panics if
//! its predicted shape fails, so a clean exit is a full reproduction pass.
//! Supports `--trace <FILE>` for one Chrome trace-event timeline spanning
//! the whole suite and `--jobs <N>` for the worker-pool width of the
//! parallel inner loops (`experiment_main` parses both).
//!
//! Experiments stay **sequential at the top level** on purpose: stdout
//! ordering, the per-experiment `defender_obs::reset()` discipline, and
//! sidecar counter attribution are all part of the deterministic report
//! contract — parallelism lives inside each experiment's instance loops,
//! where index-ordered merges keep output byte-identical for every width.

fn main() {
    defender_bench::experiment_main(|| {
        use defender_bench::experiments as ex;
        let experiments: &[(&str, fn())] = &[
            ("E1", ex::e1_pure_frontier::run),
            ("E2", ex::e2_pure_runtime::run),
            ("E3", ex::e3_characterization::run),
            ("E4", ex::e4_defender_power::run),
            ("E5", ex::e5_atuple_runtime::run),
            ("E6", ex::e6_bipartite::run),
            ("E7", ex::e7_montecarlo::run),
            ("E8", ex::e8_support_ablation::run),
            ("E9", ex::e9_roundtrip::run),
            ("E10", ex::e10_covering::run),
            ("E11", ex::e11_dynamics::run),
            ("E12", ex::e12_path_model::run),
            ("E13", ex::e13_exact_value::run),
            ("E14", ex::e14_defense_ratio::run),
            ("E15", ex::e15_value_atlas::run),
        ];
        for (name, run) in experiments {
            println!("\n################ {name} ################\n");
            run();
        }
        println!("\nAll experiments reproduced the paper's predictions.");
    });
}
