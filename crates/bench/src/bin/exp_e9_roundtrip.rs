//! Experiment E9 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e9_roundtrip::run();
}
