//! Experiment E14 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e14_defense_ratio::run();
}
