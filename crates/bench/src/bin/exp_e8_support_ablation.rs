//! Experiment E8 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e8_support_ablation::run();
}
