//! Experiment E6 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e6_bipartite::run();
}
