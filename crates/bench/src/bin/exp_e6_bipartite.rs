//! Experiment E6 binary — see DESIGN.md §4. Supports `--trace <FILE>`
//! (Chrome trace-event timeline of the run).

fn main() {
    defender_bench::experiment_main(defender_bench::experiments::e6_bipartite::run);
}
