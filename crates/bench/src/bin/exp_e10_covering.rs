//! Experiment E10 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e10_covering::run();
}
