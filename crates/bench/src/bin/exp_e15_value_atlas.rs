//! Experiment E15 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e15_value_atlas::run();
}
