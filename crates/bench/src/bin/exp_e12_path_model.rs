//! Experiment E12 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e12_path_model::run();
}
