//! Experiment E7 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e7_montecarlo::run();
}
