//! `exp_serve_load` — std-only load generator and correctness probe for
//! `defender serve` (see DESIGN.md §16).
//!
//! Drives a seeded, isomorph-heavy request mix at a running server over
//! keep-alive HTTP/1.1 connections, then writes a `BENCH_serve.json`
//! sidecar whose judged `counters` object is reconstructed from the
//! server's `/v1/metrics` `judged` view — the per-class stored-delta
//! sums that are invariant to cache warmth, `--jobs`, request
//! multiplicity, and arrival order. Everything warmth- or
//! traffic-variant (`srv.*`, `cache.*` live values) lands in the
//! run-variant `parallelism` section that `bench diff` never judges.
//!
//! Modes:
//!
//! - default — send `--requests` solves from `--clients` connections,
//!   assert every response is 200, and (with `--expect cold|warm`)
//!   assert the cache-warmth contract: a cold run misses exactly once
//!   per distinct canonical class, a warm run is solve-free (every
//!   response `"cache": "hit"`, zero `cache.misses` delta, zero
//!   `lp.simplex.pivots` delta).
//! - `--overload` — warm one class, flood the server with distinct
//!   fresh classes from all clients, and assert the governor sheds at
//!   least one request with 429 + `Retry-After` while the warm class
//!   keeps serving 200 hits throughout.
//! - `--requests 0 --shutdown` — just stop a running server.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use defender_bench::RunReport;
use defender_graph::generators;
use defender_graph::graph6::to_graph6;
use defender_graph::Graph;
use defender_obs::json::{self, JsonValue};
use defender_serve::client::{Client, Response};

/// Connect/read timeout for every client connection. Generous: a queued
/// miss can legitimately wait out the server's batch window plus a
/// solve.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long to poll `/v1/healthz` before declaring the server absent.
const PROBE_TIMEOUT: Duration = Duration::from_secs(30);

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let options = match Options::parse(&argv) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: exp_serve_load --addr <HOST:PORT> [--expect cold|warm] \
                 [--clients N] [--requests N] [--seed S] [--overload] [--shutdown]"
            );
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&options) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

/// Parsed command line.
struct Options {
    addr: SocketAddr,
    expect: Option<Warmth>,
    clients: usize,
    requests: usize,
    seed: u64,
    overload: bool,
    shutdown: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Warmth {
    Cold,
    Warm,
}

impl Options {
    fn parse(argv: &[String]) -> Result<Options, String> {
        let mut addr = None;
        let mut expect = None;
        let mut clients = 4usize;
        let mut requests = 48usize;
        let mut seed = 2006u64;
        let mut overload = false;
        let mut shutdown = false;
        let mut iter = argv.iter();
        while let Some(token) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("option `{name}` needs a value"))
            };
            match token.as_str() {
                "--addr" => {
                    let text = value("--addr")?;
                    addr = Some(
                        text.parse()
                            .map_err(|_| format!("bad --addr `{text}` (want HOST:PORT)"))?,
                    );
                }
                "--expect" => {
                    expect = Some(match value("--expect")?.as_str() {
                        "cold" => Warmth::Cold,
                        "warm" => Warmth::Warm,
                        other => return Err(format!("bad --expect `{other}` (cold|warm)")),
                    });
                }
                "--clients" => {
                    let text = value("--clients")?;
                    clients = text
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad --clients `{text}`"))?;
                }
                "--requests" => {
                    let text = value("--requests")?;
                    requests = text
                        .parse()
                        .map_err(|_| format!("bad --requests `{text}`"))?;
                }
                "--seed" => {
                    let text = value("--seed")?;
                    seed = text.parse().map_err(|_| format!("bad --seed `{text}`"))?;
                }
                "--overload" => overload = true,
                "--shutdown" => shutdown = true,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(Options {
            addr: addr.ok_or("option `--addr` is required")?,
            expect,
            clients,
            requests,
            seed,
            overload,
            shutdown,
        })
    }
}

fn run(options: &Options) -> Result<(), String> {
    wait_healthy(options.addr)?;
    let outcome = if options.overload {
        run_overload(options)
    } else if options.requests > 0 {
        run_load(options)
    } else {
        Ok(())
    };
    // Stop the server even when an assertion failed, so a gating script
    // never leaks a background server on the failure path.
    if options.shutdown {
        let stopped = connect(options.addr).and_then(|mut client| {
            let response = client
                .request("POST", "/v1/shutdown", b"")
                .map_err(|e| format!("shutdown request failed: {e}"))?;
            if response.status == 200 {
                Ok(())
            } else {
                Err(format!("shutdown returned {}", response.status))
            }
        });
        match (&outcome, stopped) {
            (_, Ok(())) => println!("serve-load: server at {} shutting down", options.addr),
            (Ok(()), Err(e)) => return Err(e),
            (Err(_), Err(e)) => eprintln!("warning: {e}"),
        }
    }
    outcome
}

/// Escapes `text` for embedding inside a JSON string literal. Graph6
/// uses ASCII 63–126, which includes backslash — never splice a graph6
/// string into a body unescaped.
fn json_str(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Polls `/v1/healthz` until the server answers 200.
fn wait_healthy(addr: SocketAddr) -> Result<(), String> {
    let deadline = Instant::now() + PROBE_TIMEOUT;
    loop {
        if let Ok(mut client) = Client::connect(addr, Duration::from_millis(500)) {
            if let Ok(response) = client.request("GET", "/v1/healthz", b"") {
                if response.status == 200 {
                    return Ok(());
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "server at {addr} not healthy within {PROBE_TIMEOUT:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    Client::connect(addr, CLIENT_TIMEOUT).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

/// A tiny deterministic PRNG (PCG-style LCG constants) so the request
/// mix is a pure function of `--seed`: same seed → same class set →
/// byte-identical judged counters across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }
}

/// The canonical-class pool the load mix draws from: small graphs across
/// every solver route (tree, bipartite, odd cycles, dense). All requests
/// use `k = 1, ν = 1`.
fn class_pool() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle5", generators::cycle(5)),
        ("cycle7", generators::cycle(7)),
        ("path6", generators::path(6)),
        ("star5", generators::star(5)),
        ("k4", generators::complete(4)),
        ("k23", generators::complete_bipartite(2, 3)),
        ("petersen", generators::petersen()),
        ("wheel6", generators::wheel(6)),
        ("ladder4", generators::ladder(4)),
        ("grid33", generators::grid(3, 3)),
    ]
}

/// One pre-generated request: the class it belongs to plus the JSON body
/// (alternating graph6 and permuted-edge-list representations, so a warm
/// cache is exercised through isomorphs, not just string-identical
/// repeats).
struct Planned {
    class: usize,
    body: String,
}

fn plan_requests(seed: u64, count: usize) -> (Vec<Planned>, usize) {
    let pool = class_pool();
    let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut planned = Vec::with_capacity(count);
    let mut used = vec![false; pool.len()];
    for i in 0..count {
        let class = rng.below(pool.len());
        used[class] = true;
        let graph = &pool[class].1;
        let body = if i % 2 == 0 {
            format!(
                r#"{{"graph6": "{}", "k": 1, "nu": 1}}"#,
                json_str(&to_graph6(graph))
            )
        } else {
            edge_list_body(graph, &mut rng)
        };
        planned.push(Planned { class, body });
    }
    let distinct = used.iter().filter(|&&u| u).count();
    (planned, distinct)
}

/// Renders `graph` as an `"edges"` request under a seeded vertex
/// relabeling — an isomorph of the pooled class, never the same literal
/// bytes twice.
fn edge_list_body(graph: &Graph, rng: &mut Lcg) -> String {
    let n = graph.vertex_count();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        perm.swap(i, j);
    }
    let mut edges = String::new();
    for (i, e) in graph.edges().enumerate() {
        if i > 0 {
            edges.push_str(", ");
        }
        let ends = graph.endpoints(e);
        edges.push_str(&format!(
            "[{}, {}]",
            perm[ends.u().index()],
            perm[ends.v().index()]
        ));
    }
    format!(r#"{{"edges": [{edges}], "n": {n}, "k": 1, "nu": 1}}"#)
}

/// Outcome of one served request, as seen by a client thread.
struct Sample {
    class: usize,
    status: u16,
    cache: String,
}

fn run_load(options: &Options) -> Result<(), String> {
    let (planned, distinct) = plan_requests(options.seed, options.requests);
    let before = fetch_metrics(options.addr)?;
    let samples = Mutex::new(Vec::with_capacity(planned.len()));
    let errors = Mutex::new(Vec::new());
    let started = Instant::now();
    // lint: allow(spawn) load-generator clients; joined by scope exit
    std::thread::scope(|scope| {
        for worker in 0..options.clients {
            let planned = &planned;
            let samples = &samples;
            let errors = &errors;
            scope.spawn(move || {
                let mut client = match connect(options.addr) {
                    Ok(client) => client,
                    Err(e) => {
                        errors
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(e);
                        return;
                    }
                };
                for request in planned.iter().skip(worker).step_by(options.clients) {
                    match client.solve(&request.body) {
                        Ok(response) => {
                            let cache = cache_field(&response);
                            samples
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(Sample {
                                    class: request.class,
                                    status: response.status,
                                    cache,
                                });
                        }
                        Err(e) => errors
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(format!("client {worker}: {e}")),
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let errors = errors
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(first) = errors.first() {
        return Err(format!("{} transport errors, first: {first}", errors.len()));
    }
    let samples = samples
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if samples.len() != planned.len() {
        return Err(format!(
            "sent {} requests but recorded {} responses",
            planned.len(),
            samples.len()
        ));
    }
    for sample in &samples {
        if sample.status != 200 {
            return Err(format!(
                "request for class {} answered {}",
                sample.class, sample.status
            ));
        }
    }
    let after = fetch_metrics(options.addr)?;
    check_warmth(options, &samples, distinct, &before, &after)?;
    write_sidecar(&after, distinct, elapsed)?;
    let hits = samples.iter().filter(|s| s.cache == "hit").count();
    let misses = samples.iter().filter(|s| s.cache == "miss").count();
    let coalesced = samples.iter().filter(|s| s.cache == "coalesced").count();
    println!(
        "serve-load: {} requests over {} clients in {:?} — {} hit, {} miss, {} coalesced, {} classes",
        samples.len(),
        options.clients,
        elapsed,
        hits,
        misses,
        coalesced,
        distinct
    );
    Ok(())
}

fn cache_field(response: &Response) -> String {
    json::parse(&response.text())
        .ok()
        .and_then(|doc| doc.get("cache").and_then(|v| v.as_str().map(str::to_owned)))
        .unwrap_or_default()
}

/// Asserts the `--expect cold|warm` warmth contract against the
/// per-response cache labels and the live snapshot deltas.
fn check_warmth(
    options: &Options,
    samples: &[Sample],
    distinct: usize,
    before: &JsonValue,
    after: &JsonValue,
) -> Result<(), String> {
    let delta = |name: &str| snapshot_counter(after, name) - snapshot_counter(before, name);
    match options.expect {
        None => Ok(()),
        Some(Warmth::Cold) => {
            let misses = delta("cache.misses");
            if misses != distinct as u64 {
                return Err(format!(
                    "cold run: expected exactly {distinct} cache misses (one per class), saw {misses}"
                ));
            }
            Ok(())
        }
        Some(Warmth::Warm) => {
            if let Some(sample) = samples.iter().find(|s| s.cache != "hit") {
                return Err(format!(
                    "warm run: class {} answered \"{}\", want every response \"hit\"",
                    sample.class, sample.cache
                ));
            }
            let misses = delta("cache.misses");
            if misses != 0 {
                return Err(format!("warm run: {misses} cache misses, want zero"));
            }
            let pivots = delta("lp.simplex.pivots");
            if pivots != 0 {
                return Err(format!(
                    "warm run: lp.simplex.pivots grew by {pivots}, want a solve-free run"
                ));
            }
            Ok(())
        }
    }
}

/// GETs `/v1/metrics` and parses the JSON document.
fn fetch_metrics(addr: SocketAddr) -> Result<JsonValue, String> {
    let mut client = connect(addr)?;
    let response = client
        .request("GET", "/v1/metrics", b"")
        .map_err(|e| format!("metrics request failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("metrics returned {}", response.status));
    }
    json::parse(&response.text()).map_err(|e| format!("unparseable metrics body: {e}"))
}

/// Reads one live counter out of the metrics document's `snapshot`
/// section; absent counters read as zero.
fn snapshot_counter(metrics: &JsonValue, name: &str) -> u64 {
    metrics
        .get("snapshot")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

/// Writes `BENCH_serve.json`: judged counters from the server's
/// stored-delta view (warmth/jobs/order-invariant), live `srv.*` and
/// `cache.*` state into the run-variant section.
fn write_sidecar(metrics: &JsonValue, distinct: usize, elapsed: Duration) -> Result<(), String> {
    let mut report = RunReport::new("serve");
    report.phase("load", elapsed);
    let judged = metrics
        .get("judged")
        .and_then(JsonValue::as_object)
        .ok_or("metrics body lacks a judged object")?;
    for (name, value) in judged {
        let value = value
            .as_u64()
            .ok_or_else(|| format!("judged counter {name} is not a u64"))?;
        report.counter(name, value);
    }
    report.counter("serve.classes", distinct as u64);
    if let Some(counters) = metrics
        .get("snapshot")
        .and_then(|s| s.get("counters"))
        .and_then(JsonValue::as_object)
    {
        for (name, value) in counters {
            if name.starts_with("srv.") || name.starts_with("cache.") {
                if let Some(value) = value.as_u64() {
                    report.parallelism(name, value);
                }
            }
        }
    }
    let path = report
        .write_sidecar()
        .map_err(|e| format!("cannot write sidecar: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// `--overload`: point this at a server started with a tiny
/// `--max-queue` and a long `--batch-window-ms`. Warms one class, floods
/// distinct fresh classes from every client, and asserts the load
/// governor sheds with 429 + `Retry-After` while the warm class stays
/// servable.
fn run_overload(options: &Options) -> Result<(), String> {
    let warm_body = format!(
        r#"{{"graph6": "{}", "k": 1, "nu": 1}}"#,
        json_str(&to_graph6(&generators::cycle(5)))
    );
    let mut probe = connect(options.addr)?;
    let first = probe
        .solve(&warm_body)
        .map_err(|e| format!("warmup solve failed: {e}"))?;
    if first.status != 200 {
        return Err(format!("warmup solve answered {}", first.status));
    }
    let second = probe
        .solve(&warm_body)
        .map_err(|e| format!("warmup re-probe failed: {e}"))?;
    if second.status != 200 || cache_field(&second) != "hit" {
        return Err(format!(
            "warm class not cached before the flood (status {}, cache \"{}\")",
            second.status,
            cache_field(&second)
        ));
    }

    let per_client = options.requests.div_ceil(options.clients).max(1);
    let shed = Mutex::new(0usize);
    let failures = Mutex::new(Vec::new());
    // lint: allow(spawn) load-generator clients; joined by scope exit
    std::thread::scope(|scope| {
        for worker in 0..options.clients {
            let shed = &shed;
            let failures = &failures;
            scope.spawn(move || {
                let mut client = match connect(options.addr) {
                    Ok(client) => client,
                    Err(e) => {
                        failures
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(e);
                        return;
                    }
                };
                for j in 0..per_client {
                    // Distinct path lengths → distinct canonical classes,
                    // so every flood request is a genuine miss.
                    let n = 8 + worker * per_client + j;
                    let body = format!(
                        r#"{{"graph6": "{}", "k": 1, "nu": 1}}"#,
                        json_str(&to_graph6(&generators::path(n)))
                    );
                    match client.solve(&body) {
                        Ok(response) if response.status == 429 => {
                            if response.retry_after.is_none() {
                                failures
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .push("429 without Retry-After".to_string());
                            }
                            *shed
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                        }
                        Ok(response) if response.status == 200 => {}
                        Ok(response) => failures
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(format!("flood answered {}", response.status)),
                        Err(e) => failures
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(format!("flood client {worker}: {e}")),
                    }
                }
            });
        }
    });
    let failures = failures
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(first) = failures.first() {
        return Err(format!("{} flood failures, first: {first}", failures.len()));
    }
    let shed = shed
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if shed == 0 {
        return Err("flood finished without a single 429 — governor never shed".to_string());
    }

    let after = probe
        .solve(&warm_body)
        .map_err(|e| format!("post-flood warm probe failed: {e}"))?;
    if after.status != 200 || cache_field(&after) != "hit" {
        return Err(format!(
            "warm class degraded under flood (status {}, cache \"{}\")",
            after.status,
            cache_field(&after)
        ));
    }
    println!(
        "serve-load: overload probe shed {shed} of {} flood requests with 429 + Retry-After; warm class stayed a 200 hit",
        options.clients * per_client
    );
    Ok(())
}
