//! Experiment E3 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e3_characterization::run();
}
