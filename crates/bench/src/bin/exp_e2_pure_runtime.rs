//! Experiment E2 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e2_pure_runtime::run();
}
