//! Experiment E5 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e5_atuple_runtime::run();
}
