//! Experiment E11 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e11_dynamics::run();
}
