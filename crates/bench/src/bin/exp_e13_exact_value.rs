//! Experiment E13 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e13_exact_value::run();
}
