//! Experiment E1 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e1_pure_frontier::run();
}
