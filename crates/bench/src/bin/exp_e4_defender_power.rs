//! Experiment E4 binary — see DESIGN.md §4.

fn main() {
    defender_bench::experiments::e4_defender_power::run();
}
