//! Criterion bench: the matching substrates — Hopcroft–Karp (`O(m√n)`,
//! Theorem 5.1's bottleneck) and Edmonds blossom (Corollary 3.2's
//! bottleneck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defender_bench::experiments::common::{random_bipartite, random_connected};
use defender_graph::VertexId;
use defender_matching::{hopcroft_karp, maximum_matching, minimum_edge_cover};

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for side in [200usize, 800, 3_200] {
        let graph = random_bipartite(side, side, 4.0 / side as f64, 21);
        let left: Vec<VertexId> = (0..side).map(VertexId::new).collect();
        let right: Vec<VertexId> = (side..2 * side).map(VertexId::new).collect();
        group.bench_with_input(BenchmarkId::from_parameter(2 * side), &graph, |b, g| {
            b.iter(|| std::hint::black_box(hopcroft_karp(g, &left, &right)));
        });
    }
    group.finish();
}

fn bench_blossom(c: &mut Criterion) {
    let mut group = c.benchmark_group("blossom");
    for n in [100usize, 400, 1_600] {
        let graph = random_connected(n, 4.0 / n as f64, 23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| std::hint::black_box(maximum_matching(g)));
        });
    }
    group.finish();
}

fn bench_min_edge_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimum_edge_cover");
    for n in [100usize, 400, 1_600] {
        let graph = random_connected(n, 4.0 / n as f64, 25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| std::hint::black_box(minimum_edge_cover(g)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hopcroft_karp, bench_blossom, bench_min_edge_cover);
criterion_main!(benches);
