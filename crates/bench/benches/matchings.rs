//! Standalone bench (no external harness): the matching substrates —
//! Hopcroft–Karp (`O(m√n)`, Theorem 5.1's bottleneck) and Edmonds blossom
//! (Corollary 3.2's bottleneck). Run with `cargo bench --bench matchings`.

use defender_bench::experiments::common::{random_bipartite, random_connected};
use defender_bench::median_time;
use defender_graph::VertexId;
use defender_matching::{hopcroft_karp, maximum_matching, minimum_edge_cover};

const RUNS: usize = 5;

fn bench_hopcroft_karp() {
    println!("hopcroft_karp (random bipartite, avg degree 4)");
    for side in [200usize, 800, 3_200] {
        let graph = random_bipartite(side, side, 4.0 / side as f64, 21);
        let left: Vec<VertexId> = (0..side).map(VertexId::new).collect();
        let right: Vec<VertexId> = (side..2 * side).map(VertexId::new).collect();
        let t = median_time(RUNS, || {
            std::hint::black_box(hopcroft_karp(&graph, &left, &right));
        });
        println!("  n={:<6} median {t:>12?} ({RUNS} runs)", 2 * side);
    }
}

fn bench_blossom() {
    println!("blossom maximum_matching (random connected, avg degree 4)");
    for n in [100usize, 400, 1_600] {
        let graph = random_connected(n, 4.0 / n as f64, 23);
        let t = median_time(RUNS, || {
            std::hint::black_box(maximum_matching(&graph));
        });
        println!("  n={n:<6} median {t:>12?} ({RUNS} runs)");
    }
}

fn bench_min_edge_cover() {
    println!("minimum_edge_cover (random connected, avg degree 4)");
    for n in [100usize, 400, 1_600] {
        let graph = random_connected(n, 4.0 / n as f64, 25);
        let t = median_time(RUNS, || {
            std::hint::black_box(minimum_edge_cover(&graph));
        });
        println!("  n={n:<6} median {t:>12?} ({RUNS} runs)");
    }
}

fn main() {
    bench_hopcroft_karp();
    bench_blossom();
    bench_min_edge_cover();
}
