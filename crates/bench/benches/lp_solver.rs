//! Criterion bench: the exact LP solver — raw simplex throughput and the
//! end-to-end game-value pipeline of `defender-core::solve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defender_core::model::TupleGame;
use defender_core::solve::solve_exact;
use defender_graph::generators;
use defender_lp::solve_zero_sum;
use defender_num::Ratio;

fn bench_zero_sum_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_sum_lp");
    for size in [4usize, 8, 16] {
        // A structured matrix with a fully mixed optimum: shifted cyclic
        // distance payoffs.
        let m: Vec<Vec<Ratio>> = (0..size)
            .map(|i| {
                (0..size)
                    .map(|j| Ratio::from(((i + j) % size) as i64))
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &m, |b, m| {
            b.iter(|| std::hint::black_box(solve_zero_sum(m).expect("solvable")));
        });
    }
    group.finish();
}

fn bench_game_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_exact");
    group.sample_size(10);
    for n in [7usize, 9, 11] {
        let graph = generators::cycle(n);
        let game = TupleGame::new(&graph, 2, 1).expect("valid game");
        group.bench_with_input(BenchmarkId::new("odd_cycle", n), &game, |b, game| {
            b.iter(|| std::hint::black_box(solve_exact(game, 300_000).expect("within limit")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zero_sum_matrices, bench_game_value);
criterion_main!(benches);
