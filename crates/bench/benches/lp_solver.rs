//! Standalone bench (no external harness): the exact LP solver — raw
//! simplex throughput and the end-to-end game-value pipeline of
//! `defender-core::solve`. Run with `cargo bench --bench lp_solver`.

use defender_bench::median_time;
use defender_core::model::TupleGame;
use defender_core::solve::solve_exact;
use defender_graph::generators;
use defender_lp::solve_zero_sum;
use defender_num::Ratio;

const RUNS: usize = 5;

fn bench_zero_sum_matrices() {
    println!("zero_sum_lp (shifted cyclic distance payoffs)");
    for size in [4usize, 8, 16] {
        // A structured matrix with a fully mixed optimum: shifted cyclic
        // distance payoffs.
        let m: Vec<Vec<Ratio>> = (0..size)
            .map(|i| {
                (0..size)
                    .map(|j| Ratio::from(((i + j) % size) as i64))
                    .collect()
            })
            .collect();
        let t = median_time(RUNS, || {
            std::hint::black_box(solve_zero_sum(&m).expect("solvable"));
        });
        println!("  size={size:<4} median {t:>12?} ({RUNS} runs)");
    }
}

fn bench_game_value() {
    println!("solve_exact (odd cycles, k=2, nu=1)");
    for n in [7usize, 9, 11] {
        let graph = generators::cycle(n);
        let game = TupleGame::new(&graph, 2, 1).expect("valid game");
        let t = median_time(3, || {
            std::hint::black_box(solve_exact(&game, 300_000).expect("within limit"));
        });
        println!("  n={n:<4} median {t:>12?} (3 runs)");
    }
}

fn main() {
    bench_zero_sum_matrices();
    bench_game_value();
}
