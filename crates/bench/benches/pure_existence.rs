//! Criterion bench: Corollary 3.2 — pure-NE existence (minimum edge cover
//! via blossom matching) across graph sizes and densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defender_bench::experiments::common::random_connected;
use defender_core::model::TupleGame;
use defender_core::pure::pure_ne_existence;

fn bench_pure_existence(c: &mut Criterion) {
    let mut group = c.benchmark_group("pure_ne_existence");
    for n in [64usize, 256, 1024] {
        let graph = random_connected(n, 4.0 / n as f64, 11);
        let game = TupleGame::new(&graph, 1, 2).expect("valid game");
        group.bench_with_input(BenchmarkId::new("sparse", n), &game, |b, game| {
            b.iter(|| std::hint::black_box(pure_ne_existence(game)));
        });
    }
    for n in [64usize, 128, 256] {
        let graph = random_connected(n, 0.3, 13);
        let game = TupleGame::new(&graph, 1, 2).expect("valid game");
        group.bench_with_input(BenchmarkId::new("dense", n), &game, |b, game| {
            b.iter(|| std::hint::black_box(pure_ne_existence(game)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pure_existence);
criterion_main!(benches);
