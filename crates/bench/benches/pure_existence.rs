//! Standalone bench (no external harness): Corollary 3.2 — pure-NE
//! existence (minimum edge cover via blossom matching) across graph sizes
//! and densities. Run with `cargo bench --bench pure_existence`.

use defender_bench::experiments::common::random_connected;
use defender_bench::median_time;
use defender_core::model::TupleGame;
use defender_core::pure::pure_ne_existence;

const RUNS: usize = 5;

fn main() {
    println!("pure_ne_existence (sparse: avg degree 4)");
    for n in [64usize, 256, 1024] {
        let graph = random_connected(n, 4.0 / n as f64, 11);
        let game = TupleGame::new(&graph, 1, 2).expect("valid game");
        let t = median_time(RUNS, || {
            std::hint::black_box(pure_ne_existence(&game));
        });
        println!("  n={n:<6} median {t:>12?} ({RUNS} runs)");
    }
    println!("pure_ne_existence (dense: p=0.3)");
    for n in [64usize, 128, 256] {
        let graph = random_connected(n, 0.3, 13);
        let game = TupleGame::new(&graph, 1, 2).expect("valid game");
        let t = median_time(RUNS, || {
            std::hint::black_box(pure_ne_existence(&game));
        });
        println!("  n={n:<6} median {t:>12?} ({RUNS} runs)");
    }
}
