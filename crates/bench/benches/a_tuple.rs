//! Criterion bench: Theorem 4.13 — `A_tuple` scaling in `n` and in `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defender_core::algorithm::a_tuple;
use defender_core::model::TupleGame;
use defender_graph::{generators, Graph, VertexId};

fn partition(n: usize) -> (Vec<VertexId>, Vec<VertexId>) {
    (
        (0..n).step_by(2).map(VertexId::new).collect(),
        (1..n).step_by(2).map(VertexId::new).collect(),
    )
}

fn bench_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_tuple_n");
    for n in [1_000usize, 4_000, 16_000] {
        let graph: Graph = generators::cycle(n);
        let (is, vc) = partition(n);
        let game = TupleGame::new(&graph, 4, 3).expect("valid game");
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, game| {
            b.iter(|| std::hint::black_box(a_tuple(game, &is, &vc).expect("even cycle")));
        });
    }
    group.finish();
}

fn bench_scaling_in_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_tuple_k");
    let n = 8_000usize;
    let graph: Graph = generators::cycle(n);
    let (is, vc) = partition(n);
    for k in [2usize, 16, 128] {
        let game = TupleGame::new(&graph, k, 3).expect("valid game");
        group.bench_with_input(BenchmarkId::from_parameter(k), &game, |b, game| {
            b.iter(|| std::hint::black_box(a_tuple(game, &is, &vc).expect("even cycle")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_n, bench_scaling_in_k);
criterion_main!(benches);
