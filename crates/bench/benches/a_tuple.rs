//! Standalone bench (no external harness): Theorem 4.13 — `A_tuple`
//! scaling in `n` and in `k`. Run with `cargo bench --bench a_tuple`.

use defender_bench::median_time;
use defender_core::algorithm::a_tuple;
use defender_core::model::TupleGame;
use defender_graph::{generators, Graph, VertexId};

const RUNS: usize = 5;

fn partition(n: usize) -> (Vec<VertexId>, Vec<VertexId>) {
    (
        (0..n).step_by(2).map(VertexId::new).collect(),
        (1..n).step_by(2).map(VertexId::new).collect(),
    )
}

fn main() {
    println!("a_tuple_n (k=4, nu=3, cycle)");
    for n in [1_000usize, 4_000, 16_000] {
        let graph: Graph = generators::cycle(n);
        let (is, vc) = partition(n);
        let game = TupleGame::new(&graph, 4, 3).expect("valid game");
        let t = median_time(RUNS, || {
            std::hint::black_box(a_tuple(&game, &is, &vc).expect("even cycle"));
        });
        println!("  n={n:<8} median {t:>12?} ({RUNS} runs)");
    }

    println!("a_tuple_k (n=8000, nu=3, cycle)");
    let n = 8_000usize;
    let graph: Graph = generators::cycle(n);
    let (is, vc) = partition(n);
    for k in [2usize, 16, 128] {
        let game = TupleGame::new(&graph, k, 3).expect("valid game");
        let t = median_time(RUNS, || {
            std::hint::black_box(a_tuple(&game, &is, &vc).expect("even cycle"));
        });
        println!("  k={k:<8} median {t:>12?} ({RUNS} runs)");
    }
}
