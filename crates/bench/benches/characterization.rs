//! Criterion bench: the Theorem 3.4 verifier — analytic vs exhaustive
//! modes — plus Monte-Carlo simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defender_core::bipartite::a_tuple_bipartite;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::model::TupleGame;
use defender_core::simulate::{SimulationConfig, Simulator};
use defender_graph::generators;

fn bench_verifier_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_mixed_ne");
    let graph = generators::cycle(12);
    let game = TupleGame::new(&graph, 2, 4).expect("valid game");
    let ne = a_tuple_bipartite(&game).expect("even cycle");
    group.bench_function("analytic_c12_k2", |b| {
        b.iter(|| {
            std::hint::black_box(
                verify_mixed_ne(&game, ne.config(), VerificationMode::Analytic)
                    .expect("analytic applies"),
            )
        });
    });
    group.bench_function("exhaustive_c12_k2", |b| {
        b.iter(|| {
            std::hint::black_box(
                verify_mixed_ne(&game, ne.config(), VerificationMode::Exhaustive { limit: 100_000 })
                    .expect("within limit"),
            )
        });
    });
    // Analytic mode on a much larger instance (exhaustive is impossible).
    let big = generators::cycle(2_000);
    let big_game = TupleGame::new(&big, 8, 10).expect("valid game");
    let big_ne = a_tuple_bipartite(&big_game).expect("even cycle");
    group.bench_function("analytic_c2000_k8", |b| {
        b.iter(|| {
            std::hint::black_box(
                verify_mixed_ne(&big_game, big_ne.config(), VerificationMode::Analytic)
                    .expect("analytic applies"),
            )
        });
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let graph = generators::complete_bipartite(4, 8);
    let game = TupleGame::new(&graph, 3, 6).expect("valid game");
    let ne = a_tuple_bipartite(&game).expect("bipartite");
    for rounds in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                std::hint::black_box(
                    Simulator::new(&game, ne.config())
                        .run(&SimulationConfig { rounds, seed: 31 }),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verifier_modes, bench_simulator);
criterion_main!(benches);
