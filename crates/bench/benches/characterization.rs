//! Standalone bench (no external harness): the Theorem 3.4 verifier —
//! analytic vs exhaustive modes — plus Monte-Carlo simulator throughput.
//! Run with `cargo bench --bench characterization`.

use defender_bench::median_time;
use defender_core::bipartite::a_tuple_bipartite;
use defender_core::characterization::{verify_mixed_ne, VerificationMode};
use defender_core::model::TupleGame;
use defender_core::simulate::{SimulationConfig, Simulator};
use defender_graph::generators;

const RUNS: usize = 5;

fn bench_verifier_modes() {
    println!("verify_mixed_ne");
    let graph = generators::cycle(12);
    let game = TupleGame::new(&graph, 2, 4).expect("valid game");
    let ne = a_tuple_bipartite(&game).expect("even cycle");
    let t = median_time(RUNS, || {
        std::hint::black_box(
            verify_mixed_ne(&game, ne.config(), VerificationMode::Analytic)
                .expect("analytic applies"),
        );
    });
    println!("  analytic_c12_k2    median {t:>12?} ({RUNS} runs)");
    let t = median_time(RUNS, || {
        std::hint::black_box(
            verify_mixed_ne(
                &game,
                ne.config(),
                VerificationMode::Exhaustive { limit: 100_000 },
            )
            .expect("within limit"),
        );
    });
    println!("  exhaustive_c12_k2  median {t:>12?} ({RUNS} runs)");
    // Analytic mode on a much larger instance (exhaustive is impossible).
    let big = generators::cycle(2_000);
    let big_game = TupleGame::new(&big, 8, 10).expect("valid game");
    let big_ne = a_tuple_bipartite(&big_game).expect("even cycle");
    let t = median_time(RUNS, || {
        std::hint::black_box(
            verify_mixed_ne(&big_game, big_ne.config(), VerificationMode::Analytic)
                .expect("analytic applies"),
        );
    });
    println!("  analytic_c2000_k8  median {t:>12?} ({RUNS} runs)");
}

fn bench_simulator() {
    println!("simulator (K_4,8, k=3, nu=6)");
    let graph = generators::complete_bipartite(4, 8);
    let game = TupleGame::new(&graph, 3, 6).expect("valid game");
    let ne = a_tuple_bipartite(&game).expect("bipartite");
    for rounds in [1_000u64, 10_000] {
        let t = median_time(RUNS, || {
            std::hint::black_box(
                Simulator::new(&game, ne.config()).run(&SimulationConfig { rounds, seed: 31 }),
            );
        });
        println!("  rounds={rounds:<8} median {t:>12?} ({RUNS} runs)");
    }
}

fn main() {
    bench_verifier_modes();
    bench_simulator();
}
