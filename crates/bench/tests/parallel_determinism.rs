//! Determinism under parallelism, enforced on the real binaries: the
//! acceptance bar for the worker pool is that `--jobs N` never changes
//! what an experiment reports — only how fast it reports it.

use std::path::{Path, PathBuf};
use std::process::Command;

use defender_bench::diff::Sidecar;

/// Runs `binary` with `args` in a fresh scratch directory and returns
/// `(stdout bytes, scratch dir)`; panics on a non-zero exit.
fn run_in_scratch(binary: &str, tag: &str, args: &[&str]) -> (Vec<u8>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("defender_par_det_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let output = Command::new(binary)
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("experiment binary runs");
    assert!(
        output.status.success(),
        "{binary} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (output.stdout, dir)
}

fn sidecar(dir: &Path, experiment: &str) -> Sidecar {
    Sidecar::load(&dir.join(format!("BENCH_{experiment}.json"))).expect("sidecar parses")
}

#[test]
fn e1_report_is_byte_identical_across_pool_widths() {
    let binary = env!("CARGO_BIN_EXE_exp_e1_pure_frontier");
    let (stdout_1, dir_1) = run_in_scratch(binary, "e1_j1", &["--jobs", "1"]);
    let (stdout_4, dir_4) = run_in_scratch(binary, "e1_j4", &["--jobs", "4"]);
    assert_eq!(
        stdout_1, stdout_4,
        "stdout must be byte-identical for --jobs 1 vs --jobs 4"
    );
    let side_1 = sidecar(&dir_1, "e1_pure_frontier");
    let side_4 = sidecar(&dir_4, "e1_pure_frontier");
    // The harvested counter registry is jobs-invariant (the `par.*`
    // execution-shape record lives in the separate "parallelism" section,
    // which `Sidecar::parse` deliberately ignores).
    assert_eq!(side_1.counters, side_4.counters);
    // Same phases in the same order; wall times legitimately differ.
    let names = |s: &Sidecar| s.phases.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&side_1), names(&side_4));
    let _ = std::fs::remove_dir_all(dir_1);
    let _ = std::fs::remove_dir_all(dir_4);
}

#[test]
fn e15_sweep_is_byte_identical_across_pool_widths() {
    let binary = env!("CARGO_BIN_EXE_exp_e15_value_atlas");
    let (stdout_1, dir_1) = run_in_scratch(binary, "e15_j1", &["--jobs", "1"]);
    let (stdout_4, dir_4) = run_in_scratch(binary, "e15_j4", &["--jobs", "4"]);
    assert_eq!(stdout_1, stdout_4);
    assert_eq!(
        sidecar(&dir_1, "e15_value_atlas").counters,
        sidecar(&dir_4, "e15_value_atlas").counters
    );
    let _ = std::fs::remove_dir_all(dir_1);
    let _ = std::fs::remove_dir_all(dir_4);
}

#[test]
fn parallel_trace_from_the_binary_is_balanced() {
    let binary = env!("CARGO_BIN_EXE_exp_e1_pure_frontier");
    let (_, dir) = run_in_scratch(
        binary,
        "e1_trace",
        &["--jobs", "4", "--trace", "trace.json"],
    );
    let text = std::fs::read_to_string(dir.join("trace.json")).expect("trace written");
    let check = defender_obs::trace::validate_chrome_trace(&text)
        .expect("multi-thread trace keeps per-thread stack discipline");
    assert!(check.events > 0);
    assert!(
        check.threads >= 2,
        "a --jobs 4 run must record worker lanes, saw {}",
        check.threads
    );
    let _ = std::fs::remove_dir_all(dir);
}
