//! Checkpoint-resume determinism: the merged `counters` object of a
//! sharded sweep is byte-identical to the single-process run — for every
//! shard width, and for a sweep killed after its first shard and then
//! resumed. This is the end-to-end version of the unit-level guarantees
//! in `defender_sweep::merge` and `defender_bench::shard`, driving the
//! real `exp_e1_pure_frontier` binary through the real runner.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use defender_sweep::{counters_object, SweepConfig};

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_exp_e1_pure_frontier"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_config(shards: u64, out_dir: PathBuf) -> SweepConfig {
    let mut config = SweepConfig::new("e1", worker_binary(), shards, out_dir);
    config.quiet = true;
    config
}

/// Runs a sweep and returns the merged sidecar's `counters` object text.
fn sweep_counters(config: &SweepConfig) -> String {
    let outcome = defender_sweep::run_sweep(config).expect("sweep runs");
    let path = outcome.merged_sidecar.expect("sweep merged");
    let text = std::fs::read_to_string(path).expect("merged sidecar readable");
    counters_object(&text)
        .expect("merged sidecar has a counters object")
        .to_string()
}

#[test]
fn merged_counters_match_the_unsharded_run_at_every_width() {
    // Ground truth: the worker run plainly, no sharding at all.
    let plain_dir = temp_dir("plain");
    std::fs::create_dir_all(&plain_dir).unwrap();
    let status = Command::new(worker_binary())
        .current_dir(&plain_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("worker binary runs");
    assert!(status.success(), "unsharded run failed: {status}");
    let plain = std::fs::read_to_string(plain_dir.join("BENCH_e1_pure_frontier.json"))
        .expect("plain sidecar written");
    let plain_counters = counters_object(&plain)
        .expect("plain sidecar has counters")
        .to_string();

    let one_dir = temp_dir("w1");
    let three_dir = temp_dir("w3");
    let twenty_dir = temp_dir("w20");
    let one = sweep_counters(&quiet_config(1, one_dir.clone()));
    let three = sweep_counters(&quiet_config(3, three_dir.clone()));
    // More shards than the 17-family corpus: several windows are empty,
    // those workers write sidecars with an empty counters object, and the
    // merge must still land on the plain run's bytes.
    let twenty = sweep_counters(&quiet_config(20, twenty_dir.clone()));

    assert_eq!(one, plain_counters, "--shards 1 vs plain run");
    assert_eq!(three, plain_counters, "--shards 3 vs plain run");
    assert_eq!(
        twenty, plain_counters,
        "--shards 20 (wider than the corpus) vs plain run"
    );

    for dir in [plain_dir, one_dir, three_dir, twenty_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn killed_then_resumed_sweeps_merge_byte_identically() {
    let out_dir = temp_dir("resume");

    // Phase 1: run shard-by-shard (--parallel 1) and stop after the first
    // newly finished shard — the runner kills any live worker and exits
    // without merging, exactly like a Ctrl-C mid-sweep.
    let mut interrupted = quiet_config(3, out_dir.clone());
    interrupted.parallel = 1;
    interrupted.stop_after = Some(1);
    interrupted.stall_timeout = Duration::from_secs(60);
    let outcome = defender_sweep::run_sweep(&interrupted).expect("interrupted run is not an error");
    assert!(outcome.stopped_early, "stop_after(1) interrupts the sweep");
    assert_eq!(outcome.completed, 1, "exactly one shard checkpointed");
    assert!(
        outcome.merged_sidecar.is_none(),
        "no merge after interruption"
    );
    assert!(
        out_dir.join("shard_0").join("DONE").exists(),
        "shard 0 sealed its checkpoint"
    );

    // Phase 2: resume. Shard 0 must be skipped, the rest re-run.
    let mut resumed = quiet_config(3, out_dir.clone());
    resumed.resume = true;
    let outcome = defender_sweep::run_sweep(&resumed).expect("resume completes");
    assert_eq!(outcome.resumed, 1, "the checkpointed shard is skipped");
    assert_eq!(outcome.completed, 2, "the interrupted shards re-run");
    let path = outcome.merged_sidecar.expect("resume merges");
    let text = std::fs::read_to_string(path).expect("merged sidecar readable");
    let resumed_counters = counters_object(&text)
        .expect("counters present")
        .to_string();

    // The interrupted-then-resumed merge is byte-identical to an
    // uninterrupted 3-shard sweep.
    let control_dir = temp_dir("control");
    let uninterrupted = sweep_counters(&quiet_config(3, control_dir.clone()));
    assert_eq!(resumed_counters, uninterrupted);

    let _ = std::fs::remove_dir_all(&out_dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

#[test]
fn resume_with_a_different_shape_is_rejected() {
    let out_dir = temp_dir("shape");
    let first = quiet_config(2, out_dir.clone());
    defender_sweep::run_sweep(&first).expect("2-shard sweep runs");
    let mut reshaped = quiet_config(3, out_dir.clone());
    reshaped.resume = true;
    let err = defender_sweep::run_sweep(&reshaped).expect_err("shape change rejected");
    assert!(err.contains("resume mismatch"), "{err}");
    let _ = std::fs::remove_dir_all(&out_dir);
}
