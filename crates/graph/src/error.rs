//! Error type for graph-level operations.

use core::fmt;

/// Errors reported by fallible graph operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The operation requires a graph with no isolated vertices
    /// (the standing assumption of the Tuple model).
    IsolatedVertex {
        /// An isolated vertex witnessing the failure.
        vertex: crate::VertexId,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// The operation requires a bipartite graph but an odd cycle exists.
    NotBipartite,
    /// A vertex id was out of range for this graph.
    UnknownVertex {
        /// The offending index.
        index: usize,
        /// The graph's vertex count.
        vertex_count: usize,
    },
    /// An edge id was out of range for this graph.
    UnknownEdge {
        /// The offending index.
        index: usize,
        /// The graph's edge count.
        edge_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::IsolatedVertex { vertex } => {
                write!(f, "graph has isolated vertex {vertex}")
            }
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
            GraphError::NotBipartite => write!(f, "graph contains an odd cycle"),
            GraphError::UnknownVertex {
                index,
                vertex_count,
            } => {
                write!(
                    f,
                    "vertex index {index} out of range for graph with {vertex_count} vertices"
                )
            }
            GraphError::UnknownEdge { index, edge_count } => {
                write!(
                    f,
                    "edge index {index} out of range for graph with {edge_count} edges"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn displays_are_informative() {
        let e = GraphError::IsolatedVertex {
            vertex: VertexId::new(3),
        };
        assert!(e.to_string().contains("v3"));
        assert!(GraphError::NotBipartite.to_string().contains("odd cycle"));
        let e = GraphError::UnknownVertex {
            index: 9,
            vertex_count: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = GraphError::UnknownEdge {
            index: 2,
            edge_count: 1,
        };
        assert!(e.to_string().contains("edge index 2"));
        assert!(GraphError::EmptyGraph.to_string().contains("no vertices"));
    }
}
