//! Expander conditions for the matching-NE characterization (Theorem 2.2 /
//! Corollary 4.11).
//!
//! The paper calls `G` an *`S`-expander* when `|X| ≤ |Neigh_G(X)|` for every
//! `X ⊆ S`. As DESIGN.md §5.1 explains, the matching-NE construction needs
//! the slightly stronger *expansion into the complement*:
//! `|X| ≤ |Neigh_G(X) ∩ (V \ S)|` for every `X ⊆ S` — equivalently (by
//! Hall's theorem) `S` can be matched into `V \ S`. This module provides
//! exact brute-force checks of both conditions for small `S`; the
//! polynomial-time Hall check via Hopcroft–Karp lives in
//! `defender-matching::hall`.

use crate::{Graph, VertexId};

const BRUTE_FORCE_LIMIT: usize = 22;

/// Brute-force check of the paper's literal condition:
/// `|X| ≤ |Neigh_G(X)|` for every `X ⊆ s`.
///
/// # Panics
///
/// Panics if `s` has more than 22 vertices (2^|s| subsets are enumerated).
#[must_use]
pub fn is_expander_literal_exact(graph: &Graph, s: &[VertexId]) -> bool {
    subset_check(graph, s, |nb, _| nb.len())
}

/// Brute-force check of expansion *into the complement of `s`*:
/// `|X| ≤ |Neigh_G(X) \ s|` for every `X ⊆ s`.
///
/// This is the condition actually required by the matching-NE construction
/// (each vertex of `s` needs a private partner outside `s`).
///
/// # Panics
///
/// Panics if `s` has more than 22 vertices.
#[must_use]
pub fn is_expander_into_complement_exact(graph: &Graph, s: &[VertexId]) -> bool {
    let mut in_s = vec![false; graph.vertex_count()];
    for &v in s {
        in_s[v.index()] = true;
    }
    subset_check(graph, s, move |nb, _| {
        nb.iter().filter(|w| !in_s[w.index()]).count()
    })
}

/// Shared subset enumeration: for every non-empty `X ⊆ s` require
/// `measure(Neigh(X), X) ≥ |X|`.
fn subset_check<F>(graph: &Graph, s: &[VertexId], measure: F) -> bool
where
    F: Fn(&[VertexId], &[VertexId]) -> usize,
{
    assert!(
        s.len() <= BRUTE_FORCE_LIMIT,
        "brute-force expander check limited to {BRUTE_FORCE_LIMIT} vertices, got {}",
        s.len()
    );
    for mask in 1u32..(1u32 << s.len()) {
        let x: Vec<VertexId> = (0..s.len())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| s[i])
            .collect();
        let nb = graph.neighborhood(&x);
        if measure(&nb, &x) < x.len() {
            return false;
        }
    }
    true
}

/// The worst (most deficient) subset under expansion into the complement,
/// if any: returns `Some((X, shortfall))` where
/// `shortfall = |X| − |Neigh(X) \ s| > 0`.
///
/// # Panics
///
/// Panics if `s` has more than 22 vertices.
#[must_use]
pub fn deficiency_witness_exact(graph: &Graph, s: &[VertexId]) -> Option<(Vec<VertexId>, usize)> {
    assert!(
        s.len() <= BRUTE_FORCE_LIMIT,
        "brute-force expander check limited to {BRUTE_FORCE_LIMIT} vertices, got {}",
        s.len()
    );
    let mut in_s = vec![false; graph.vertex_count()];
    for &v in s {
        in_s[v.index()] = true;
    }
    let mut worst: Option<(Vec<VertexId>, usize)> = None;
    for mask in 1u32..(1u32 << s.len()) {
        let x: Vec<VertexId> = (0..s.len())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| s[i])
            .collect();
        let outside = graph
            .neighborhood(&x)
            .into_iter()
            .filter(|w| !in_s[w.index()])
            .count();
        if outside < x.len() {
            let shortfall = x.len() - outside;
            if worst.as_ref().map_or(true, |(_, s0)| shortfall > *s0) {
                worst = Some((x, shortfall));
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// DESIGN.md §5.1: the triangle separates the two conditions.
    #[test]
    fn k3_separates_literal_from_into_complement() {
        let g = generators::complete(3);
        let vc = vec![VertexId::new(1), VertexId::new(2)]; // IS = {v0}
        assert!(
            is_expander_literal_exact(&g, &vc),
            "paper's literal condition holds"
        );
        assert!(
            !is_expander_into_complement_exact(&g, &vc),
            "but VC cannot be matched into IS = {{v0}}"
        );
        let (x, shortfall) = deficiency_witness_exact(&g, &vc).unwrap();
        assert_eq!(x.len(), 2);
        assert_eq!(shortfall, 1);
    }

    #[test]
    fn star_center_expands_into_leaves() {
        let g = generators::star(4);
        let vc = vec![VertexId::new(0)];
        assert!(is_expander_into_complement_exact(&g, &vc));
        assert!(deficiency_witness_exact(&g, &vc).is_none());
    }

    #[test]
    fn complete_bipartite_side_expands() {
        let g = generators::complete_bipartite(3, 3);
        let left: Vec<VertexId> = (0..3).map(VertexId::new).collect();
        assert!(is_expander_into_complement_exact(&g, &left));
    }

    #[test]
    fn unbalanced_bipartite_fails_from_large_side() {
        let g = generators::complete_bipartite(4, 2);
        let left: Vec<VertexId> = (0..4).map(VertexId::new).collect();
        assert!(!is_expander_into_complement_exact(&g, &left));
        let right: Vec<VertexId> = (4..6).map(VertexId::new).collect();
        assert!(is_expander_into_complement_exact(&g, &right));
    }

    #[test]
    fn empty_set_trivially_expands() {
        let g = generators::path(3);
        assert!(is_expander_literal_exact(&g, &[]));
        assert!(is_expander_into_complement_exact(&g, &[]));
    }

    #[test]
    fn cycle_alternate_cover() {
        let g = generators::cycle(6);
        let vc: Vec<VertexId> = [1, 3, 5].into_iter().map(VertexId::new).collect();
        assert!(is_expander_into_complement_exact(&g, &vc));
    }
}
