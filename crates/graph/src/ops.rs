//! Graph operators: complement, disjoint union, join.
//!
//! Handy for composing experiment instances (e.g. a triangle joined to an
//! independent set, or non-bipartite graphs with controlled matchings)
//! without hand-writing edge lists.

use crate::{Graph, GraphBuilder};

/// The complement graph: same vertices, exactly the missing edges.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, ops};
///
/// let g = ops::complement(&generators::complete(4));
/// assert_eq!(g.edge_count(), 0);
/// // C5 is self-complementary.
/// let c5 = generators::cycle(5);
/// assert_eq!(ops::complement(&c5).edge_count(), c5.edge_count());
/// ```
#[must_use]
pub fn complement(graph: &Graph) -> Graph {
    let n = graph.vertex_count();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if !graph.has_edge(crate::VertexId::new(i), crate::VertexId::new(j)) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// The disjoint union `G ⊔ H`: `H`'s vertices are renumbered to start at
/// `|V(G)|`.
#[must_use]
pub fn disjoint_union(g: &Graph, h: &Graph) -> Graph {
    let offset = g.vertex_count();
    let mut b = GraphBuilder::new(offset + h.vertex_count());
    for e in g.edges() {
        let ep = g.endpoints(e);
        b.add_edge(ep.u().index(), ep.v().index());
    }
    for e in h.edges() {
        let ep = h.endpoints(e);
        b.add_edge(offset + ep.u().index(), offset + ep.v().index());
    }
    b.build()
}

/// The join `G + H`: the disjoint union plus every cross edge.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, ops, GraphBuilder};
///
/// // Joining two edgeless sets gives a complete bipartite graph.
/// let a = GraphBuilder::new(2).build();
/// let b = GraphBuilder::new(3).build();
/// assert_eq!(ops::join(&a, &b), generators::complete_bipartite(2, 3));
/// ```
#[must_use]
pub fn join(g: &Graph, h: &Graph) -> Graph {
    let offset = g.vertex_count();
    let union = disjoint_union(g, h);
    let mut b = GraphBuilder::new(union.vertex_count());
    for e in union.edges() {
        let ep = union.endpoints(e);
        b.add_edge(ep.u().index(), ep.v().index());
    }
    for i in 0..offset {
        for j in 0..h.vertex_count() {
            b.add_edge(i, offset + j);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, properties};

    #[test]
    fn complement_involution() {
        for g in [
            generators::path(5),
            generators::petersen(),
            generators::gnp(8, 0.4, &mut { defender_num::rng::StdRng::seed_from_u64(1) }),
        ] {
            assert_eq!(complement(&complement(&g)), g);
        }
    }

    #[test]
    fn complement_edge_counts() {
        let g = generators::path(4); // 3 of 6 possible edges
        assert_eq!(complement(&g).edge_count(), 3);
        let k5 = generators::complete(5);
        assert_eq!(complement(&k5).edge_count(), 0);
    }

    #[test]
    fn complement_of_petersen_is_johnson() {
        // The Petersen complement is 6-regular (Kneser ↔ Johnson J(5,2)).
        let g = complement(&generators::petersen());
        assert_eq!(properties::regularity(&g), Some(6));
    }

    #[test]
    fn disjoint_union_counts() {
        let g = disjoint_union(&generators::cycle(3), &generators::path(4));
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 6);
        let (_, components) = crate::traversal::components(&g);
        assert_eq!(components, 2);
    }

    #[test]
    fn join_builds_wheels() {
        // Hub + cycle = wheel (up to relabeling; compare structurally).
        let hub = crate::GraphBuilder::new(1).build();
        let rim = generators::cycle(5);
        let wheel = join(&hub, &rim);
        assert_eq!(wheel.vertex_count(), 6);
        assert_eq!(wheel.edge_count(), 10);
        assert_eq!(wheel.degree(crate::VertexId::new(0)), 5);
    }

    #[test]
    fn join_of_empty_sides() {
        let empty = crate::GraphBuilder::new(0).build();
        let g = generators::path(3);
        assert_eq!(join(&empty, &g), g);
        assert_eq!(join(&g, &empty), g);
    }
}
