//! Edge covers: predicates and greedy construction.
//!
//! Theorem 3.1 ties pure Nash equilibria of `Π_k(G)` to edge covers of size
//! `k`; Claim 3.5 makes the defender's support edge set an edge cover in
//! every mixed equilibrium. The *minimum* edge cover (Gallai:
//! `ρ(G) = n − μ(G)`) needs maximum matching and therefore lives in
//! `defender-matching::minimum_edge_cover`; this module hosts the
//! matching-free parts.

use crate::{EdgeId, EdgeSet, Graph, VertexId, VertexSet};

/// Whether `edges` is an edge cover of `graph`: every vertex is an endpoint
/// of at least one chosen edge.
///
/// An empty edge set covers only the empty graph; graphs with isolated
/// vertices admit no edge cover at all.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, edge_cover};
///
/// let g = generators::star(3);
/// let all: Vec<_> = g.edges().collect();
/// assert!(edge_cover::is_edge_cover(&g, &all));
/// assert!(!edge_cover::is_edge_cover(&g, &all[..2]));
/// ```
#[must_use]
pub fn is_edge_cover(graph: &Graph, edges: &[EdgeId]) -> bool {
    uncovered_vertices(graph, edges).is_empty()
}

/// The vertices *not* covered by `edges`, sorted.
#[must_use]
pub fn uncovered_vertices(graph: &Graph, edges: &[EdgeId]) -> VertexSet {
    let mut covered = vec![false; graph.vertex_count()];
    for &e in edges {
        let ep = graph.endpoints(e);
        covered[ep.u().index()] = true;
        covered[ep.v().index()] = true;
    }
    graph.vertices().filter(|v| !covered[v.index()]).collect()
}

/// Greedy edge cover: scan vertices in id order; for each uncovered vertex
/// pick its lowest-id incident edge. At most `n` edges; within a factor of
/// at most 2 of the minimum.
///
/// Returns `None` if the graph has an isolated vertex (no cover exists).
#[must_use]
pub fn greedy(graph: &Graph) -> Option<EdgeSet> {
    let mut covered = vec![false; graph.vertex_count()];
    let mut out = Vec::new();
    for v in graph.vertices() {
        if covered[v.index()] {
            continue;
        }
        // Prefer an edge to another uncovered vertex (matching-like step).
        let incidence = graph.incidence(v);
        if incidence.is_empty() {
            return None;
        }
        let (w, e) = incidence
            .iter()
            .copied()
            .find(|&(w, _)| !covered[w.index()])
            .unwrap_or(incidence[0]);
        covered[v.index()] = true;
        covered[w.index()] = true;
        out.push(e);
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Exact minimum edge cover by exhaustive search over edge subsets,
/// smallest first. For cross-validation only.
///
/// Returns `None` if no edge cover exists (isolated vertex).
///
/// # Panics
///
/// Panics if the graph has more than 20 edges.
#[must_use]
pub fn minimum_exact_small(graph: &Graph) -> Option<EdgeSet> {
    let m = graph.edge_count();
    assert!(
        m <= 20,
        "exhaustive edge-cover search is limited to 20 edges, got {m}"
    );
    if graph.has_isolated_vertex() {
        return None;
    }
    if graph.vertex_count() == 0 {
        return Some(Vec::new());
    }
    let mut best: Option<Vec<EdgeId>> = None;
    for mask in 0u32..(1u32 << m) {
        let size = mask.count_ones() as usize;
        if best.as_ref().is_some_and(|b| b.len() <= size) {
            continue;
        }
        let subset: Vec<EdgeId> = (0..m)
            .filter(|&i| mask & (1 << i) != 0)
            .map(EdgeId::new)
            .collect();
        if is_edge_cover(graph, &subset) {
            best = Some(subset);
        }
    }
    best
}

/// Lower bound `⌈n / 2⌉` on any edge cover (each edge covers two vertices).
/// Used by Corollary 3.3: if `n ≥ 2k + 1` no size-`k` edge cover exists.
#[must_use]
pub fn lower_bound(graph: &Graph) -> usize {
    graph.vertex_count().div_ceil(2)
}

/// Per-vertex cover multiplicity: how many of `edges` are incident to each
/// vertex. Handy for checking the bijection argument of Corollary 4.11
/// (each support vertex lies on exactly one support edge).
#[must_use]
pub fn cover_multiplicity(graph: &Graph, edges: &[EdgeId]) -> Vec<usize> {
    let mut mult = vec![0usize; graph.vertex_count()];
    for &e in edges {
        let ep = graph.endpoints(e);
        mult[ep.u().index()] += 1;
        mult[ep.v().index()] += 1;
    }
    mult
}

/// The vertices covered exactly once by `edges`, sorted.
#[must_use]
pub fn singly_covered(graph: &Graph, edges: &[EdgeId]) -> Vec<VertexId> {
    cover_multiplicity(graph, edges)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c == 1)
        .map(|(i, _)| VertexId::new(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn predicate_and_uncovered() {
        let g = generators::path(4);
        let e01 = g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        let e23 = g.find_edge(VertexId::new(2), VertexId::new(3)).unwrap();
        assert!(is_edge_cover(&g, &[e01, e23]));
        assert_eq!(
            uncovered_vertices(&g, &[e01]),
            vec![VertexId::new(2), VertexId::new(3)]
        );
    }

    #[test]
    fn greedy_covers() {
        for g in [
            generators::path(7),
            generators::cycle(6),
            generators::star(5),
            generators::petersen(),
            generators::complete(6),
        ] {
            let cover = greedy(&g).expect("no isolated vertices");
            assert!(is_edge_cover(&g, &cover));
            assert!(cover.len() >= lower_bound(&g));
            assert!(cover.len() <= g.vertex_count());
        }
    }

    #[test]
    fn greedy_fails_on_isolated() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert_eq!(greedy(&b.build()), None);
    }

    #[test]
    fn exact_small_matches_known_values() {
        // ρ(P4) = 2, ρ(C5) = 3, ρ(K4) = 2, ρ(star_4) = 4.
        assert_eq!(minimum_exact_small(&generators::path(4)).unwrap().len(), 2);
        assert_eq!(minimum_exact_small(&generators::cycle(5)).unwrap().len(), 3);
        assert_eq!(
            minimum_exact_small(&generators::complete(4)).unwrap().len(),
            2
        );
        assert_eq!(minimum_exact_small(&generators::star(4)).unwrap().len(), 4);
    }

    #[test]
    fn exact_small_none_for_isolated() {
        let mut b = crate::GraphBuilder::new(2);
        let _ = b.add_vertex();
        b.add_edge(0, 1);
        assert_eq!(minimum_exact_small(&b.build()), None);
    }

    #[test]
    fn multiplicity_and_singly_covered() {
        let g = generators::star(3);
        let all: Vec<EdgeId> = g.edges().collect();
        let mult = cover_multiplicity(&g, &all);
        assert_eq!(mult[0], 3, "hub covered thrice");
        assert_eq!(
            singly_covered(&g, &all),
            vec![VertexId::new(1), VertexId::new(2), VertexId::new(3)]
        );
    }

    #[test]
    fn lower_bound_values() {
        assert_eq!(lower_bound(&generators::path(5)), 3);
        assert_eq!(lower_bound(&generators::path(6)), 3);
    }
}
