//! The graph6 interchange format (McKay).
//!
//! graph6 encodes a simple undirected graph as printable ASCII: the vertex
//! count, then the upper triangle of the adjacency matrix in column-major
//! order (`(0,1), (0,2), (1,2), (0,3), …`), packed six bits per character
//! with an offset of 63. Supported here for `n ≤ 258 047` (one- and
//! four-byte size headers), which covers every dataset this project
//! touches; the eight-byte header for larger graphs is rejected
//! explicitly.

use core::fmt;

use crate::{Graph, GraphBuilder, VertexId};

/// Errors from [`from_graph6`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Graph6Error {
    /// The string is empty.
    Empty,
    /// A character is outside the printable graph6 range `'?'..='~'`.
    BadCharacter {
        /// Byte offset of the offending character.
        position: usize,
    },
    /// The bit payload is shorter than the upper triangle requires.
    Truncated,
    /// The size header announces a graph too large to handle.
    TooLarge,
    /// The payload continues past the last sextet the upper triangle
    /// needs — well-formed encoders never emit extra bytes.
    TrailingData {
        /// Byte offset (in the trimmed string) of the first extra byte.
        position: usize,
    },
    /// The unused low bits of the final sextet are not zero, which the
    /// format requires of every encoder.
    NonzeroPadding,
}

impl fmt::Display for Graph6Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Graph6Error::Empty => write!(f, "empty graph6 string"),
            Graph6Error::BadCharacter { position } => {
                write!(f, "invalid graph6 character at byte {position}")
            }
            Graph6Error::Truncated => write!(f, "graph6 payload shorter than the upper triangle"),
            Graph6Error::TooLarge => write!(f, "graph6 size header exceeds the supported range"),
            Graph6Error::TrailingData { position } => {
                write!(
                    f,
                    "graph6 payload continues past the upper triangle at byte {position}"
                )
            }
            Graph6Error::NonzeroPadding => {
                write!(f, "graph6 final sextet carries nonzero padding bits")
            }
        }
    }
}

impl std::error::Error for Graph6Error {}

/// Encodes a graph in graph6.
///
/// # Panics
///
/// Panics if the graph has more than 258 047 vertices.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, graph6};
///
/// assert_eq!(graph6::to_graph6(&generators::complete(4)), "C~");
/// ```
#[must_use]
pub fn to_graph6(graph: &Graph) -> String {
    let n = graph.vertex_count();
    // Upper triangle, column-major: for j in 1..n, for i in 0..j.
    let mut bits: Vec<bool> = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for j in 1..n {
        for i in 0..j {
            bits.push(graph.has_edge(VertexId::new(i), VertexId::new(j)));
        }
    }
    pack(n, &bits)
}

/// Encodes an explicit edge list in graph6 without materializing a
/// [`Graph`]. Byte-identical to [`to_graph6`] of the graph built from
/// the same edges. This is the path `CanonicalForm::key` takes, so that
/// cache-key bookkeeping never ticks the `graph.build.*` counters a
/// solver run is judged on.
///
/// # Panics
///
/// Panics if `n` exceeds 258 047 or an endpoint is out of range.
#[must_use]
pub fn encode_edge_list(n: usize, edges: &[(usize, usize)]) -> String {
    let mut bits = vec![false; n.saturating_sub(1) * n / 2];
    for &(u, v) in edges {
        let (i, j) = if u < v { (u, v) } else { (v, u) };
        assert!(i < j && j < n, "edge ({u}, {v}) out of range for n = {n}");
        // Column-major upper-triangle position of (i, j), i < j.
        bits[j * (j - 1) / 2 + i] = true;
    }
    pack(n, &bits)
}

/// Packs the size header and column-major upper-triangle `bits` into the
/// printable graph6 alphabet.
fn pack(n: usize, bits: &[bool]) -> String {
    assert!(n <= 258_047, "graph6 support here stops at 258047 vertices");
    let mut out = Vec::new();
    if n <= 62 {
        out.push((n as u8) + 63);
    } else {
        out.push(126); // '~'
        out.push(((n >> 12) & 63) as u8 + 63);
        out.push(((n >> 6) & 63) as u8 + 63);
        out.push((n & 63) as u8 + 63);
    }
    for chunk in bits.chunks(6) {
        let mut value = 0u8;
        for (pos, &bit) in chunk.iter().enumerate() {
            if bit {
                value |= 1 << (5 - pos);
            }
        }
        out.push(value + 63);
    }
    // Every byte is (6-bit value) + 63 ≤ 126, so each is a valid char.
    out.into_iter().map(char::from).collect()
}

/// Decodes a graph6 string.
///
/// # Errors
///
/// See [`Graph6Error`].
pub fn from_graph6(text: &str) -> Result<Graph, Graph6Error> {
    let bytes = text.trim().as_bytes();
    if bytes.is_empty() {
        return Err(Graph6Error::Empty);
    }
    for (position, &b) in bytes.iter().enumerate() {
        if !(63..=126).contains(&b) {
            return Err(Graph6Error::BadCharacter { position });
        }
    }
    let (n, payload) = if bytes[0] == 126 {
        if bytes.len() >= 2 && bytes[1] == 126 {
            return Err(Graph6Error::TooLarge); // eight-byte header
        }
        if bytes.len() < 4 {
            return Err(Graph6Error::Truncated);
        }
        let n = ((usize::from(bytes[1] - 63)) << 12)
            | ((usize::from(bytes[2] - 63)) << 6)
            | usize::from(bytes[3] - 63);
        (n, &bytes[4..])
    } else {
        (usize::from(bytes[0] - 63), &bytes[1..])
    };

    let needed_bits = n.saturating_sub(1) * n / 2;
    let needed_bytes = needed_bits.div_ceil(6);
    if payload.len() < needed_bytes {
        return Err(Graph6Error::Truncated);
    }
    if payload.len() > needed_bytes {
        // A lax decoder would silently drop the extra sextets, decoding
        // two different strings to the same graph; reject instead.
        return Err(Graph6Error::TrailingData {
            position: bytes.len() - payload.len() + needed_bytes,
        });
    }
    if needed_bits % 6 != 0 {
        let used = needed_bits % 6;
        let padding_mask = (1u8 << (6 - used)) - 1;
        if (payload[needed_bytes - 1] - 63) & padding_mask != 0 {
            return Err(Graph6Error::NonzeroPadding);
        }
    }
    let mut b = GraphBuilder::new(n);
    let mut bit_index = 0usize;
    for j in 1..n {
        for i in 0..j {
            let byte = payload[bit_index / 6] - 63;
            let bit = (byte >> (5 - (bit_index % 6))) & 1;
            if bit == 1 {
                b.add_edge(i, j);
            }
            bit_index += 1;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use defender_num::rng::StdRng;

    #[test]
    fn known_encodings() {
        assert_eq!(to_graph6(&generators::complete(4)), "C~");
        // P3 with edges (0,1), (1,2): bits (0,1)=1, (0,2)=0, (1,2)=1.
        assert_eq!(to_graph6(&generators::path(3)), "Bg");
        // C5 — a standard example string.
        assert_eq!(to_graph6(&generators::cycle(5)), "Dhc");
        // The singleton and the empty-ish cases.
        assert_eq!(to_graph6(&crate::GraphBuilder::new(1).build()), "@");
        assert_eq!(to_graph6(&crate::GraphBuilder::new(0).build()), "?");
    }

    #[test]
    fn known_decodings() {
        assert_eq!(from_graph6("C~").unwrap(), generators::complete(4));
        assert_eq!(from_graph6("Bg").unwrap(), generators::path(3));
        assert_eq!(from_graph6("Dhc").unwrap(), generators::cycle(5));
    }

    #[test]
    fn round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            generators::petersen(),
            generators::grid(4, 5),
            generators::star(9),
            generators::gnp(17, 0.3, &mut rng),
            crate::GraphBuilder::new(7).build(),
        ] {
            let encoded = to_graph6(&g);
            assert_eq!(from_graph6(&encoded).unwrap(), g, "{encoded}");
        }
    }

    #[test]
    fn large_n_header_round_trips() {
        // 63 vertices forces the four-byte header.
        let g = generators::cycle(63);
        let encoded = to_graph6(&g);
        assert!(encoded.starts_with('~'));
        assert_eq!(from_graph6(&encoded).unwrap(), g);
        let g = generators::cycle(100);
        assert_eq!(from_graph6(&to_graph6(&g)).unwrap(), g);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(from_graph6(""), Err(Graph6Error::Empty));
        assert_eq!(from_graph6("C"), Err(Graph6Error::Truncated));
        assert_eq!(
            from_graph6("C\u{7f}"),
            Err(Graph6Error::BadCharacter { position: 1 })
        );
        assert_eq!(from_graph6("~~????"), Err(Graph6Error::TooLarge));
        assert!(from_graph6("~?").is_err());
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // "C~" (K4) with one spare sextet appended: a lax decoder reads
        // the graph and silently ignores the rest.
        assert_eq!(
            from_graph6("C~?"),
            Err(Graph6Error::TrailingData { position: 2 })
        );
        // Zero-vertex and one-vertex graphs need no payload at all.
        assert_eq!(
            from_graph6("??"),
            Err(Graph6Error::TrailingData { position: 1 })
        );
        assert_eq!(
            from_graph6("@?"),
            Err(Graph6Error::TrailingData { position: 1 })
        );
        // The multi-byte header path: cycle(63) plus a spare byte.
        let mut oversized = to_graph6(&generators::cycle(63));
        let expected_position = oversized.len();
        oversized.push('?');
        assert_eq!(
            from_graph6(&oversized),
            Err(Graph6Error::TrailingData {
                position: expected_position
            })
        );
    }

    #[test]
    fn nonzero_padding_bits_rejected() {
        // C5 is "Dhc": n = 5 needs 10 bits, so the final sextet uses 4
        // bits and pads 2. Setting a padding bit must be rejected.
        assert_eq!(from_graph6("Dhc").unwrap(), generators::cycle(5));
        assert_eq!(from_graph6("Dhd"), Err(Graph6Error::NonzeroPadding));
        // Same check through the multi-byte header path: n = 63 needs
        // 1953 bits = 325 sextets + 3 bits, leaving 3 padding bits.
        let mut encoded = to_graph6(&generators::cycle(63)).into_bytes();
        let last = encoded.last_mut().unwrap();
        *last += 1; // flips the lowest padding bit, stays printable
        assert_eq!(
            from_graph6(std::str::from_utf8(&encoded).unwrap()),
            Err(Graph6Error::NonzeroPadding)
        );
    }

    #[test]
    fn strict_roundtrip_is_bijective_on_encodings() {
        // Every encoder output decodes, and every decodable string
        // re-encodes to itself — strictness makes the map injective.
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::complete(4),
            generators::cycle(63),
            generators::cycle(100),
            generators::gnp(30, 0.4, &mut rng),
            crate::GraphBuilder::new(2).build(),
        ] {
            let encoded = to_graph6(&g);
            let decoded = from_graph6(&encoded).unwrap();
            assert_eq!(decoded, g);
            assert_eq!(to_graph6(&decoded), encoded);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(from_graph6(" C~\n").unwrap(), generators::complete(4));
    }

    #[test]
    fn error_displays() {
        assert!(Graph6Error::Empty.to_string().contains("empty"));
        assert!(Graph6Error::Truncated.to_string().contains("shorter"));
        assert!(Graph6Error::TooLarge.to_string().contains("exceeds"));
        assert!(Graph6Error::BadCharacter { position: 2 }
            .to_string()
            .contains('2'));
    }
}
