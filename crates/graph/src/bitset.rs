//! Packed `u64`-word adjacency bitmap: O(1) edge tests and word-parallel
//! set kernels.
//!
//! Built lazily per [`Graph`](crate::Graph) (see
//! [`Graph::adjacency_bits`](crate::Graph::adjacency_bits)) and gated to
//! [`BITSET_MAX_VERTICES`](crate::Graph::BITSET_MAX_VERTICES) vertices so
//! the O(n²/8)-byte footprint never bites the large sparse instances the
//! experiments sweep (E5 runs cycles up to n = 32 000).

use crate::{Graph, VertexId};

/// Number of vertices packed per word.
const WORD_BITS: usize = 64;

/// A dense adjacency matrix packed into `u64` words, one row per vertex.
///
/// Row `v` has bit `w` set iff `{v, w}` is an edge. Rows are
/// `words_per_row` words long; bits at positions `>= n` are always zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyBits {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjacencyBits {
    /// Packs the adjacency of `graph` into a bitmap.
    #[must_use]
    pub(crate) fn build(graph: &Graph) -> AdjacencyBits {
        let n = graph.vertex_count();
        let words_per_row = n.div_ceil(WORD_BITS);
        let mut bits = vec![0u64; n * words_per_row];
        for e in graph.edges() {
            let ep = graph.endpoints(e);
            let (u, v) = (ep.u().index(), ep.v().index());
            bits[u * words_per_row + v / WORD_BITS] |= 1u64 << (v % WORD_BITS);
            bits[v * words_per_row + u / WORD_BITS] |= 1u64 << (u % WORD_BITS);
        }
        AdjacencyBits {
            n,
            words_per_row,
            bits,
        }
    }

    /// Number of words in each row.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed neighbor row of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn row(&self, v: VertexId) -> &[u64] {
        let lo = v.index() * self.words_per_row;
        &self.bits[lo..lo + self.words_per_row]
    }

    /// O(1) adjacency test.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    #[must_use]
    pub fn contains(&self, a: VertexId, b: VertexId) -> bool {
        let (bi, bw) = (b.index() / WORD_BITS, b.index() % WORD_BITS);
        self.bits[a.index() * self.words_per_row + bi] & (1u64 << bw) != 0
    }

    /// Word-parallel test: does the neighborhood of `v` intersect the
    /// vertex set packed in `set_words`?
    ///
    /// `set_words` must be at least `words_per_row` long (extra words are
    /// ignored).
    ///
    /// # Panics
    ///
    /// Panics if `set_words` is shorter than a row.
    #[must_use]
    pub fn row_intersects(&self, v: VertexId, set_words: &[u64]) -> bool {
        self.row(v).iter().zip(set_words).any(|(&r, &s)| r & s != 0)
    }

    /// Word-parallel neighborhood intersection: the number of common
    /// neighbors of `u` and `v`.
    #[must_use]
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        self.row(u)
            .iter()
            .zip(self.row(v))
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the neighbors of `v` in increasing id order by scanning
    /// the set bits of its packed row.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.row(v).iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi * WORD_BITS;
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(VertexId::new(base + bit))
            })
        })
    }
}

/// Packs a vertex set into `words` (cleared and resized to `word_len`).
pub(crate) fn pack_set(set: &[VertexId], word_len: usize, words: &mut Vec<u64>) {
    words.clear();
    words.resize(word_len, 0);
    for &v in set {
        words[v.index() / WORD_BITS] |= 1u64 << (v.index() % WORD_BITS);
    }
}

/// Whether `v` is a member of the packed set.
pub(crate) fn set_contains(words: &[u64], v: VertexId) -> bool {
    words[v.index() / WORD_BITS] & (1u64 << (v.index() % WORD_BITS)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bitmap_matches_incidence_lists() {
        for g in [
            generators::petersen(),
            generators::complete(9),
            generators::star(70), // spills into a second word
            generators::grid(5, 13),
        ] {
            let bits = AdjacencyBits::build(&g);
            for a in g.vertices() {
                let from_bits: Vec<VertexId> = bits.neighbors(a).collect();
                let from_lists: Vec<VertexId> = g.neighbors(a).collect();
                assert_eq!(from_bits, from_lists, "row {a}");
                for b in g.vertices() {
                    assert_eq!(bits.contains(a, b), g.has_edge(a, b), "({a}, {b})");
                }
            }
        }
    }

    #[test]
    fn row_intersects_is_word_parallel_membership() {
        let g = generators::cycle(130);
        let bits = AdjacencyBits::build(&g);
        let mut words = Vec::new();
        pack_set(
            &[VertexId::new(0), VertexId::new(64), VertexId::new(129)],
            bits.words_per_row(),
            &mut words,
        );
        // v1 neighbors {0, 2}: intersects; v66 neighbors {65, 67}: does not.
        assert!(bits.row_intersects(VertexId::new(1), &words));
        assert!(!bits.row_intersects(VertexId::new(66), &words));
        // 129 is adjacent to 0 on the cycle.
        assert!(bits.row_intersects(VertexId::new(129), &words));
        assert!(set_contains(&words, VertexId::new(64)));
        assert!(!set_contains(&words, VertexId::new(65)));
    }

    #[test]
    fn common_neighbors_count() {
        let g = generators::complete(6);
        let bits = AdjacencyBits::build(&g);
        // In K6 two distinct vertices share the other four.
        assert_eq!(
            bits.common_neighbor_count(VertexId::new(0), VertexId::new(1)),
            4
        );
        let p = generators::path(3);
        let pbits = AdjacencyBits::build(&p);
        assert_eq!(
            pbits.common_neighbor_count(VertexId::new(0), VertexId::new(2)),
            1
        );
    }
}
