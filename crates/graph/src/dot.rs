//! Graphviz DOT export for debugging and documentation figures.

use std::fmt::Write as _;

use crate::{EdgeId, Graph, VertexId};

/// Options controlling [`to_dot`] output.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Vertices to draw highlighted (e.g. the attackers' support).
    pub highlight_vertices: Vec<VertexId>,
    /// Edges to draw highlighted (e.g. the defender's support).
    pub highlight_edges: Vec<EdgeId>,
    /// Graph name in the DOT header.
    pub name: String,
}

/// Renders the graph in Graphviz DOT syntax.
///
/// Highlighted vertices are filled, highlighted edges are bold. Output is
/// deterministic.
///
/// # Examples
///
/// ```
/// use defender_graph::{dot, generators};
///
/// let g = generators::path(2);
/// let rendered = dot::to_dot(&g, &dot::DotOptions::default());
/// assert!(rendered.contains("v0 -- v1"));
/// ```
#[must_use]
pub fn to_dot(graph: &Graph, options: &DotOptions) -> String {
    let name = if options.name.is_empty() {
        "G"
    } else {
        &options.name
    };
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let mut vertex_hl = vec![false; graph.vertex_count()];
    for &v in &options.highlight_vertices {
        vertex_hl[v.index()] = true;
    }
    let mut edge_hl = vec![false; graph.edge_count()];
    for &e in &options.highlight_edges {
        edge_hl[e.index()] = true;
    }
    for v in graph.vertices() {
        if vertex_hl[v.index()] {
            let _ = writeln!(out, "  {v} [style=filled, fillcolor=lightblue];");
        } else {
            let _ = writeln!(out, "  {v};");
        }
    }
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        if edge_hl[e.index()] {
            let _ = writeln!(out, "  {} -- {} [style=bold, color=red];", ep.u(), ep.v());
        } else {
            let _ = writeln!(out, "  {} -- {};", ep.u(), ep.v());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn plain_render() {
        let g = generators::path(3);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v1 -- v2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlights_render() {
        let g = generators::path(3);
        let options = DotOptions {
            highlight_vertices: vec![VertexId::new(1)],
            highlight_edges: vec![EdgeId::new(0)],
            name: "NE".into(),
        };
        let dot = to_dot(&g, &options);
        assert!(dot.starts_with("graph NE {"));
        assert!(dot.contains("v1 [style=filled"));
        assert!(dot.contains("v0 -- v1 [style=bold"));
    }

    #[test]
    fn deterministic() {
        let g = generators::cycle(4);
        assert_eq!(
            to_dot(&g, &DotOptions::default()),
            to_dot(&g, &DotOptions::default())
        );
    }
}
