//! The core immutable [`Graph`] type and its id newtypes.

use core::fmt;
use std::sync::OnceLock;

use crate::bitset::AdjacencyBits;

/// Identifier of a vertex in a [`Graph`].
///
/// Vertices of a graph with `n` vertices are always `0..n`, so a
/// `VertexId` doubles as an index into per-vertex arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> VertexId {
        // lint: allow(panic) graphs are capped far below u32::MAX vertices
        VertexId(u32::try_from(index).expect("vertex index fits in u32"))
    }

    /// The raw index of this vertex.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<VertexId> for usize {
    fn from(v: VertexId) -> usize {
        v.index()
    }
}

/// Identifier of an edge in a [`Graph`].
///
/// Edges of a graph with `m` edges are always `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> EdgeId {
        // lint: allow(panic) graphs are capped far below u32::MAX edges
        EdgeId(u32::try_from(index).expect("edge index fits in u32"))
    }

    /// The raw index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EdgeId> for usize {
    fn from(e: EdgeId) -> usize {
        e.index()
    }
}

/// The two endpoints of an undirected edge, stored with `u <= v`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoints {
    u: VertexId,
    v: VertexId,
}

impl Endpoints {
    pub(crate) fn new(a: VertexId, b: VertexId) -> Endpoints {
        if a <= b {
            Endpoints { u: a, v: b }
        } else {
            Endpoints { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[must_use]
    pub fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[must_use]
    pub fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints as an array `[u, v]` with `u <= v`.
    #[must_use]
    pub fn both(self) -> [VertexId; 2] {
        [self.u, self.v]
    }

    /// Whether `w` is one of the two endpoints.
    #[must_use]
    pub fn contains(self, w: VertexId) -> bool {
        self.u == w || self.v == w
    }

    /// The endpoint different from `w`, or `None` if `w` is not an
    /// endpoint of this edge.
    #[must_use]
    pub fn try_other(self, w: VertexId) -> Option<VertexId> {
        if self.u == w {
            Some(self.v)
        } else if self.v == w {
            Some(self.u)
        } else {
            None
        }
    }

    /// The endpoint different from `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not an endpoint of this edge; callers that cannot
    /// prove membership should use [`Endpoints::try_other`].
    #[must_use]
    pub fn other(self, w: VertexId) -> VertexId {
        match self.try_other(w) {
            Some(v) => v,
            // lint: allow(panic) documented contract; try_other is the fallible form
            None => panic!("{w} is not an endpoint of edge ({}, {})", self.u, self.v),
        }
    }
}

impl fmt::Debug for Endpoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl fmt::Display for Endpoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// An immutable, simple, undirected graph.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder), which
/// rejects self-loops and deduplicates parallel edges. Adjacency is stored
/// in CSR (compressed sparse row) form: for each vertex a contiguous slice
/// of (neighbor, edge-id) pairs. All queries after construction are
/// allocation-free.
///
/// The paper assumes graphs with no isolated vertices; the game layer
/// enforces that via [`Graph::has_isolated_vertex`] rather than this type,
/// so the substrate stays usable for intermediate constructions.
///
/// # Examples
///
/// ```
/// use defender_graph::{Graph, GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g: Graph = b.build();
///
/// let v1 = VertexId::new(1);
/// assert_eq!(g.degree(v1), 2);
/// let neighbors: Vec<_> = g.neighbors(v1).collect();
/// assert_eq!(neighbors, vec![VertexId::new(0), VertexId::new(2)]);
/// ```
#[derive(Clone)]
pub struct Graph {
    /// CSR row offsets: vertex `v`'s incidence list is
    /// `adjacency[offsets[v] .. offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Flattened (neighbor, incident edge) pairs, sorted per vertex.
    adjacency: Vec<(VertexId, EdgeId)>,
    /// Endpoints of each edge, indexed by `EdgeId`.
    edges: Vec<Endpoints>,
    /// Lazily built packed adjacency bitmap (see [`Graph::adjacency_bits`]).
    /// `None` inside the lock means the graph exceeds
    /// [`Graph::BITSET_MAX_VERTICES`] and the bitmap is never materialized.
    bits: OnceLock<Option<AdjacencyBits>>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        // The bitmap is a cache derived from the CSR data; whether it has
        // been built must not affect structural equality.
        self.offsets == other.offsets
            && self.adjacency == other.adjacency
            && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl Graph {
    pub(crate) fn from_parts(vertex_count: usize, edges: Vec<Endpoints>) -> Graph {
        let mut degree = vec![0u32; vertex_count];
        for e in &edges {
            degree[e.u().index()] += 1;
            degree[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(vertex_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..vertex_count].to_vec();
        let mut adjacency = vec![(VertexId::new(0), EdgeId::new(0)); acc as usize];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::new(i);
            adjacency[cursor[e.u().index()] as usize] = (e.v(), id);
            cursor[e.u().index()] += 1;
            adjacency[cursor[e.v().index()] as usize] = (e.u(), id);
            cursor[e.v().index()] += 1;
        }
        // Sort each incidence slice by neighbor id for deterministic iteration.
        for v in 0..vertex_count {
            let range = offsets[v] as usize..offsets[v + 1] as usize;
            adjacency[range].sort_unstable();
        }
        Graph {
            offsets,
            adjacency,
            edges,
            bits: OnceLock::new(),
        }
    }

    /// Largest vertex count for which [`Graph::adjacency_bits`] will build
    /// the packed adjacency bitmap.
    ///
    /// At this bound the bitmap costs `n²/8 = 512 KiB`; beyond it the
    /// quadratic footprint would dwarf the CSR representation for the
    /// large sparse instances the experiments sweep (E5 runs cycles up to
    /// `n = 32 000`, where a bitmap would be 128 MB).
    pub const BITSET_MAX_VERTICES: usize = 2048;

    /// The packed adjacency bitmap, building it on first call.
    ///
    /// Returns `None` when the graph has more than
    /// [`Graph::BITSET_MAX_VERTICES`] vertices (or none at all); callers
    /// must then fall back to the CSR incidence lists. The bitmap is built
    /// at most once per graph and shared by all subsequent callers.
    #[must_use]
    pub fn adjacency_bits(&self) -> Option<&AdjacencyBits> {
        self.bits
            .get_or_init(|| {
                let n = self.vertex_count();
                (n > 0 && n <= Graph::BITSET_MAX_VERTICES).then(|| AdjacencyBits::build(self))
            })
            .as_ref()
    }

    /// The bitmap if some caller has already forced its construction.
    pub(crate) fn built_bits(&self) -> Option<&AdjacencyBits> {
        self.bits.get().and_then(Option::as_ref)
    }

    /// Number of vertices `n = |V|`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `m = |E|`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids `v0, v1, …`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone + '_ {
        (0..self.vertex_count()).map(VertexId::new)
    }

    /// Iterator over all edge ids `e0, e1, …`.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// The endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of this graph.
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> Endpoints {
        self.edges[e.index()]
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterator over the neighbors of `v`, in increasing id order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    pub fn neighbors(&self, v: VertexId) -> impl ExactSizeIterator<Item = VertexId> + Clone + '_ {
        self.incidence(v).iter().map(|&(w, _)| w)
    }

    /// Iterator over the edges incident to `v`, as (neighbor, edge) pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this graph.
    #[must_use]
    pub fn incidence(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Iterator over the ids of edges incident to `v`.
    pub fn incident_edges(
        &self,
        v: VertexId,
    ) -> impl ExactSizeIterator<Item = EdgeId> + Clone + '_ {
        self.incidence(v).iter().map(|&(_, e)| e)
    }

    /// Whether vertices `a` and `b` are adjacent.
    ///
    /// O(1) single-word test when the adjacency bitmap has been built (see
    /// [`Graph::adjacency_bits`]); O(log deg) binary search otherwise.
    #[must_use]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        if let Some(bits) = self.built_bits() {
            return bits.contains(a, b);
        }
        self.find_edge(a, b).is_some()
    }

    /// The id of the edge joining `a` and `b`, if present.
    #[must_use]
    pub fn find_edge(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        // An already-built bitmap settles the (common) negative case with
        // one word test before the binary search.
        if let Some(bits) = self.built_bits() {
            if !bits.contains(a, b) {
                return None;
            }
        }
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let slice = self.incidence(probe);
        slice
            .binary_search_by(|&(w, _)| w.cmp(&other))
            .ok()
            .map(|i| slice[i].1)
    }

    /// Whether any vertex has degree zero.
    ///
    /// The Tuple model is only defined on graphs where this is `false`.
    #[must_use]
    pub fn has_isolated_vertex(&self) -> bool {
        self.vertices().any(|v| self.degree(v) == 0)
    }

    /// The maximum degree `Δ(G)`, or 0 for the empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The minimum degree `δ(G)`, or 0 for the empty graph.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// The set of distinct endpoints of the given edges — `V(T)` in the
    /// paper's notation — sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of range.
    #[must_use]
    pub fn endpoint_set(&self, edges: &[EdgeId]) -> crate::VertexSet {
        let mut out: Vec<VertexId> = edges
            .iter()
            .flat_map(|&e| self.endpoints(e).both())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Neighborhood `Neigh_G(X)` of a vertex set: all vertices adjacent to
    /// at least one vertex of `X` (may intersect `X`), sorted.
    #[must_use]
    pub fn neighborhood(&self, xs: &[VertexId]) -> crate::VertexSet {
        let mut out: Vec<VertexId> = xs.iter().flat_map(|&x| self.neighbors(x)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.vertex_count())
            .field("m", &self.edge_count())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertices().len(), 3);
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        let n0: Vec<_> = g.neighbors(VertexId::new(0)).collect();
        assert_eq!(n0, vec![VertexId::new(1), VertexId::new(2)]);
    }

    #[test]
    fn edge_lookup() {
        let g = triangle();
        assert!(g.has_edge(VertexId::new(0), VertexId::new(2)));
        assert!(g.has_edge(VertexId::new(2), VertexId::new(0)));
        let e = g.find_edge(VertexId::new(1), VertexId::new(2)).unwrap();
        assert_eq!(g.endpoints(e).both(), [VertexId::new(1), VertexId::new(2)]);
    }

    #[test]
    fn endpoints_other_and_contains() {
        let g = triangle();
        let e = g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        let ep = g.endpoints(e);
        assert!(ep.contains(VertexId::new(0)));
        assert!(!ep.contains(VertexId::new(2)));
        assert_eq!(ep.other(VertexId::new(0)), VertexId::new(1));
        assert_eq!(ep.other(VertexId::new(1)), VertexId::new(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn endpoints_other_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        let _ = g.endpoints(e).other(VertexId::new(2));
    }

    #[test]
    fn isolated_vertex_detection() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(g.has_isolated_vertex());
        assert!(!triangle().has_isolated_vertex());
    }

    #[test]
    fn endpoint_set_dedups() {
        let g = triangle();
        let e01 = g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        let e12 = g.find_edge(VertexId::new(1), VertexId::new(2)).unwrap();
        let vs = g.endpoint_set(&[e01, e12]);
        assert_eq!(
            vs,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(2)]
        );
    }

    #[test]
    fn neighborhood_of_set() {
        let g = triangle();
        let nb = g.neighborhood(&[VertexId::new(0)]);
        assert_eq!(nb, vec![VertexId::new(1), VertexId::new(2)]);
        let nb_all = g.neighborhood(&[VertexId::new(0), VertexId::new(1)]);
        assert_eq!(nb_all.len(), 3, "triangle neighborhoods overlap X itself");
    }

    #[test]
    fn min_max_degree() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        let g = b.build();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn adjacency_bits_gate_and_reuse() {
        let g = triangle();
        let bits = g.adjacency_bits().expect("small graph builds a bitmap");
        assert!(bits.contains(VertexId::new(0), VertexId::new(1)));
        // Second call returns the same cached bitmap.
        assert!(std::ptr::eq(bits, g.adjacency_bits().unwrap()));

        let empty = GraphBuilder::new(0).build();
        assert!(empty.adjacency_bits().is_none());

        let mut big = GraphBuilder::new(Graph::BITSET_MAX_VERTICES + 1);
        big.add_edge(0, 1);
        let big = big.build();
        assert!(big.adjacency_bits().is_none(), "above the size gate");
        // CSR fallbacks still answer queries.
        assert!(big.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(!big.has_edge(VertexId::new(1), VertexId::new(2)));
    }

    #[test]
    fn equality_ignores_bitmap_cache_state() {
        let a = triangle();
        let b = triangle();
        let _ = a.adjacency_bits();
        assert_eq!(a, b, "built bitmap on one side must not break equality");
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn edge_queries_agree_with_and_without_bitmap() {
        // High-degree regression corpus for the find_edge binary search:
        // star (one hub of degree n-1) and complete graphs, queried both
        // before and after the bitmap exists.
        for g in [crate::generators::star(80), crate::generators::complete(20)] {
            let plain: Vec<Option<EdgeId>> = g
                .vertices()
                .flat_map(|a| g.vertices().map(move |b| (a, b)))
                .map(|(a, b)| g.find_edge(a, b))
                .collect();
            g.adjacency_bits().expect("within size gate");
            let with_bits: Vec<Option<EdgeId>> = g
                .vertices()
                .flat_map(|a| g.vertices().map(move |b| (a, b)))
                .map(|(a, b)| g.find_edge(a, b))
                .collect();
            assert_eq!(plain, with_bits);
            for (a, b) in g.vertices().flat_map(|a| g.vertices().map(move |b| (a, b))) {
                assert_eq!(g.has_edge(a, b), g.find_edge(a, b).is_some());
                if let Some(e) = g.find_edge(a, b) {
                    assert!(g.endpoints(e).contains(a) && g.endpoints(e).contains(b));
                }
            }
        }
    }

    #[test]
    fn ids_display() {
        assert_eq!(VertexId::new(3).to_string(), "v3");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
    }
}
