//! Breadth-first and depth-first traversal.

use std::collections::VecDeque;

use crate::{Graph, VertexId};

/// Breadth-first search from `source`, returning for every vertex its
/// distance from `source` (`None` when unreachable).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, traversal, VertexId};
///
/// let g = generators::path(4); // v0 - v1 - v2 - v3
/// let dist = traversal::bfs_distances(&g, VertexId::new(0));
/// assert_eq!(dist[3], Some(3));
/// ```
#[must_use]
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.vertex_count()];
    dist[source.index()] = Some(0);
    // The queue carries each vertex's distance so the loop needs no
    // fallible re-lookup into `dist`.
    let mut queue = VecDeque::from([(source, 0usize)]);
    while let Some((v, d)) = queue.pop_front() {
        for w in graph.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back((w, d + 1));
            }
        }
    }
    dist
}

/// Vertices in breadth-first order from `source` (its connected component).
#[must_use]
pub fn bfs_order(graph: &Graph, source: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; graph.vertex_count()];
    seen[source.index()] = true;
    let mut order = Vec::new();
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in graph.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Vertices in (iterative, preorder) depth-first order from `source`.
#[must_use]
pub fn dfs_order(graph: &Graph, source: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; graph.vertex_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so the smallest-id neighbor is visited first.
        let neighbors: Vec<VertexId> = graph.neighbors(v).collect();
        for &w in neighbors.iter().rev() {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// Connected-component labeling: returns `(labels, component_count)` where
/// `labels[v]` identifies `v`'s component with a number in
/// `0..component_count`, numbered in order of smallest contained vertex.
#[must_use]
pub fn components(graph: &Graph) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; graph.vertex_count()];
    let mut next = 0;
    for v in graph.vertices() {
        if label[v.index()] != usize::MAX {
            continue;
        }
        for w in bfs_order(graph, v) {
            label[w.index()] = next;
        }
        next += 1;
    }
    (label, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = crate::generators::path(5);
        let dist = bfs_distances(&g, VertexId::new(2));
        let values: Vec<_> = dist.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = two_triangles();
        let dist = bfs_distances(&g, VertexId::new(0));
        assert_eq!(dist[4], None);
        assert_eq!(dist[2], Some(1));
    }

    #[test]
    fn bfs_order_covers_component() {
        let g = two_triangles();
        let order = bfs_order(&g, VertexId::new(3));
        assert_eq!(order.len(), 3);
        assert!(order.contains(&VertexId::new(5)));
    }

    #[test]
    fn dfs_order_is_preorder() {
        let g = crate::generators::path(4);
        let order = dfs_order(&g, VertexId::new(0));
        assert_eq!(
            order,
            vec![
                VertexId::new(0),
                VertexId::new(1),
                VertexId::new(2),
                VertexId::new(3)
            ]
        );
    }

    #[test]
    fn dfs_covers_component_once() {
        let g = two_triangles();
        let order = dfs_order(&g, VertexId::new(0));
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "no vertex repeats");
    }

    #[test]
    fn component_labels() {
        let g = two_triangles();
        let (labels, count) = components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn single_vertex_components() {
        let g = GraphBuilder::new(3).build();
        let (labels, count) = components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels, vec![0, 1, 2]);
    }
}
