//! Graph generators: the workload families used by the experiments.
//!
//! Deterministic families (paths, cycles, stars, wheels, complete and
//! complete bipartite graphs, grids, hypercubes, circulants, ladders, the
//! Petersen graph) plus seeded random families (`G(n, p)`, random bipartite,
//! random trees). Random generators take an explicit [`Rng`] so every
//! experiment is reproducible from a seed.

use defender_num::rng::Rng;

use crate::{Graph, GraphBuilder};

/// The path `P_n` on `n` vertices (`n - 1` edges).
///
/// # Examples
///
/// ```
/// let g = defender_graph::generators::path(4);
/// assert_eq!((g.vertex_count(), g.edge_count()), (4, 3));
/// ```
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// The cycle `C_n` on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices, got {n}");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    b.build()
}

/// The star `K_{1,leaves}`: vertex 0 is the center.
///
/// # Panics
///
/// Panics if `leaves == 0`.
#[must_use]
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1, "a star needs at least one leaf");
    let mut b = GraphBuilder::new(leaves + 1);
    for i in 1..=leaves {
        b.add_edge(0, i);
    }
    b.build()
}

/// The wheel `W_n`: a cycle on `n ≥ 3` rim vertices plus a hub (vertex 0)
/// adjacent to every rim vertex.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(
        n >= 3,
        "a wheel needs a rim of at least 3 vertices, got {n}"
    );
    let mut b = GraphBuilder::new(n + 1);
    for i in 1..=n {
        b.add_edge(0, i);
        let next = if i == n { 1 } else { i + 1 };
        b.add_edge(i, next);
    }
    b.build()
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`: vertices `0..a` on the left,
/// `a..a+b` on the right.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j);
        }
    }
    builder.build()
}

/// The `rows × cols` grid graph; vertex `(r, c)` has index `r * cols + c`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if c + 1 < cols {
                b.add_edge(idx, idx + 1);
            }
            if r + 1 < rows {
                b.add_edge(idx, idx + cols);
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices.
///
/// # Panics
///
/// Panics if `d > 20` (guards against accidental huge allocations).
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension {d} is too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v, w);
            }
        }
    }
    b.build()
}

/// The Petersen graph (10 vertices, 15 edges, 3-regular, non-bipartite).
#[must_use]
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5); // outer pentagon
        b.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        b.add_edge(i, 5 + i); // spokes
    }
    b.build()
}

/// The ladder graph `L_n`: two paths of length `n` joined by rungs
/// (`2n` vertices, `3n - 2` edges).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ladder(n: usize) -> Graph {
    assert!(n >= 1, "a ladder needs at least one rung");
    let mut b = GraphBuilder::new(2 * n);
    for i in 0..n {
        b.add_edge(i, n + i); // rung
        if i + 1 < n {
            b.add_edge(i, i + 1);
            b.add_edge(n + i, n + i + 1);
        }
    }
    b.build()
}

/// The circulant graph `C_n(offsets)`: vertex `i` is adjacent to
/// `i ± o (mod n)` for every offset `o`. With distinct offsets
/// `0 < o < n/2` the result is `2·|offsets|`-regular.
///
/// # Panics
///
/// Panics if any offset is `0` or `≥ n`, or if `n == 0`.
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n > 0, "circulant needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for &o in offsets {
        assert!(o > 0 && o < n, "offset {o} out of range 1..{n}");
        for i in 0..n {
            b.add_edge(i, (i + o) % n);
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer
/// sequence), so `n - 1` edges and always connected.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "a tree needs at least one vertex");
    if n == 1 {
        return GraphBuilder::new(1).build();
    }
    if n == 2 {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        return b.build();
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        // lint: allow(panic) Prüfer invariant: n - 2 symbols over n vertices leave a leaf at every step
        let std::cmp::Reverse(leaf) = leaves.pop().expect("Prüfer decoding always has a leaf");
        b.add_edge(leaf, p);
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(std::cmp::Reverse(p));
        }
    }
    // lint: allow(panic) Prüfer invariant: exactly two leaves remain after the main loop
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    // lint: allow(panic) Prüfer invariant: exactly two leaves remain after the main loop
    let std::cmp::Reverse(c) = leaves.pop().expect("two leaves remain");
    b.add_edge(a, c);
    b.build()
}

/// The Erdős–Rényi random graph `G(n, p)`: each of the `C(n, 2)` possible
/// edges is present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// A connected `G(n, p)` variant: a uniformly random spanning tree is laid
/// down first, then each remaining pair is added with probability `p`.
///
/// Guarantees connectivity (hence no isolated vertices) for any `p`,
/// which makes it game-ready for the Tuple model.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
#[must_use]
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
    let tree = random_tree(n, rng);
    let mut b = GraphBuilder::new(n);
    for e in tree.edges() {
        let ep = tree.endpoints(e);
        b.add_edge(ep.u().index(), ep.v().index());
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !b.has_edge(i, j) && rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// A random bipartite graph with sides of size `a` (vertices `0..a`) and
/// `b` (vertices `a..a+b`); each cross pair appears with probability `p`.
/// Every vertex is then guaranteed one incident edge (a random partner),
/// so the result is game-ready.
///
/// # Panics
///
/// Panics if `a == 0`, `b == 0`, or `p` is not in `[0, 1]`.
#[must_use]
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        a > 0 && b > 0,
        "both sides must be non-empty (got {a}, {b})"
    );
    assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            if rng.gen_bool(p) {
                builder.add_edge(i, a + j);
            }
        }
    }
    // Patch isolated vertices with a uniformly random partner across the cut.
    let g = builder.build();
    let mut builder = GraphBuilder::new(a + b);
    for e in g.edges() {
        let ep = g.endpoints(e);
        builder.add_edge(ep.u().index(), ep.v().index());
    }
    for i in 0..a {
        if g.degree(crate::VertexId::new(i)) == 0 {
            builder.add_edge(i, a + rng.gen_range(0..b));
        }
    }
    for j in 0..b {
        if g.degree(crate::VertexId::new(a + j)) == 0 {
            builder.add_edge(rng.gen_range(0..a), a + j);
        }
    }
    builder.build()
}

/// A random maximal-matching-friendly `d`-regular-ish graph via the
/// configuration model with rejection of loops/multi-edges. The result has
/// every degree equal to `d` when pairing succeeds; after
/// `max_attempts` failed pairings the last partial (simple) result is
/// returned, which may have a few vertices of degree `< d`.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
#[must_use]
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(n * d % 2 == 0, "n·d must be even (got n = {n}, d = {d})");
    assert!(d < n, "degree {d} must be below vertex count {n}");
    let max_attempts = 200;
    let mut best = GraphBuilder::new(n).build();
    for _ in 0..max_attempts {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
        rng.shuffle(&mut stubs);
        let mut b = GraphBuilder::new(n);
        let mut ok = true;
        for pair in stubs.chunks_exact(2) {
            let (x, y) = (pair[0], pair[1]);
            if x == y || b.has_edge(x, y) {
                ok = false;
                break;
            }
            b.add_edge(x, y);
        }
        let g = b.build();
        if ok {
            return g;
        }
        if g.edge_count() > best.edge_count() {
            best = g;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use defender_num::rng::StdRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!((g.vertex_count(), g.edge_count()), (5, 4));
        assert_eq!(properties::degree_sequence(&g), vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!((g.vertex_count(), g.edge_count()), (6, 6));
        assert_eq!(properties::regularity(&g), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = star(4);
        assert_eq!((g.vertex_count(), g.edge_count()), (5, 4));
        assert_eq!(g.degree(crate::VertexId::new(0)), 4);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        assert_eq!((g.vertex_count(), g.edge_count()), (6, 10));
        assert_eq!(g.degree(crate::VertexId::new(0)), 5);
        assert!(!properties::is_bipartite(&g));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(properties::regularity(&g), Some(4));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!((g.vertex_count(), g.edge_count()), (7, 12));
        assert!(properties::is_bipartite(&g));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // 17
        assert!(properties::is_bipartite(&g));
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!((g.vertex_count(), g.edge_count()), (8, 12));
        assert_eq!(properties::regularity(&g), Some(3));
        assert!(properties::is_bipartite(&g));
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!((g.vertex_count(), g.edge_count()), (10, 15));
        assert_eq!(properties::regularity(&g), Some(3));
        assert!(!properties::is_bipartite(&g));
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(4);
        assert_eq!((g.vertex_count(), g.edge_count()), (8, 10));
        assert!(properties::is_bipartite(&g));
    }

    #[test]
    fn circulant_shape() {
        let g = circulant(8, &[1, 2]);
        assert_eq!(properties::regularity(&g), Some(4));
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 50] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.vertex_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(
                properties::is_connected(&g),
                "trees are connected (n = {n})"
            );
            assert!(
                properties::is_bipartite(&g),
                "trees are bipartite (n = {n})"
            );
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let g = gnp_connected(30, 0.02, &mut rng);
            assert!(properties::is_connected(&g));
            assert!(!g.has_isolated_vertex());
        }
    }

    #[test]
    fn random_bipartite_game_ready() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = random_bipartite(6, 9, 0.1, &mut rng);
            assert!(properties::is_bipartite(&g));
            assert!(!g.has_isolated_vertex());
        }
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_regular(12, 3, &mut rng);
        // Pairing nearly always succeeds at this size; accept the fallback
        // but check it stayed simple and close to regular.
        assert!(g.max_degree() <= 3);
        assert!(g.edge_count() <= 18);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = gnp(20, 0.3, &mut StdRng::seed_from_u64(9));
        let g2 = gnp(20, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
