//! Undirected-graph substrate for the Tuple model.
//!
//! The paper plays the game on an undirected graph `G(V, E)` with no
//! isolated vertices. Everything the equilibrium theory consumes lives
//! here:
//!
//! - a compact, immutable [`Graph`] representation with id newtypes
//!   ([`VertexId`], [`EdgeId`]) and a [`GraphBuilder`];
//! - deterministic and seeded-random [`generators`];
//! - [`traversal`] (BFS/DFS), connectivity and [`properties`]
//!   (bipartition extraction, degree statistics);
//! - the covering/packing notions of §2.1 of the paper: independent sets
//!   ([`independent_set`]), vertex covers ([`vertex_cover`]), edge covers
//!   ([`edge_cover`]) and `VC`-expander checks ([`expander`]);
//! - [`subgraph`] extraction ("the graph obtained by an edge set") and
//!   [`dot`] export for debugging.
//!
//! # Examples
//!
//! ```
//! use defender_graph::{generators, VertexId};
//!
//! let g = generators::cycle(4);
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(VertexId::new(0)), 2);
//! assert!(defender_graph::properties::is_connected(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bitset;
mod builder;
mod error;
mod graph;

pub mod canonical;
pub mod dot;
pub mod edge_cover;
pub mod expander;
pub mod generators;
pub mod graph6;
pub mod independent_set;
pub mod ops;
pub mod properties;
pub mod subgraph;
pub mod traversal;
pub mod vertex_cover;

pub use bitset::AdjacencyBits;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, Endpoints, Graph, VertexId};

/// A set of vertices, kept sorted and deduplicated.
///
/// Used throughout for supports, covers and independent sets; the sorted
/// representation makes membership tests `O(log n)` and equality structural.
pub type VertexSet = Vec<VertexId>;

/// A set of edges, kept sorted and deduplicated.
pub type EdgeSet = Vec<EdgeId>;
