//! Canonical forms: an isomorphism-invariant labeling, key, and hash.
//!
//! `Π_k(G)` depends on `G` only up to isomorphism, so a solver that
//! memoizes equilibria (see `defender-cache`) needs a *canonical form*:
//! a relabeling of the vertices that every graph isomorphic to `G` maps
//! to identically. Two graphs then share a cache entry exactly when
//! their canonical edge lists (equivalently, their canonical graph6
//! strings) are equal.
//!
//! The algorithm is classic individualization–refinement, exact at every
//! size (the search is complete — no hash-based shortcuts):
//!
//! 1. **Iterative color refinement** (1-dimensional Weisfeiler–Leman):
//!    vertices are repeatedly re-colored by the multiset of their
//!    neighbors' colors until the partition stabilizes. Color ids are
//!    assigned in sorted-signature order, so the refined partition is a
//!    pure function of the isomorphism class.
//! 2. **Individualization fallback**: when refinement stalls on a
//!    non-discrete partition (regular and vertex-transitive graphs), the
//!    search branches on every vertex of the first non-singleton color
//!    class, individualizes it, re-refines, and recurses; the canonical
//!    labeling is the discrete leaf whose relabeled edge list is
//!    lexicographically smallest. A twin prune (vertices of one class
//!    with identical neighborhoods are swappable by an automorphism, so
//!    only one is branched) keeps complete and complete-bipartite
//!    graphs linear instead of factorial.
//!
//! Everything is `Vec`/sort based — no `HashMap`, no iteration-order
//! dependence — so the determinism lint holds and the canonical form is
//! bit-stable across platforms. The differential tests pin the search
//! against brute-force minimization over all `n!` permutations on an
//! ≤8-vertex corpus, and against random relabelings of every generator
//! family.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// The canonical labeling of a graph: a vertex permutation, the edge
/// list it induces, and an isomorphism-invariant hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    vertex_count: usize,
    /// `relabel[v]` is the canonical label of original vertex `v`.
    relabel: Vec<usize>,
    /// Canonically relabeled edges, each `(lo, hi)`, sorted.
    edges: Vec<(usize, usize)>,
    hash: u64,
}

impl CanonicalForm {
    /// Number of vertices (shared by the original and canonical graphs).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// The canonical label of each original vertex: `relabel()[v]` is
    /// where vertex `v` lands in the canonical graph.
    #[must_use]
    pub fn relabel(&self) -> &[usize] {
        &self.relabel
    }

    /// The inverse permutation: `inverse()[c]` is the original vertex
    /// carrying canonical label `c`. This is the map a cache hit uses to
    /// pull a memoized equilibrium back onto the query labeling.
    #[must_use]
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0; self.relabel.len()];
        for (v, &c) in self.relabel.iter().enumerate() {
            inv[c] = v;
        }
        inv
    }

    /// The canonical edge list: relabeled endpoints, each `(lo, hi)`,
    /// sorted lexicographically. Equal across a whole isomorphism class.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Materializes the canonical graph. Isomorphic inputs build
    /// byte-identical graphs (same adjacency, same edge ids).
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.vertex_count);
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The canonical key: the graph6 encoding of the canonical graph.
    /// The codec is strict and bijective, so key equality is exactly
    /// isomorphism of the underlying graphs. Encodes straight from the
    /// canonical edge list — no [`Graph`] is built, so computing a key
    /// never ticks the `graph.build.*` counters.
    #[must_use]
    pub fn key(&self) -> String {
        crate::graph6::encode_edge_list(self.vertex_count, &self.edges)
    }

    /// FNV-1a hash over the canonical form — equal for isomorphic
    /// graphs, and cheap to compare before the full key.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// The minimal discrete leaf found so far: `(canonical edges, relabeling)`.
type BestLeaf = Option<(Vec<(usize, usize)>, Vec<usize>)>;

/// Computes the canonical form of `g` by individualization–refinement.
///
/// Exact at every size; worst-case exponential in pathological strongly
/// regular graphs, but linear-ish on the workspace's generator families
/// (the twin prune collapses complete/star/bipartite blowups, and
/// refinement after one individualization splits paths, cycles, grids,
/// hypercubes, and Petersen almost to discreteness).
#[must_use]
pub fn canonical_form(g: &Graph) -> CanonicalForm {
    let n = g.vertex_count();
    let adj = adjacency_lists(g);
    let mut best: BestLeaf = None;
    search(&adj, vec![0; n], &mut best);
    let (edges, relabel) = best.unwrap_or((Vec::new(), Vec::new()));
    let hash = fnv1a(n, &edges);
    CanonicalForm {
        vertex_count: n,
        relabel,
        edges,
        hash,
    }
}

/// Brute-force canonicalization: the lexicographically smallest relabeled
/// edge list over *all* `n!` vertex permutations. Exponential — the
/// differential oracle the search is pinned against in tests.
///
/// # Panics
///
/// Panics when `g` has more than 8 vertices (40320 permutations is the
/// intended ceiling for an oracle).
#[must_use]
pub fn brute_force_canonical_edges(g: &Graph) -> Vec<(usize, usize)> {
    let n = g.vertex_count();
    assert!(
        n <= 8,
        "brute-force canonicalization is capped at 8 vertices"
    );
    let raw: Vec<(usize, usize)> = g
        .edges()
        .map(|e| {
            let ep = g.endpoints(e);
            (ep.u().index(), ep.v().index())
        })
        .collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<Vec<(usize, usize)>> = None;
    permute(&mut perm, 0, &mut |p| {
        let edges = relabeled_edges(&raw, p);
        if best.as_ref().map_or(true, |b| edges < *b) {
            best = Some(edges);
        }
    });
    best.unwrap_or_default()
}

/// Sorted adjacency lists indexed by vertex.
fn adjacency_lists(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut adj = vec![Vec::new(); n];
    for e in g.edges() {
        let ep = g.endpoints(e);
        adj[ep.u().index()].push(ep.v().index());
        adj[ep.v().index()].push(ep.u().index());
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    adj
}

/// Applies `relabel` to `raw` edges and returns them normalized
/// (`(lo, hi)` each, sorted) for lexicographic comparison.
fn relabeled_edges(raw: &[(usize, usize)], relabel: &[usize]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = raw
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (relabel[u], relabel[v]);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    edges
}

/// Refines `colors` to the coarsest stable partition respecting
/// neighbor-color multisets. Color ids come out dense (`0..k`) in
/// sorted-signature order, which makes the loop's fixed-point test a
/// plain vector equality and the whole procedure isomorphism-invariant.
fn refine(adj: &[Vec<usize>], colors: &mut Vec<usize>) {
    let n = adj.len();
    loop {
        let mut sigs: Vec<(usize, Vec<usize>, usize)> = (0..n)
            .map(|v| {
                let mut nc: Vec<usize> = adj[v].iter().map(|&u| colors[u]).collect();
                nc.sort_unstable();
                (colors[v], nc, v)
            })
            .collect();
        sigs.sort();
        let mut next_colors = vec![0; n];
        let mut next = 0;
        for i in 0..n {
            if i > 0 && (sigs[i].0, &sigs[i].1) != (sigs[i - 1].0, &sigs[i - 1].1) {
                next += 1;
            }
            next_colors[sigs[i].2] = next;
        }
        if next_colors == *colors {
            return;
        }
        *colors = next_colors;
    }
}

/// Whether `u` and `v` (same refinement class) are twins: identical
/// neighborhoods once each other is excluded. The transposition
/// `(u v)` is then a color-preserving automorphism, so branching on
/// both cannot improve the canonical leaf — the prune that keeps
/// cliques and bicliques out of factorial territory.
fn twins(adj: &[Vec<usize>], u: usize, v: usize) -> bool {
    let nu = adj[u].iter().copied().filter(|&w| w != v);
    let nv = adj[v].iter().copied().filter(|&w| w != u);
    nu.eq(nv)
}

/// The complete individualization–refinement search. `colors` is the
/// current (possibly individualized) coloring; `best` accumulates the
/// minimal discrete leaf as `(canonical edges, relabeling)`.
fn search(adj: &[Vec<usize>], mut colors: Vec<usize>, best: &mut BestLeaf) {
    let n = adj.len();
    refine(adj, &mut colors);
    let color_count = colors.iter().max().map_or(0, |&c| c + 1);
    if color_count == n {
        // Discrete: the coloring *is* the relabeling (dense ids).
        let raw: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| {
                adj[u]
                    .iter()
                    .copied()
                    .filter(move |&v| u < v)
                    .map(move |v| (u, v))
            })
            .collect();
        let edges = relabeled_edges(&raw, &colors);
        if best.as_ref().map_or(true, |(b, _)| edges < *b) {
            *best = Some((edges, colors));
        }
        return;
    }
    // First non-singleton class (smallest color id — isomorphism-invariant).
    let target = (0..color_count)
        .find(|&c| colors.iter().filter(|&&x| x == c).count() >= 2)
        .unwrap_or(0);
    let cell: Vec<usize> = (0..n).filter(|&v| colors[v] == target).collect();
    let mut branched: Vec<usize> = Vec::new();
    for &v in &cell {
        if branched.iter().any(|&u| twins(adj, u, v)) {
            continue;
        }
        branched.push(v);
        let mut child = colors.clone();
        child[v] = color_count; // individualize: fresh unique color
        search(adj, child, best);
    }
}

/// Heap's algorithm over `perm[at..]`, invoking `visit` on every full
/// permutation.
fn permute(perm: &mut Vec<usize>, at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == perm.len() {
        visit(perm);
        return;
    }
    for i in at..perm.len() {
        perm.swap(at, i);
        permute(perm, at + 1, visit);
        perm.swap(at, i);
    }
}

/// FNV-1a over the vertex count and canonical edge endpoints.
fn fnv1a(n: usize, edges: &[(usize, usize)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(n as u64);
    for &(u, v) in edges {
        mix(u as u64);
        mix(v as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use defender_num::rng::{Rng, StdRng};

    /// Relabels `g` by a uniformly random permutation drawn from `rng`.
    fn shuffled(g: &Graph, rng: &mut StdRng) -> Graph {
        let n = g.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let mut edges: Vec<(usize, usize)> = g
            .edges()
            .map(|e| {
                let ep = g.endpoints(e);
                (perm[ep.u().index()], perm[ep.v().index()])
            })
            .collect();
        // Shuffle edge insertion order too: canonical form must not
        // depend on edge ids.
        rng.shuffle(&mut edges);
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The canonical relabeling really is a permutation mapping `g`'s
    /// edges onto the canonical edge list.
    fn assert_valid_labeling(g: &Graph, form: &CanonicalForm) {
        let n = g.vertex_count();
        let mut seen = vec![false; n];
        for &c in form.relabel() {
            assert!(c < n && !seen[c], "relabel is a permutation");
            seen[c] = true;
        }
        let raw: Vec<(usize, usize)> = g
            .edges()
            .map(|e| {
                let ep = g.endpoints(e);
                (ep.u().index(), ep.v().index())
            })
            .collect();
        assert_eq!(
            relabeled_edges(&raw, form.relabel()),
            form.edges(),
            "relabel carries the original edges onto the canonical list"
        );
    }

    #[test]
    fn matches_brute_force_on_small_corpus() {
        // Every graph the oracle can afford: named families ≤ 8 vertices
        // plus random gnp graphs. The search's canonical form and the
        // n!-permutation oracle are different representatives of the same
        // isomorphism class, so the differential pin is class structure:
        // over the corpus **and** random relabelings of it, the two must
        // induce exactly the same partition into isomorphism classes —
        // equal search keys ⟺ equal brute-force minima.
        let mut corpus: Vec<Graph> = vec![
            generators::path(2),
            generators::path(5),
            generators::path(8),
            generators::cycle(3),
            generators::cycle(6),
            generators::cycle(8),
            generators::star(7),
            generators::wheel(6),
            generators::complete(4),
            generators::complete(7),
            generators::complete_bipartite(2, 4),
            generators::complete_bipartite(3, 3),
            generators::grid(2, 4),
            generators::hypercube(3),
            generators::ladder(4),
        ];
        let mut rng = StdRng::seed_from_u64(0xCA_0BEF);
        for n in 4..=8 {
            for _ in 0..6 {
                corpus.push(generators::gnp(n, 0.5, &mut rng));
            }
        }
        // Random relabelings join the corpus so the pin also covers
        // isomorphic-but-differently-labeled pairs.
        for i in 0..corpus.len() {
            let h = shuffled(&corpus[i], &mut rng);
            corpus.push(h);
        }
        type EdgeList = Vec<(usize, usize)>;
        let forms: Vec<(EdgeList, EdgeList)> = corpus
            .iter()
            .map(|g| {
                let form = canonical_form(g);
                assert_valid_labeling(g, &form);
                (form.edges().to_vec(), brute_force_canonical_edges(g))
            })
            .collect();
        for (i, (search_i, brute_i)) in forms.iter().enumerate() {
            for (j, (search_j, brute_j)) in forms.iter().enumerate().skip(i + 1) {
                let same_n = corpus[i].vertex_count() == corpus[j].vertex_count();
                assert_eq!(
                    same_n && search_i == search_j,
                    same_n && brute_i == brute_j,
                    "graphs {i} and {j}: search and oracle must agree on isomorphism"
                );
            }
        }
    }

    #[test]
    fn invariant_under_random_relabelings_of_every_family() {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let families: Vec<(&str, Graph)> = vec![
            ("path", generators::path(9)),
            ("cycle", generators::cycle(11)),
            ("star", generators::star(9)),
            ("wheel", generators::wheel(8)),
            ("complete", generators::complete(9)),
            ("complete_bipartite", generators::complete_bipartite(3, 5)),
            ("grid", generators::grid(3, 4)),
            ("hypercube", generators::hypercube(4)),
            ("petersen", generators::petersen()),
            ("ladder", generators::ladder(5)),
            ("circulant", generators::circulant(10, &[1, 3])),
            ("random_tree", generators::random_tree(10, &mut rng)),
            ("gnp_connected", generators::gnp_connected(9, 0.4, &mut rng)),
            (
                "random_bipartite",
                generators::random_bipartite(4, 5, 0.6, &mut rng),
            ),
            (
                "random_regular",
                generators::random_regular(10, 3, &mut rng),
            ),
        ];
        for (name, g) in &families {
            let reference = canonical_form(g);
            assert_valid_labeling(g, &reference);
            for _ in 0..5 {
                let h = shuffled(g, &mut rng);
                let form = canonical_form(&h);
                assert_valid_labeling(&h, &form);
                assert_eq!(
                    form.edges(),
                    reference.edges(),
                    "{name}: canonical edges must survive relabeling"
                );
                assert_eq!(form.key(), reference.key(), "{name}: canonical key");
                assert_eq!(form.hash(), reference.hash(), "{name}: canonical hash");
            }
        }
    }

    #[test]
    fn distinguishes_non_isomorphic_graphs() {
        // Same degree sequence, different graphs: C6 vs two triangles is
        // not constructible here (disconnected), so use C6 vs the prism
        // complement trick: C6 and K_{3,3} minus a perfect matching are
        // both 2-regular on 6 vertices — the latter IS C6, so instead
        // compare graphs where refinement alone cannot tell: C6 vs
        // 2×C3 needs disconnection; use C5 vs P5 and K4 vs K4 minus an
        // edge as basic sanity, plus the classic refinement-hard pair
        // C6 vs C3+C3 via a builder.
        let c5 = canonical_form(&generators::cycle(5));
        let p5 = canonical_form(&generators::path(5));
        assert_ne!(c5.edges(), p5.edges());
        assert_ne!(c5.key(), p5.key());

        let k4 = canonical_form(&generators::complete(4));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(1, 2)
            .add_edge(1, 3);
        let k4_minus = canonical_form(&b.build());
        assert_ne!(k4.edges(), k4_minus.edges());

        // Disconnected 2-regular on 6 vertices vs C6: identical degree
        // sequences, distinguishable only by structure.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        let two_triangles = canonical_form(&b.build());
        let c6 = canonical_form(&generators::cycle(6));
        assert_ne!(two_triangles.edges(), c6.edges());
        assert_ne!(two_triangles.hash(), c6.hash());
    }

    #[test]
    fn inverse_round_trips_the_relabeling() {
        let g = generators::petersen();
        let form = canonical_form(&g);
        let inv = form.inverse();
        for v in 0..g.vertex_count() {
            assert_eq!(inv[form.relabel()[v]], v);
        }
    }

    #[test]
    fn key_is_the_graph6_of_the_canonical_graph() {
        let g = generators::complete(4);
        let form = canonical_form(&g);
        // K4 is unique up to isomorphism; its graph6 form is "C~".
        assert_eq!(form.key(), "C~");
        let round = crate::graph6::from_graph6(&form.key()).unwrap();
        assert_eq!(round.vertex_count(), 4);
        assert_eq!(round.edge_count(), 6);
    }

    #[test]
    fn empty_and_single_vertex_graphs_are_total() {
        let empty = canonical_form(&GraphBuilder::new(0).build());
        assert_eq!(empty.vertex_count(), 0);
        assert!(empty.edges().is_empty());
        let one = canonical_form(&GraphBuilder::new(1).build());
        assert_eq!(one.relabel(), &[0]);
    }
}
