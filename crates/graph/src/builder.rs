//! Incremental construction of [`Graph`] values.

use std::collections::BTreeSet;

use crate::graph::{Endpoints, Graph, VertexId};

/// Builder for [`Graph`].
///
/// Collects edges, rejecting self-loops and silently deduplicating parallel
/// edges (the Tuple model is defined on simple graphs). Vertices are fixed
/// up front; [`GraphBuilder::add_vertex`] grows the vertex set when the
/// final count is not known in advance.
///
/// # Examples
///
/// ```
/// use defender_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
/// b.add_edge(1, 2); // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    vertex_count: usize,
    edges: BTreeSet<Endpoints>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `vertex_count` vertices and no
    /// edges yet.
    #[must_use]
    pub fn new(vertex_count: usize) -> GraphBuilder {
        GraphBuilder {
            vertex_count,
            edges: BTreeSet::new(),
        }
    }

    /// Adds a new vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.vertex_count);
        self.vertex_count += 1;
        id
    }

    /// Number of vertices currently declared.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of distinct edges currently added.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{a, b}` by raw indices.
    ///
    /// Duplicate edges are ignored, so the result is always simple.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> &mut GraphBuilder {
        assert!(
            a != b,
            "self-loop ({a}, {a}) is not allowed in a simple graph"
        );
        assert!(
            a < self.vertex_count && b < self.vertex_count,
            "edge ({a}, {b}) has an endpoint outside 0..{}",
            self.vertex_count
        );
        self.edges
            .insert(Endpoints::new(VertexId::new(a), VertexId::new(b)));
        self
    }

    /// Adds the undirected edge `{a, b}` by vertex ids.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GraphBuilder::add_edge`].
    pub fn add_edge_ids(&mut self, a: VertexId, b: VertexId) -> &mut GraphBuilder {
        self.add_edge(a.index(), b.index())
    }

    /// Whether the edge `{a, b}` has already been added.
    #[must_use]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges
            .contains(&Endpoints::new(VertexId::new(a), VertexId::new(b)))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Edge ids are assigned in sorted endpoint order, so identical edge
    /// sets always produce identical graphs regardless of insertion order.
    #[must_use]
    pub fn build(&self) -> Graph {
        defender_obs::counter!("graph.build.vertices").add(self.vertex_count as u64);
        defender_obs::counter!("graph.build.edges").add(self.edges.len() as u64);
        Graph::from_parts(self.vertex_count, self.edges.iter().copied().collect())
    }
}

impl FromIterator<(usize, usize)> for GraphBuilder {
    /// Builds from an edge list; the vertex count is one past the largest
    /// endpoint mentioned.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> GraphBuilder {
        let pairs: Vec<(usize, usize)> = iter.into_iter().collect();
        let n = pairs.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0);
        let mut b = GraphBuilder::new(n);
        for (x, y) in pairs {
            b.add_edge(x, y);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        assert_eq!(b.edge_count(), 1);
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 5);
    }

    #[test]
    fn add_vertex_grows() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_vertex();
        let c = b.add_vertex();
        b.add_edge_ids(a, c);
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn insertion_order_irrelevant() {
        let mut b1 = GraphBuilder::new(3);
        b1.add_edge(0, 1).add_edge(1, 2);
        let mut b2 = GraphBuilder::new(3);
        b2.add_edge(1, 2).add_edge(0, 1);
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn from_edge_list() {
        let b: GraphBuilder = vec![(0, 1), (2, 4)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn has_edge_query() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2);
        assert!(b.has_edge(2, 0));
        assert!(!b.has_edge(0, 1));
    }
}
