//! Vertex covers: predicates, 2-approximation, exact minimum for small
//! graphs.
//!
//! Condition 1 of Theorem 3.4 requires the vertex players' support to be a
//! vertex cover of the subgraph spanned by the defender's support edges;
//! Theorem 2.2 partitions `V` into an independent set and its complementary
//! vertex cover.

use crate::{Graph, VertexId, VertexSet};

/// Whether `cover` is a vertex cover of `graph`: every edge has at least
/// one endpoint in `cover`. `cover` need not be sorted.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, vertex_cover, VertexId};
///
/// let g = generators::path(3);
/// assert!(vertex_cover::is_vertex_cover(&g, &[VertexId::new(1)]));
/// assert!(!vertex_cover::is_vertex_cover(&g, &[VertexId::new(0)]));
/// ```
#[must_use]
pub fn is_vertex_cover(graph: &Graph, cover: &[VertexId]) -> bool {
    let mut member = vec![false; graph.vertex_count()];
    for &v in cover {
        member[v.index()] = true;
    }
    graph.edges().all(|e| {
        let ep = graph.endpoints(e);
        member[ep.u().index()] || member[ep.v().index()]
    })
}

/// Whether `cover` covers only — and all of — the edges in `edges`
/// (the "vertex cover of the graph obtained by an edge set" of Thm 3.4).
#[must_use]
pub fn covers_edges(graph: &Graph, cover: &[VertexId], edges: &[crate::EdgeId]) -> bool {
    let mut member = vec![false; graph.vertex_count()];
    for &v in cover {
        member[v.index()] = true;
    }
    edges.iter().all(|&e| {
        let ep = graph.endpoints(e);
        member[ep.u().index()] || member[ep.v().index()]
    })
}

/// The classic maximal-matching 2-approximation: repeatedly pick an
/// uncovered edge and take both endpoints. Sorted output.
#[must_use]
pub fn two_approximation(graph: &Graph) -> VertexSet {
    let mut covered = vec![false; graph.vertex_count()];
    let mut out = Vec::new();
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        if !covered[ep.u().index()] && !covered[ep.v().index()] {
            covered[ep.u().index()] = true;
            covered[ep.v().index()] = true;
            out.push(ep.u());
            out.push(ep.v());
        }
    }
    out.sort_unstable();
    out
}

/// Exact minimum vertex cover as the complement of an exact maximum
/// independent set.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
#[must_use]
pub fn minimum_exact(graph: &Graph) -> VertexSet {
    let is = crate::independent_set::maximum_exact(graph);
    complement(graph, &is)
}

/// The vertex-cover number `τ(G)` for small graphs (`n ≤ 64`).
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
#[must_use]
pub fn cover_number_exact(graph: &Graph) -> usize {
    graph.vertex_count() - crate::independent_set::independence_number_exact(graph)
}

/// The complement `V \ set`, sorted.
#[must_use]
pub fn complement(graph: &Graph, set: &[VertexId]) -> VertexSet {
    let mut member = vec![false; graph.vertex_count()];
    for &v in set {
        member[v.index()] = true;
    }
    graph.vertices().filter(|v| !member[v.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, independent_set};

    #[test]
    fn predicate_basics() {
        let g = generators::cycle(4);
        assert!(is_vertex_cover(&g, &[VertexId::new(0), VertexId::new(2)]));
        assert!(!is_vertex_cover(&g, &[VertexId::new(0)]));
        let edgeless = crate::GraphBuilder::new(3).build();
        assert!(is_vertex_cover(&edgeless, &[]));
    }

    #[test]
    fn covers_edges_subset() {
        let g = generators::path(4); // edges (0,1), (1,2), (2,3)
        let e01 = g.find_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        let e23 = g.find_edge(VertexId::new(2), VertexId::new(3)).unwrap();
        assert!(covers_edges(
            &g,
            &[VertexId::new(0), VertexId::new(3)],
            &[e01, e23]
        ));
        assert!(!is_vertex_cover(&g, &[VertexId::new(0), VertexId::new(3)]));
    }

    #[test]
    fn two_approx_is_cover_within_factor() {
        for g in [
            generators::petersen(),
            generators::grid(3, 4),
            generators::complete(6),
        ] {
            let approx = two_approximation(&g);
            assert!(is_vertex_cover(&g, &approx));
            let exact = cover_number_exact(&g);
            assert!(approx.len() <= 2 * exact, "{} > 2·{exact}", approx.len());
        }
    }

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(cover_number_exact(&generators::complete(5)), 4);
        assert_eq!(cover_number_exact(&generators::cycle(5)), 3);
        assert_eq!(cover_number_exact(&generators::star(6)), 1);
        assert_eq!(cover_number_exact(&generators::petersen()), 6);
    }

    #[test]
    fn exact_cover_is_cover_and_complement_independent() {
        let g = generators::grid(3, 3);
        let vc = minimum_exact(&g);
        assert!(is_vertex_cover(&g, &vc));
        let is = complement(&g, &vc);
        assert!(independent_set::is_independent_set(&g, &is));
        assert_eq!(vc.len() + is.len(), g.vertex_count());
    }

    #[test]
    fn complement_round_trip() {
        let g = generators::path(5);
        let set = vec![VertexId::new(1), VertexId::new(3)];
        assert_eq!(complement(&g, &complement(&g, &set)), set);
    }
}
