//! Independent sets: predicates, greedy construction, exact maximum for
//! small graphs.
//!
//! In the Tuple model the support of the vertex players in a (k-)matching
//! Nash equilibrium is an independent set (condition (1) of Definitions 2.2
//! and 4.1).

use crate::{Graph, VertexId, VertexSet};

/// Whether `set` is an independent set of `graph`: no two members adjacent.
///
/// `set` need not be sorted.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, independent_set, VertexId};
///
/// let g = generators::path(4);
/// let ends = vec![VertexId::new(0), VertexId::new(2)];
/// assert!(independent_set::is_independent_set(&g, &ends));
/// ```
#[must_use]
pub fn is_independent_set(graph: &Graph, set: &[VertexId]) -> bool {
    let mut member = vec![false; graph.vertex_count()];
    for &v in set {
        member[v.index()] = true;
    }
    for &v in set {
        if graph.neighbors(v).any(|w| member[w.index()]) {
            return false;
        }
    }
    true
}

/// Greedy maximal independent set: repeatedly pick the lowest-id vertex not
/// yet excluded, exclude its neighbors. Deterministic; sorted output.
///
/// The result is *maximal* (cannot be extended) but generally not *maximum*.
#[must_use]
pub fn greedy_maximal(graph: &Graph) -> VertexSet {
    let mut excluded = vec![false; graph.vertex_count()];
    let mut out = Vec::new();
    for v in graph.vertices() {
        if excluded[v.index()] {
            continue;
        }
        out.push(v);
        excluded[v.index()] = true;
        for w in graph.neighbors(v) {
            excluded[w.index()] = true;
        }
    }
    out
}

/// Greedy maximal independent set with a minimum-degree heuristic: at each
/// step pick a not-yet-excluded vertex of smallest remaining degree. Tends
/// to produce larger sets than [`greedy_maximal`].
#[must_use]
pub fn greedy_min_degree(graph: &Graph) -> VertexSet {
    let n = graph.vertex_count();
    let mut excluded = vec![false; n];
    let mut remaining_degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let mut out = Vec::new();
    loop {
        let pick = graph
            .vertices()
            .filter(|v| !excluded[v.index()])
            .min_by_key(|v| remaining_degree[v.index()]);
        let Some(v) = pick else { break };
        out.push(v);
        excluded[v.index()] = true;
        for w in graph.neighbors(v) {
            if !excluded[w.index()] {
                excluded[w.index()] = true;
                for x in graph.neighbors(w) {
                    remaining_degree[x.index()] = remaining_degree[x.index()].saturating_sub(1);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Exact maximum independent set by branch and bound.
///
/// Intended for cross-validation on small instances.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices (use the greedy variants
/// or the bipartite König route for larger instances).
#[must_use]
pub fn maximum_exact(graph: &Graph) -> VertexSet {
    let n = graph.vertex_count();
    assert!(
        n <= 64,
        "exact maximum independent set is limited to 64 vertices, got {n}"
    );
    if n == 0 {
        return Vec::new();
    }
    let masks: Vec<u64> = graph
        .vertices()
        .map(|v| {
            graph
                .neighbors(v)
                .fold(0u64, |acc, w| acc | (1u64 << w.index()))
        })
        .collect();

    fn solve(candidates: u64, chosen: u64, best: &mut u64, masks: &[u64]) {
        if candidates == 0 {
            if chosen.count_ones() > best.count_ones() {
                *best = chosen;
            }
            return;
        }
        if chosen.count_ones() + candidates.count_ones() <= best.count_ones() {
            return; // bound
        }
        let v = candidates.trailing_zeros() as usize;
        let bit = 1u64 << v;
        // Branch 1: take v (drop its neighbors from candidates).
        solve(candidates & !bit & !masks[v], chosen | bit, best, masks);
        // Branch 2: skip v.
        solve(candidates & !bit, chosen, best, masks);
    }

    let mut best = 0u64;
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    solve(all, 0, &mut best, &masks);
    (0..n)
        .filter(|&i| best & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect()
}

/// The independence number `α(G)` for small graphs (`n ≤ 64`).
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
#[must_use]
pub fn independence_number_exact(graph: &Graph) -> usize {
    maximum_exact(graph).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn predicate_basics() {
        let g = generators::cycle(5);
        assert!(is_independent_set(&g, &[]));
        assert!(is_independent_set(
            &g,
            &[VertexId::new(0), VertexId::new(2)]
        ));
        assert!(!is_independent_set(
            &g,
            &[VertexId::new(0), VertexId::new(1)]
        ));
    }

    #[test]
    fn greedy_outputs_are_independent_and_maximal() {
        for g in [
            generators::cycle(7),
            generators::petersen(),
            generators::grid(3, 3),
        ] {
            for set in [greedy_maximal(&g), greedy_min_degree(&g)] {
                assert!(is_independent_set(&g, &set));
                // Maximality: every vertex outside has a neighbor inside.
                let mut inside = vec![false; g.vertex_count()];
                for &v in &set {
                    inside[v.index()] = true;
                }
                for v in g.vertices() {
                    if !inside[v.index()] {
                        assert!(
                            g.neighbors(v).any(|w| inside[w.index()]),
                            "{v} could be added"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(independence_number_exact(&generators::complete(5)), 1);
        assert_eq!(independence_number_exact(&generators::cycle(5)), 2);
        assert_eq!(independence_number_exact(&generators::cycle(6)), 3);
        assert_eq!(independence_number_exact(&generators::star(7)), 7);
        assert_eq!(independence_number_exact(&generators::petersen()), 4);
        assert_eq!(
            independence_number_exact(&generators::complete_bipartite(3, 5)),
            5
        );
    }

    #[test]
    fn exact_result_is_independent() {
        let g = generators::grid(3, 4);
        let set = maximum_exact(&g);
        assert!(is_independent_set(&g, &set));
        assert_eq!(set.len(), 6, "grid(3,4) has α = ceil(12/2)");
    }

    #[test]
    fn exact_handles_empty_and_edgeless() {
        let empty = crate::GraphBuilder::new(0).build();
        assert!(maximum_exact(&empty).is_empty());
        let edgeless = crate::GraphBuilder::new(4).build();
        assert_eq!(maximum_exact(&edgeless).len(), 4);
    }

    #[test]
    fn greedy_at_least_half_exact_on_cycles() {
        for n in 3..12 {
            let g = generators::cycle(n);
            let greedy = greedy_min_degree(&g).len();
            let exact = independence_number_exact(&g);
            assert!(
                greedy * 2 >= exact,
                "n = {n}: greedy {greedy} vs exact {exact}"
            );
        }
    }
}
