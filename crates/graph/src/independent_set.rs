//! Independent sets: predicates, greedy construction, exact maximum for
//! small graphs.
//!
//! In the Tuple model the support of the vertex players in a (k-)matching
//! Nash equilibrium is an independent set (condition (1) of Definitions 2.2
//! and 4.1).

use std::collections::BTreeSet;

use crate::bitset::{pack_set, set_contains};
use crate::{Graph, VertexId, VertexSet};

/// Whether `set` is an independent set of `graph`: no two members adjacent.
///
/// `set` need not be sorted. The set is packed into a word bitset; when the
/// graph's adjacency bitmap has already been built (see
/// [`Graph::adjacency_bits`]) each member costs a handful of word-AND
/// tests, otherwise its CSR neighbor list is scanned against the packed
/// set. Hot loops that test many candidate sets on one graph should prefer
/// [`is_independent_set_with_scratch`], which also reuses the packing
/// buffer.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, independent_set, VertexId};
///
/// let g = generators::path(4);
/// let ends = vec![VertexId::new(0), VertexId::new(2)];
/// assert!(independent_set::is_independent_set(&g, &ends));
/// ```
#[must_use]
pub fn is_independent_set(graph: &Graph, set: &[VertexId]) -> bool {
    let mut scratch = Vec::new();
    independent_against_packed(graph, set, &mut scratch)
}

/// [`is_independent_set`] for hot loops: forces the adjacency bitmap
/// (within the [`Graph::BITSET_MAX_VERTICES`] gate) and reuses `scratch`
/// as the packed-set buffer, so repeated candidate tests on one graph are
/// allocation-free word arithmetic.
#[must_use]
pub fn is_independent_set_with_scratch(
    graph: &Graph,
    set: &[VertexId],
    scratch: &mut Vec<u64>,
) -> bool {
    let _ = graph.adjacency_bits();
    independent_against_packed(graph, set, scratch)
}

fn independent_against_packed(graph: &Graph, set: &[VertexId], scratch: &mut Vec<u64>) -> bool {
    pack_set(set, graph.vertex_count().div_ceil(64), scratch);
    if let Some(bits) = graph.built_bits() {
        set.iter().all(|&v| !bits.row_intersects(v, scratch))
    } else {
        set.iter()
            .all(|&v| !graph.neighbors(v).any(|w| set_contains(scratch, w)))
    }
}

/// Greedy maximal independent set: repeatedly pick the lowest-id vertex not
/// yet excluded, exclude its neighbors. Deterministic; sorted output.
///
/// The result is *maximal* (cannot be extended) but generally not *maximum*.
#[must_use]
pub fn greedy_maximal(graph: &Graph) -> VertexSet {
    let mut excluded = vec![false; graph.vertex_count()];
    let mut out = Vec::new();
    for v in graph.vertices() {
        if excluded[v.index()] {
            continue;
        }
        out.push(v);
        excluded[v.index()] = true;
        for w in graph.neighbors(v) {
            excluded[w.index()] = true;
        }
    }
    out
}

/// Greedy maximal independent set with a minimum-degree heuristic: at each
/// step pick a not-yet-excluded vertex of smallest remaining degree
/// (smallest id on ties), exclude its neighbors, and discount the degrees
/// of the neighbors' neighbors. Tends to produce larger sets than
/// [`greedy_maximal`].
///
/// Runs in `O((n + m) log n)` via a degree-bucket queue: active vertices
/// sit in per-degree ordered buckets and a floor pointer tracks the lowest
/// non-empty bucket, replacing the former full `O(n)` min-scan per pick.
/// Output is identical to that scan for every graph.
#[must_use]
pub fn greedy_min_degree(graph: &Graph) -> VertexSet {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut excluded = vec![false; n];
    let mut remaining_degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    // Bucket b holds the active vertices of remaining degree b, ordered by
    // id so `first()` reproduces the smallest-id tie-break of a linear
    // min-scan. Degrees never exceed n - 1.
    let mut buckets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for v in 0..n {
        buckets[remaining_degree[v]].insert(v as u32);
    }
    // Lowest possibly-non-empty bucket: advances by scanning, retreats when
    // a decrement drops a vertex below it.
    let mut floor = 0usize;
    let mut out = Vec::new();
    loop {
        while floor < n && buckets[floor].is_empty() {
            floor += 1;
        }
        if floor == n {
            break;
        }
        let Some(first) = buckets[floor].pop_first() else {
            floor += 1;
            continue;
        };
        let vi = first as usize;
        excluded[vi] = true;
        out.push(VertexId::new(vi));
        for w in graph.neighbors(VertexId::new(vi)) {
            let wi = w.index();
            if excluded[wi] {
                continue;
            }
            excluded[wi] = true;
            buckets[remaining_degree[wi]].remove(&(wi as u32));
            for x in graph.neighbors(w) {
                let xi = x.index();
                // Excluded vertices never re-enter the queue; their stored
                // degree is dead state and needs no bucket move.
                if excluded[xi] {
                    continue;
                }
                let d = remaining_degree[xi];
                if d == 0 {
                    continue;
                }
                buckets[d].remove(&(xi as u32));
                remaining_degree[xi] = d - 1;
                buckets[d - 1].insert(xi as u32);
                floor = floor.min(d - 1);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Exact maximum independent set by branch and bound.
///
/// Intended for cross-validation on small instances.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices (use the greedy variants
/// or the bipartite König route for larger instances).
#[must_use]
pub fn maximum_exact(graph: &Graph) -> VertexSet {
    let n = graph.vertex_count();
    assert!(
        n <= 64,
        "exact maximum independent set is limited to 64 vertices, got {n}"
    );
    if n == 0 {
        return Vec::new();
    }
    // With n <= 64 each packed adjacency row is exactly one word, so the
    // branch-and-bound masks are the bitmap rows verbatim.
    let masks: Vec<u64> = match graph.adjacency_bits() {
        Some(bits) => graph.vertices().map(|v| bits.row(v)[0]).collect(),
        None => graph
            .vertices()
            .map(|v| {
                graph
                    .neighbors(v)
                    .fold(0u64, |acc, w| acc | (1u64 << w.index()))
            })
            .collect(),
    };

    fn solve(candidates: u64, chosen: u64, best: &mut u64, masks: &[u64]) {
        if candidates == 0 {
            if chosen.count_ones() > best.count_ones() {
                *best = chosen;
            }
            return;
        }
        if chosen.count_ones() + candidates.count_ones() <= best.count_ones() {
            return; // bound
        }
        let v = candidates.trailing_zeros() as usize;
        let bit = 1u64 << v;
        // Branch 1: take v (drop its neighbors from candidates).
        solve(candidates & !bit & !masks[v], chosen | bit, best, masks);
        // Branch 2: skip v.
        solve(candidates & !bit, chosen, best, masks);
    }

    let mut best = 0u64;
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    solve(all, 0, &mut best, &masks);
    (0..n)
        .filter(|&i| best & (1u64 << i) != 0)
        .map(VertexId::new)
        .collect()
}

/// The independence number `α(G)` for small graphs (`n ≤ 64`).
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
#[must_use]
pub fn independence_number_exact(graph: &Graph) -> usize {
    maximum_exact(graph).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use defender_num::rng::Rng;

    #[test]
    fn predicate_basics() {
        let g = generators::cycle(5);
        assert!(is_independent_set(&g, &[]));
        assert!(is_independent_set(
            &g,
            &[VertexId::new(0), VertexId::new(2)]
        ));
        assert!(!is_independent_set(
            &g,
            &[VertexId::new(0), VertexId::new(1)]
        ));
    }

    #[test]
    fn greedy_outputs_are_independent_and_maximal() {
        for g in [
            generators::cycle(7),
            generators::petersen(),
            generators::grid(3, 3),
        ] {
            for set in [greedy_maximal(&g), greedy_min_degree(&g)] {
                assert!(is_independent_set(&g, &set));
                // Maximality: every vertex outside has a neighbor inside.
                let mut inside = vec![false; g.vertex_count()];
                for &v in &set {
                    inside[v.index()] = true;
                }
                for v in g.vertices() {
                    if !inside[v.index()] {
                        assert!(
                            g.neighbors(v).any(|w| inside[w.index()]),
                            "{v} could be added"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(independence_number_exact(&generators::complete(5)), 1);
        assert_eq!(independence_number_exact(&generators::cycle(5)), 2);
        assert_eq!(independence_number_exact(&generators::cycle(6)), 3);
        assert_eq!(independence_number_exact(&generators::star(7)), 7);
        assert_eq!(independence_number_exact(&generators::petersen()), 4);
        assert_eq!(
            independence_number_exact(&generators::complete_bipartite(3, 5)),
            5
        );
    }

    #[test]
    fn exact_result_is_independent() {
        let g = generators::grid(3, 4);
        let set = maximum_exact(&g);
        assert!(is_independent_set(&g, &set));
        assert_eq!(set.len(), 6, "grid(3,4) has α = ceil(12/2)");
    }

    #[test]
    fn exact_handles_empty_and_edgeless() {
        let empty = crate::GraphBuilder::new(0).build();
        assert!(maximum_exact(&empty).is_empty());
        let edgeless = crate::GraphBuilder::new(4).build();
        assert_eq!(maximum_exact(&edgeless).len(), 4);
    }

    /// The pre-bucket-queue `greedy_min_degree`: full min-scan per pick.
    /// Kept verbatim as the reference the optimized version is pinned to.
    fn reference_min_degree(graph: &Graph) -> VertexSet {
        let mut excluded = vec![false; graph.vertex_count()];
        let mut remaining_degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
        let mut out = Vec::new();
        loop {
            let pick = graph
                .vertices()
                .filter(|v| !excluded[v.index()])
                .min_by_key(|v| remaining_degree[v.index()]);
            let Some(v) = pick else { break };
            out.push(v);
            excluded[v.index()] = true;
            for w in graph.neighbors(v) {
                if !excluded[w.index()] {
                    excluded[w.index()] = true;
                    for x in graph.neighbors(w) {
                        remaining_degree[x.index()] = remaining_degree[x.index()].saturating_sub(1);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn bucket_queue_greedy_matches_min_scan_on_generator_corpus() {
        use crate::generators as gen;
        let mut rng = defender_num::rng::StdRng::seed_from_u64(0x6D1D);
        let mut corpus = vec![
            gen::path(1),
            gen::path(9),
            gen::cycle(3),
            gen::cycle(17),
            gen::star(1),
            gen::star(40),
            gen::wheel(8),
            gen::complete(7),
            gen::complete_bipartite(3, 6),
            gen::grid(4, 7),
            gen::hypercube(4),
            gen::petersen(),
            gen::ladder(6),
            gen::circulant(11, &[1, 3]),
            crate::GraphBuilder::new(0).build(),
            crate::GraphBuilder::new(5).build(),
        ];
        for _ in 0..8 {
            corpus.push(gen::gnp(24, 0.2, &mut rng));
            corpus.push(gen::random_tree(16, &mut rng));
        }
        corpus.push(gen::random_regular(18, 4, &mut rng));
        for (i, g) in corpus.iter().enumerate() {
            assert_eq!(
                greedy_min_degree(g),
                reference_min_degree(g),
                "graph #{i} (n = {}, m = {})",
                g.vertex_count(),
                g.edge_count()
            );
        }
    }

    #[test]
    fn scratch_variant_agrees_with_plain_predicate() {
        let mut rng = defender_num::rng::StdRng::seed_from_u64(0x15C4);
        for g in [
            generators::cycle(9),
            generators::petersen(),
            generators::gnp(70, 0.15, &mut rng), // spills into a second word
        ] {
            let mut scratch = Vec::new();
            let n = g.vertex_count();
            for _ in 0..200 {
                let size = rng.gen_range(0..(n / 2 + 1));
                let mut set: Vec<VertexId> = (0..size)
                    .map(|_| VertexId::new(rng.gen_range(0..n)))
                    .collect();
                set.sort_unstable();
                set.dedup();
                assert_eq!(
                    is_independent_set(&g, &set),
                    is_independent_set_with_scratch(&g, &set, &mut scratch),
                    "set {set:?}"
                );
            }
            // After the scratch variant forced the bitmap, the plain
            // predicate takes the word-parallel path; answers must hold.
            assert!(g.built_bits().is_some());
            assert!(is_independent_set(&g, &[]));
        }
    }

    #[test]
    fn greedy_at_least_half_exact_on_cycles() {
        for n in 3..12 {
            let g = generators::cycle(n);
            let greedy = greedy_min_degree(&g).len();
            let exact = independence_number_exact(&g);
            assert!(
                greedy * 2 >= exact,
                "n = {n}: greedy {greedy} vs exact {exact}"
            );
        }
    }
}
