//! Structural graph predicates: connectivity, bipartiteness, regularity.

use std::collections::VecDeque;

use crate::{Graph, GraphError, VertexId, VertexSet};

/// Whether the graph is connected (the empty graph counts as connected).
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, properties};
///
/// assert!(properties::is_connected(&generators::cycle(5)));
/// ```
#[must_use]
pub fn is_connected(graph: &Graph) -> bool {
    if graph.vertex_count() == 0 {
        return true;
    }
    let (_, count) = crate::traversal::components(graph);
    count == 1
}

/// A two-coloring of a bipartite graph: the two sides of the bipartition.
///
/// Produced by [`bipartition`]; both sides are sorted vertex sets and
/// together partition `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartition {
    /// Vertices colored 0 (contains the smallest vertex of each component).
    pub left: VertexSet,
    /// Vertices colored 1.
    pub right: VertexSet,
}

impl Bipartition {
    /// The side containing vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` appears in neither side (not a vertex of the graph the
    /// bipartition was computed for); use [`Bipartition::try_side_of`] when
    /// membership is not guaranteed.
    #[must_use]
    pub fn side_of(&self, v: VertexId) -> usize {
        match self.try_side_of(v) {
            Some(side) => side,
            // lint: allow(panic) documented contract; try_side_of is the fallible form
            None => panic!("{v} is not covered by this bipartition"),
        }
    }

    /// The side (0 = left, 1 = right) containing `v`, or `None` if `v` is
    /// not covered by the bipartition.
    #[must_use]
    pub fn try_side_of(&self, v: VertexId) -> Option<usize> {
        if self.left.binary_search(&v).is_ok() {
            Some(0)
        } else if self.right.binary_search(&v).is_ok() {
            Some(1)
        } else {
            None
        }
    }
}

/// Computes a bipartition of `graph` by BFS two-coloring.
///
/// # Errors
///
/// Returns [`GraphError::NotBipartite`] if the graph contains an odd cycle.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, properties};
///
/// let g = generators::complete_bipartite(2, 3);
/// let bp = properties::bipartition(&g)?;
/// assert_eq!(bp.left.len(), 2);
/// assert_eq!(bp.right.len(), 3);
/// assert!(properties::bipartition(&generators::cycle(5)).is_err());
/// # Ok::<(), defender_graph::GraphError>(())
/// ```
pub fn bipartition(graph: &Graph) -> Result<Bipartition, GraphError> {
    let mut color: Vec<Option<u8>> = vec![None; graph.vertex_count()];
    // Both neighbor sources enumerate in increasing id order, so the
    // coloring (and hence the returned sides) is identical either way; the
    // packed rows just trade pointer-chasing for word scans when a bitmap
    // already exists.
    match graph.built_bits() {
        Some(bits) => two_color(graph, |v| bits.neighbors(v), &mut color)?,
        None => two_color(graph, |v| graph.neighbors(v), &mut color)?,
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for v in graph.vertices() {
        match color[v.index()] {
            Some(0) => left.push(v),
            _ => right.push(v),
        }
    }
    Ok(Bipartition { left, right })
}

/// BFS two-coloring over an arbitrary neighbor source.
fn two_color<'a, I, F>(
    graph: &Graph,
    neighbors: F,
    color: &mut [Option<u8>],
) -> Result<(), GraphError>
where
    F: Fn(VertexId) -> I,
    I: Iterator<Item = VertexId> + 'a,
{
    for source in graph.vertices() {
        if color[source.index()].is_some() {
            continue;
        }
        color[source.index()] = Some(0);
        // The queue carries each vertex's color so no re-lookup (and no
        // "queued vertices are colored" proof obligation) is needed.
        let mut queue = VecDeque::from([(source, 0u8)]);
        while let Some((v, cv)) = queue.pop_front() {
            for w in neighbors(v) {
                match color[w.index()] {
                    None => {
                        color[w.index()] = Some(1 - cv);
                        queue.push_back((w, 1 - cv));
                    }
                    Some(cw) if cw == cv => return Err(GraphError::NotBipartite),
                    Some(_) => {}
                }
            }
        }
    }
    Ok(())
}

/// Whether the graph is bipartite.
#[must_use]
pub fn is_bipartite(graph: &Graph) -> bool {
    bipartition(graph).is_ok()
}

/// Whether every vertex has the same degree `d`; returns that degree.
#[must_use]
pub fn regularity(graph: &Graph) -> Option<usize> {
    let mut degrees = graph.vertices().map(|v| graph.degree(v));
    let first = degrees.next()?;
    degrees.all(|d| d == first).then_some(first)
}

/// The sorted degree sequence of the graph (ascending).
#[must_use]
pub fn degree_sequence(graph: &Graph) -> Vec<usize> {
    let mut ds: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    ds.sort_unstable();
    ds
}

/// Validates the standing assumptions of the Tuple model: non-empty and no
/// isolated vertices.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] or [`GraphError::IsolatedVertex`].
pub fn check_game_ready(graph: &Graph) -> Result<(), GraphError> {
    if graph.vertex_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if let Some(v) = graph.vertices().find(|&v| graph.degree(v) == 0) {
        return Err(GraphError::IsolatedVertex { vertex: v });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, GraphBuilder};

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::path(6)));
        assert!(is_connected(&GraphBuilder::new(0).build()));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        assert!(!is_connected(&b.build()));
    }

    #[test]
    fn even_cycles_bipartite_odd_not() {
        assert!(is_bipartite(&generators::cycle(4)));
        assert!(is_bipartite(&generators::cycle(8)));
        assert!(!is_bipartite(&generators::cycle(3)));
        assert!(!is_bipartite(&generators::cycle(7)));
    }

    #[test]
    fn bipartition_sides_partition_v() {
        let g = generators::complete_bipartite(3, 5);
        let bp = bipartition(&g).unwrap();
        assert_eq!(bp.left.len() + bp.right.len(), g.vertex_count());
        for v in &bp.left {
            for w in g.neighbors(*v) {
                assert!(bp.right.binary_search(&w).is_ok(), "edges cross sides");
            }
        }
    }

    #[test]
    fn bipartition_side_of() {
        let g = generators::path(3);
        let bp = bipartition(&g).unwrap();
        assert_eq!(bp.side_of(VertexId::new(0)), 0);
        assert_eq!(bp.side_of(VertexId::new(1)), 1);
        assert_eq!(bp.side_of(VertexId::new(2)), 0);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn side_of_unknown_vertex_panics() {
        let g = generators::path(2);
        let bp = bipartition(&g).unwrap();
        let _ = bp.side_of(VertexId::new(9));
    }

    #[test]
    fn bipartition_handles_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let bp = bipartition(&b.build()).unwrap();
        assert_eq!(bp.left, vec![VertexId::new(0), VertexId::new(2)]);
    }

    #[test]
    fn bipartition_identical_with_and_without_bitmap() {
        for g in [
            generators::complete_bipartite(4, 9),
            generators::grid(6, 11), // 66 vertices: rows span two words
            generators::hypercube(4),
        ] {
            let before = bipartition(&g).unwrap();
            g.adjacency_bits().expect("within size gate");
            assert_eq!(bipartition(&g).unwrap(), before);
        }
        let odd = generators::cycle(9);
        odd.adjacency_bits().unwrap();
        assert!(bipartition(&odd).is_err());
    }

    #[test]
    fn regularity_detection() {
        assert_eq!(regularity(&generators::cycle(5)), Some(2));
        assert_eq!(regularity(&generators::complete(4)), Some(3));
        assert_eq!(regularity(&generators::star(3)), None);
        assert_eq!(regularity(&GraphBuilder::new(0).build()), None);
    }

    #[test]
    fn degree_sequence_sorted() {
        assert_eq!(degree_sequence(&generators::star(3)), vec![1, 1, 1, 3]);
    }

    #[test]
    fn game_ready_checks() {
        assert!(check_game_ready(&generators::path(2)).is_ok());
        assert_eq!(
            check_game_ready(&GraphBuilder::new(0).build()),
            Err(GraphError::EmptyGraph)
        );
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert_eq!(
            check_game_ready(&b.build()),
            Err(GraphError::IsolatedVertex {
                vertex: VertexId::new(2)
            })
        );
    }
}
