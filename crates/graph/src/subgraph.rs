//! Subgraph extraction: "the graph obtained by an edge set" (`G_T` in the
//! paper's §2) and induced subgraphs.

use crate::{EdgeId, Graph, GraphBuilder, VertexId};

/// The result of a subgraph extraction: the new graph plus maps back to
/// the parent's ids.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph, with vertices renumbered `0..`.
    pub graph: Graph,
    /// `vertex_map[i]` is the parent vertex represented by new vertex `i`.
    pub vertex_map: Vec<VertexId>,
    /// `edge_map[j]` is the parent edge represented by new edge `j`.
    pub edge_map: Vec<EdgeId>,
}

impl Subgraph {
    /// Translates a new vertex id back to the parent's id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the subgraph.
    #[must_use]
    pub fn parent_vertex(&self, v: VertexId) -> VertexId {
        self.vertex_map[v.index()]
    }

    /// Translates a parent vertex id into the subgraph, if present.
    #[must_use]
    pub fn local_vertex(&self, parent: VertexId) -> Option<VertexId> {
        self.vertex_map
            .binary_search(&parent)
            .ok()
            .map(VertexId::new)
    }
}

/// The graph `G_T` spanned by an edge set: its vertices are exactly the
/// endpoints `V(T)` and its edges are `T`. Vertices are renumbered
/// compactly; the [`Subgraph`] maps recover parent ids.
///
/// # Panics
///
/// Panics if any edge id is out of range.
///
/// # Examples
///
/// ```
/// use defender_graph::{generators, subgraph, EdgeId};
///
/// let g = generators::cycle(5);
/// let sub = subgraph::spanned_by_edges(&g, &[EdgeId::new(0), EdgeId::new(1)]);
/// assert_eq!(sub.graph.vertex_count(), 3);
/// assert_eq!(sub.graph.edge_count(), 2);
/// ```
#[must_use]
pub fn spanned_by_edges(graph: &Graph, edges: &[EdgeId]) -> Subgraph {
    let mut sorted_edges = edges.to_vec();
    sorted_edges.sort_unstable();
    sorted_edges.dedup();
    let vertex_map = graph.endpoint_set(&sorted_edges);
    let local = |parent: VertexId| {
        VertexId::new(
            vertex_map
                .binary_search(&parent)
                // lint: allow(panic) vertex_map is the sorted endpoint set of these exact edges
                .expect("endpoint is in the endpoint set"),
        )
    };
    let mut b = GraphBuilder::new(vertex_map.len());
    for &e in &sorted_edges {
        let ep = graph.endpoints(e);
        b.add_edge_ids(local(ep.u()), local(ep.v()));
    }
    Subgraph {
        graph: b.build(),
        vertex_map,
        edge_map: sorted_edges,
    }
}

/// The subgraph induced by a vertex set: those vertices and every parent
/// edge with both endpoints inside.
///
/// # Panics
///
/// Panics if any vertex id is out of range.
#[must_use]
pub fn induced_by_vertices(graph: &Graph, vertices: &[VertexId]) -> Subgraph {
    let mut vertex_map = vertices.to_vec();
    vertex_map.sort_unstable();
    vertex_map.dedup();
    let mut member = vec![false; graph.vertex_count()];
    for &v in &vertex_map {
        member[v.index()] = true;
    }
    let local = |parent: VertexId| {
        VertexId::new(
            vertex_map
                .binary_search(&parent)
                // lint: allow(panic) vertex_map holds every member vertex by construction
                .expect("vertex is a member"),
        )
    };
    let mut b = GraphBuilder::new(vertex_map.len());
    let mut edge_map = Vec::new();
    for e in graph.edges() {
        let ep = graph.endpoints(e);
        if member[ep.u().index()] && member[ep.v().index()] {
            b.add_edge_ids(local(ep.u()), local(ep.v()));
            edge_map.push(e);
        }
    }
    Subgraph {
        graph: b.build(),
        vertex_map,
        edge_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn spanned_by_edges_basic() {
        let g = generators::path(5); // edges in id order: (0,1),(1,2),(2,3),(3,4)
        let sub = spanned_by_edges(&g, &[EdgeId::new(0), EdgeId::new(3)]);
        assert_eq!(sub.graph.vertex_count(), 4);
        assert_eq!(sub.graph.edge_count(), 2);
        assert_eq!(
            sub.vertex_map,
            vec![
                VertexId::new(0),
                VertexId::new(1),
                VertexId::new(3),
                VertexId::new(4)
            ]
        );
    }

    #[test]
    fn spanned_by_edges_dedups_input() {
        let g = generators::cycle(4);
        let sub = spanned_by_edges(&g, &[EdgeId::new(1), EdgeId::new(1)]);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn spanned_by_all_edges_is_whole_graph() {
        let g = generators::petersen();
        let all: Vec<EdgeId> = g.edges().collect();
        let sub = spanned_by_edges(&g, &all);
        assert_eq!(sub.graph.vertex_count(), g.vertex_count());
        assert_eq!(sub.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn vertex_maps_round_trip() {
        let g = generators::cycle(6);
        let sub = spanned_by_edges(&g, &[EdgeId::new(2), EdgeId::new(4)]);
        for v in sub.graph.vertices() {
            let parent = sub.parent_vertex(v);
            assert_eq!(sub.local_vertex(parent), Some(v));
        }
        assert_eq!(sub.local_vertex(VertexId::new(0)), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = generators::complete(5);
        let picks: Vec<VertexId> = [0, 1, 2].into_iter().map(VertexId::new).collect();
        let sub = induced_by_vertices(&g, &picks);
        assert_eq!(sub.graph.vertex_count(), 3);
        assert_eq!(sub.graph.edge_count(), 3, "K3 inside K5");
        assert_eq!(sub.edge_map.len(), 3);
    }

    #[test]
    fn induced_subgraph_of_independent_set_is_edgeless() {
        let g = generators::cycle(6);
        let picks: Vec<VertexId> = [0, 2, 4].into_iter().map(VertexId::new).collect();
        let sub = induced_by_vertices(&g, &picks);
        assert_eq!(sub.graph.edge_count(), 0);
    }
}
