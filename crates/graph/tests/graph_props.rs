//! Property-based tests for the graph substrate.

use defender_graph::{edge_cover, generators, independent_set, properties, traversal, vertex_cover, Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple graph from an edge-probability and a seed.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=24, 0u64..1_000, 0u32..=100).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

/// Strategy: a random connected, game-ready graph.
fn connected_graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=24, 0u64..1_000, 0u32..=40).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp_connected(n, f64::from(pct) / 100.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in graph_strategy()) {
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric(g in graph_strategy()) {
        for v in g.vertices() {
            for w in g.neighbors(v) {
                prop_assert!(g.has_edge(w, v));
                prop_assert!(g.neighbors(w).any(|x| x == v));
            }
        }
    }

    #[test]
    fn find_edge_consistent_with_endpoints(g in graph_strategy()) {
        for e in g.edges() {
            let ep = g.endpoints(e);
            prop_assert_eq!(g.find_edge(ep.u(), ep.v()), Some(e));
            prop_assert_eq!(g.find_edge(ep.v(), ep.u()), Some(e));
        }
    }

    #[test]
    fn bfs_distances_are_tight(g in connected_graph_strategy()) {
        // Triangle inequality along edges: |d(u) - d(v)| <= 1.
        let source = defender_graph::VertexId::new(0);
        let dist = traversal::bfs_distances(&g, source);
        for e in g.edges() {
            let ep = g.endpoints(e);
            let du = dist[ep.u().index()].unwrap();
            let dv = dist[ep.v().index()].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1);
        }
    }

    #[test]
    fn components_partition_vertices(g in graph_strategy()) {
        let (labels, count) = traversal::components(&g);
        prop_assert!(labels.iter().all(|&l| l < count));
        // Two endpoints of any edge share a component.
        for e in g.edges() {
            let ep = g.endpoints(e);
            prop_assert_eq!(labels[ep.u().index()], labels[ep.v().index()]);
        }
    }

    #[test]
    fn bipartition_has_no_internal_edges(g in graph_strategy()) {
        if let Ok(bp) = properties::bipartition(&g) {
            prop_assert!(independent_set::is_independent_set(&g, &bp.left));
            prop_assert!(independent_set::is_independent_set(&g, &bp.right));
            prop_assert_eq!(bp.left.len() + bp.right.len(), g.vertex_count());
        }
    }

    #[test]
    fn greedy_is_independent_two_approx_is_cover(g in graph_strategy()) {
        let is = independent_set::greedy_maximal(&g);
        prop_assert!(independent_set::is_independent_set(&g, &is));
        let vc = vertex_cover::two_approximation(&g);
        prop_assert!(vertex_cover::is_vertex_cover(&g, &vc));
    }

    #[test]
    fn complement_of_independent_is_cover(g in graph_strategy()) {
        let is = independent_set::greedy_min_degree(&g);
        let vc = vertex_cover::complement(&g, &is);
        prop_assert!(vertex_cover::is_vertex_cover(&g, &vc));
    }

    #[test]
    fn gallai_bound_for_exact_sets(g in graph_strategy()) {
        // α(G) + τ(G) = n.
        let alpha = independent_set::independence_number_exact(&g);
        let tau = vertex_cover::cover_number_exact(&g);
        prop_assert_eq!(alpha + tau, g.vertex_count());
    }

    #[test]
    fn greedy_edge_cover_valid_on_game_ready(g in connected_graph_strategy()) {
        let cover = edge_cover::greedy(&g).expect("connected graphs have edge covers");
        prop_assert!(edge_cover::is_edge_cover(&g, &cover));
        prop_assert!(cover.len() >= edge_cover::lower_bound(&g));
    }

    #[test]
    fn spanned_subgraph_preserves_edge_count(g in connected_graph_strategy()) {
        let some_edges: Vec<_> = g.edges().step_by(2).collect();
        let sub = defender_graph::subgraph::spanned_by_edges(&g, &some_edges);
        prop_assert_eq!(sub.graph.edge_count(), some_edges.len());
        prop_assert_eq!(sub.graph.vertex_count(), g.endpoint_set(&some_edges).len());
    }
}

proptest! {
    #[test]
    fn graph6_round_trips(g in graph_strategy()) {
        let encoded = defender_graph::graph6::to_graph6(&g);
        let decoded = defender_graph::graph6::from_graph6(&encoded).unwrap();
        prop_assert_eq!(decoded, g);
    }

    #[test]
    fn complement_is_involutive_and_partitions_pairs(g in graph_strategy()) {
        let c = defender_graph::ops::complement(&g);
        prop_assert_eq!(defender_graph::ops::complement(&c), g.clone());
        let n = g.vertex_count();
        prop_assert_eq!(g.edge_count() + c.edge_count(), n * (n - 1) / 2);
    }

    #[test]
    fn join_degree_structure(g in graph_strategy()) {
        let h = generators::path(3);
        let joined = defender_graph::ops::join(&g, &h);
        prop_assert_eq!(
            joined.edge_count(),
            g.edge_count() + h.edge_count() + g.vertex_count() * h.vertex_count()
        );
        // Every original vertex gained |V(H)| cross edges.
        for v in g.vertices() {
            prop_assert_eq!(joined.degree(v), g.degree(v) + h.vertex_count());
        }
    }

    #[test]
    fn disjoint_union_preserves_components(g in graph_strategy()) {
        let h = generators::cycle(4);
        let u = defender_graph::ops::disjoint_union(&g, &h);
        let (_, cg) = traversal::components(&g);
        let (_, cu) = traversal::components(&u);
        prop_assert_eq!(cu, cg + 1, "C4 adds exactly one component");
    }
}

#[test]
fn builder_then_graph_round_trips_edge_set() {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 4).add_edge(1, 3).add_edge(0, 2);
    let g = b.build();
    let listed: Vec<(usize, usize)> = g
        .edges()
        .map(|e| {
            let ep = g.endpoints(e);
            (ep.u().index(), ep.v().index())
        })
        .collect();
    assert_eq!(listed, vec![(0, 2), (0, 4), (1, 3)]);
}
