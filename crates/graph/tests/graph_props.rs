//! Property-based tests for the graph substrate, driven by the vendored
//! seeded PRNG (offline build: no external property-testing framework).

use defender_graph::{
    edge_cover, generators, independent_set, properties, traversal, vertex_cover, Graph,
    GraphBuilder,
};
use defender_num::rng::{Rng, StdRng};

const CASES: usize = 200;

/// A random simple graph on 2..=24 vertices with random density.
fn random_graph<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = rng.gen_range(2..25);
    let p = rng.gen_range(0..101) as f64 / 100.0;
    generators::gnp(n, p, rng)
}

/// A random connected, game-ready graph.
fn random_connected<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = rng.gen_range(2..25);
    let p = rng.gen_range(0..41) as f64 / 100.0;
    generators::gnp_connected(n, p, rng)
}

fn for_each_case(seed: u64, mut body: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        body(&mut rng);
    }
}

#[test]
fn handshake_lemma() {
    for_each_case(0xA1, |rng| {
        let g = random_graph(rng);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    });
}

#[test]
fn adjacency_is_symmetric() {
    for_each_case(0xA2, |rng| {
        let g = random_graph(rng);
        for v in g.vertices() {
            for w in g.neighbors(v) {
                assert!(g.has_edge(w, v));
                assert!(g.neighbors(w).any(|x| x == v));
            }
        }
    });
}

#[test]
fn find_edge_consistent_with_endpoints() {
    for_each_case(0xA3, |rng| {
        let g = random_graph(rng);
        for e in g.edges() {
            let ep = g.endpoints(e);
            assert_eq!(g.find_edge(ep.u(), ep.v()), Some(e));
            assert_eq!(g.find_edge(ep.v(), ep.u()), Some(e));
        }
    });
}

#[test]
fn bfs_distances_are_tight() {
    for_each_case(0xA4, |rng| {
        let g = random_connected(rng);
        // Triangle inequality along edges: |d(u) - d(v)| <= 1.
        let source = defender_graph::VertexId::new(0);
        let dist = traversal::bfs_distances(&g, source);
        for e in g.edges() {
            let ep = g.endpoints(e);
            let du = dist[ep.u().index()].unwrap();
            let dv = dist[ep.v().index()].unwrap();
            assert!(du.abs_diff(dv) <= 1);
        }
    });
}

#[test]
fn components_partition_vertices() {
    for_each_case(0xA5, |rng| {
        let g = random_graph(rng);
        let (labels, count) = traversal::components(&g);
        assert!(labels.iter().all(|&l| l < count));
        // Two endpoints of any edge share a component.
        for e in g.edges() {
            let ep = g.endpoints(e);
            assert_eq!(labels[ep.u().index()], labels[ep.v().index()]);
        }
    });
}

#[test]
fn bipartition_has_no_internal_edges() {
    for_each_case(0xA6, |rng| {
        let g = random_graph(rng);
        if let Ok(bp) = properties::bipartition(&g) {
            assert!(independent_set::is_independent_set(&g, &bp.left));
            assert!(independent_set::is_independent_set(&g, &bp.right));
            assert_eq!(bp.left.len() + bp.right.len(), g.vertex_count());
        }
    });
}

#[test]
fn greedy_is_independent_two_approx_is_cover() {
    for_each_case(0xA7, |rng| {
        let g = random_graph(rng);
        let is = independent_set::greedy_maximal(&g);
        assert!(independent_set::is_independent_set(&g, &is));
        let vc = vertex_cover::two_approximation(&g);
        assert!(vertex_cover::is_vertex_cover(&g, &vc));
    });
}

#[test]
fn complement_of_independent_is_cover() {
    for_each_case(0xA8, |rng| {
        let g = random_graph(rng);
        let is = independent_set::greedy_min_degree(&g);
        let vc = vertex_cover::complement(&g, &is);
        assert!(vertex_cover::is_vertex_cover(&g, &vc));
    });
}

#[test]
fn gallai_bound_for_exact_sets() {
    // Exponential exact solvers: fewer, smaller cases.
    let mut rng = StdRng::seed_from_u64(0xA9);
    for _ in 0..40 {
        let n = rng.gen_range(2..15);
        let p = rng.gen_range(0..101) as f64 / 100.0;
        let g = generators::gnp(n, p, &mut rng);
        // α(G) + τ(G) = n.
        let alpha = independent_set::independence_number_exact(&g);
        let tau = vertex_cover::cover_number_exact(&g);
        assert_eq!(alpha + tau, g.vertex_count());
    }
}

#[test]
fn greedy_edge_cover_valid_on_game_ready() {
    for_each_case(0xAA, |rng| {
        let g = random_connected(rng);
        let cover = edge_cover::greedy(&g).expect("connected graphs have edge covers");
        assert!(edge_cover::is_edge_cover(&g, &cover));
        assert!(cover.len() >= edge_cover::lower_bound(&g));
    });
}

#[test]
fn spanned_subgraph_preserves_edge_count() {
    for_each_case(0xAB, |rng| {
        let g = random_connected(rng);
        let some_edges: Vec<_> = g.edges().step_by(2).collect();
        let sub = defender_graph::subgraph::spanned_by_edges(&g, &some_edges);
        assert_eq!(sub.graph.edge_count(), some_edges.len());
        assert_eq!(sub.graph.vertex_count(), g.endpoint_set(&some_edges).len());
    });
}

#[test]
fn graph6_round_trips() {
    for_each_case(0xAC, |rng| {
        let g = random_graph(rng);
        let encoded = defender_graph::graph6::to_graph6(&g);
        let decoded = defender_graph::graph6::from_graph6(&encoded).unwrap();
        assert_eq!(decoded, g);
    });
}

#[test]
fn complement_is_involutive_and_partitions_pairs() {
    for_each_case(0xAD, |rng| {
        let g = random_graph(rng);
        let c = defender_graph::ops::complement(&g);
        assert_eq!(defender_graph::ops::complement(&c), g.clone());
        let n = g.vertex_count();
        assert_eq!(g.edge_count() + c.edge_count(), n * (n - 1) / 2);
    });
}

#[test]
fn join_degree_structure() {
    for_each_case(0xAE, |rng| {
        let g = random_graph(rng);
        let h = generators::path(3);
        let joined = defender_graph::ops::join(&g, &h);
        assert_eq!(
            joined.edge_count(),
            g.edge_count() + h.edge_count() + g.vertex_count() * h.vertex_count()
        );
        // Every original vertex gained |V(H)| cross edges.
        for v in g.vertices() {
            assert_eq!(joined.degree(v), g.degree(v) + h.vertex_count());
        }
    });
}

#[test]
fn disjoint_union_preserves_components() {
    for_each_case(0xAF, |rng| {
        let g = random_graph(rng);
        let h = generators::cycle(4);
        let u = defender_graph::ops::disjoint_union(&g, &h);
        let (_, cg) = traversal::components(&g);
        let (_, cu) = traversal::components(&u);
        assert_eq!(cu, cg + 1, "C4 adds exactly one component");
    });
}

#[test]
fn builder_then_graph_round_trips_edge_set() {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 4).add_edge(1, 3).add_edge(0, 2);
    let g = b.build();
    let listed: Vec<(usize, usize)> = g
        .edges()
        .map(|e| {
            let ep = g.endpoints(e);
            (ep.u().index(), ep.v().index())
        })
        .collect();
    assert_eq!(listed, vec![(0, 2), (0, 4), (1, 3)]);
}
