//! The `lint.toml` configuration: per-rule scopes and allowlists.
//!
//! Parsed with a hand-rolled reader for the same reason
//! `defender_obs::json` exists — the workspace builds offline, so the
//! config grammar is a deliberately small TOML subset:
//!
//! ```toml
//! # comment
//! [rule.panic]
//! scope = ["crates/num/src", "crates/graph/src"]   # string arrays
//! allow = [
//!     "crates/num/src/rng.rs",  # may span lines, trailing comments ok
//! ]
//!
//! [rule.metrics]
//! registry = "crates/obs/metrics_registry.txt"     # plain strings
//! ```
//!
//! Section headers, `key = "string"` and `key = [ "…", … ]` are the whole
//! grammar; anything else is a parse error with a line number.

use std::collections::BTreeMap;

/// The settings of one `[rule.<id>]` section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// Path prefixes (workspace-relative, `/`-separated) the rule checks.
    pub scope: Vec<String>,
    /// Path prefixes exempt from the rule (with the reason kept as a
    /// comment next to the entry in `lint.toml`).
    pub allow: Vec<String>,
    /// Any other string-valued keys (e.g. the metric rule's `registry`).
    pub extra: BTreeMap<String, Vec<String>>,
}

impl RuleConfig {
    /// Whether `path` is inside the rule's scope and not allowlisted.
    #[must_use]
    pub fn applies_to(&self, path: &str) -> bool {
        self.scope.iter().any(|p| path.starts_with(p.as_str()))
            && !self.allow.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// First value of an extra key, if present.
    #[must_use]
    pub fn extra_one(&self, key: &str) -> Option<&str> {
        self.extra
            .get(key)
            .and_then(|v| v.first())
            .map(String::as_str)
    }
}

/// The whole parsed configuration, keyed by rule id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Config {
    /// `[rule.<id>]` sections in file order, keyed by `<id>`.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// The section for `rule`, or an empty default (empty scope — the rule
    /// checks nothing unless configured).
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Reports the 1-based line of the first construct outside the
    /// supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut rules: BTreeMap<String, RuleConfig> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or(format!("line {}: unterminated section header", i + 1))?
                    .trim();
                let id = header
                    .strip_prefix("rule.")
                    .ok_or(format!("line {}: only [rule.<id>] sections exist", i + 1))?;
                rules.entry(id.to_string()).or_default();
                current = Some(id.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {}: expected `key = value`", i + 1))?;
            let key = key.trim();
            let section = current
                .as_ref()
                .ok_or(format!("line {}: `{key}` outside any section", i + 1))?;
            let mut value = value.trim().to_string();
            // Arrays may span lines: keep consuming until the `]` closes.
            while value.starts_with('[') && !value.ends_with(']') {
                let (j, next) = lines
                    .next()
                    .ok_or(format!("line {}: unterminated array", i + 1))?;
                let next = strip_comment(next);
                let next = next.trim();
                if !next.is_empty() {
                    value.push(' ');
                    value.push_str(next);
                }
                let _ = j;
            }
            let values = parse_value(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
            let rule = rules.entry(section.clone()).or_default();
            match key {
                "scope" => rule.scope = values,
                "allow" => rule.allow = values,
                other => {
                    rule.extra.insert(other.to_string(), values);
                }
            }
        }
        Ok(Config { rules })
    }
}

/// Removes a trailing `#` comment, respecting `"…"` string values.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_string = false;
    for c in line.chars() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => break,
            _ => {}
        }
        out.push(c);
    }
    out
}

/// Parses `"s"` or `["a", "b", …]` (trailing comma allowed).
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated array".to_string())?;
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(ToString::to_string)
        .ok_or(format!("expected a double-quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scopes_and_extras() {
        let cfg = Config::parse(
            r#"
# top comment
[rule.panic]
scope = ["crates/num/src", "crates/graph/src"]
allow = [
    "crates/num/src/rng.rs",   # reason lives here
]

[rule.metrics]
scope = ["crates"]
registry = "crates/obs/metrics_registry.txt"
docs = ["EXPERIMENTS.md"]
"#,
        )
        .unwrap();
        let panic = cfg.rule("panic");
        assert_eq!(panic.scope.len(), 2);
        assert_eq!(panic.allow, vec!["crates/num/src/rng.rs".to_string()]);
        assert!(panic.applies_to("crates/graph/src/graph.rs"));
        assert!(!panic.applies_to("crates/num/src/rng.rs"));
        assert!(!panic.applies_to("crates/cli/src/main.rs"));
        let metrics = cfg.rule("metrics");
        assert_eq!(
            metrics.extra_one("registry"),
            Some("crates/obs/metrics_registry.txt")
        );
        assert_eq!(metrics.extra["docs"], vec!["EXPERIMENTS.md".to_string()]);
        assert_eq!(cfg.rule("unknown"), RuleConfig::default());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[rule.x]\nallow = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.rule("x").allow, vec!["a#b".to_string()]);
    }

    #[test]
    fn rejects_out_of_subset_constructs() {
        for bad in [
            "key = 1\n",
            "[rule.x\n",
            "[other.section]\n",
            "[rule.x]\nkey 1\n",
            "[rule.x]\nkey = [\"a\"\n",
            "[rule.x]\nkey = bare\n",
        ] {
            assert!(Config::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
