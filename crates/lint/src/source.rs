//! A tokenized source file with test-code masking and `lint:` annotations.
//!
//! Two token post-passes feed every rule:
//!
//! - **test masking**: tokens under a `#[cfg(test)]` / `#[test]` item
//!   (attribute through the item's closing `}` or `;`) are marked and
//!   skipped by all rules — test code is allowed to `unwrap()` freely;
//! - **annotations**: a line comment of the form
//!   `// lint: allow(<rule>) <reason>` suppresses findings of `<rule>`.
//!   A trailing annotation (`x.unwrap() // lint: allow(panic) bounds
//!   checked`) covers its own line only; an annotation standing on a line
//!   of its own also covers the line directly below, so it can sit above
//!   the site. The reason is mandatory: an annotation without one is
//!   itself a finding.

use std::cell::Cell;

use crate::tokenizer::{self, Token, TokenKind};

/// One suppression parsed from a `// lint: allow(rule) reason` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// The rule id being allowed.
    pub rule: String,
    /// The mandatory free-text justification.
    pub reason: String,
    /// Whether the comment is the only thing on its line (then it also
    /// covers the line below; a trailing annotation covers only its own).
    pub standalone: bool,
    /// Set by [`SourceFile::is_allowed`] when the annotation suppresses a
    /// finding; an annotation still `false` after every rule has run is
    /// stale and reported by the suppression-ageing pass (`unused_allow`).
    pub used: Cell<bool>,
}

/// A lexed, masked, annotation-indexed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: whether the token is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Parsed `lint: allow` annotations outside test code.
    pub allows: Vec<Allow>,
    /// Malformed `lint:` comments (missing reason, bad syntax), reported
    /// as findings by the engine.
    pub bad_annotations: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    ///
    /// # Errors
    ///
    /// Propagates tokenizer errors (unterminated literals/comments).
    pub fn parse(path: &str, text: &str) -> Result<SourceFile, String> {
        let tokens = tokenizer::tokenize(text)?;
        let test_mask = mark_test_items(&tokens);
        let mut allows = Vec::new();
        let mut bad_annotations = Vec::new();
        for (token, &in_test) in tokens.iter().zip(&test_mask) {
            if token.kind != TokenKind::LineComment || in_test {
                continue;
            }
            let body = token.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("lint:") else {
                continue;
            };
            let standalone = !tokens
                .iter()
                .any(|t| !t.is_comment() && t.line == token.line);
            match parse_allow(rest.trim()) {
                Ok((rule, reason)) => allows.push(Allow {
                    line: token.line,
                    rule,
                    reason,
                    standalone,
                    used: Cell::new(false),
                }),
                Err(e) => bad_annotations.push((token.line, e)),
            }
        }
        Ok(SourceFile {
            path: path.to_string(),
            tokens,
            test_mask,
            allows,
            bad_annotations,
        })
    }

    /// Whether a finding of `rule` at `line` is suppressed by an
    /// annotation on that line, or by a standalone annotation on the line
    /// directly above. A match marks the annotation *used* for the
    /// suppression-ageing pass ([`SourceFile::unused_allows`]).
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule == rule && (a.line == line || (a.standalone && a.line + 1 == line)) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Annotations that suppressed nothing after every rule has consulted
    /// [`SourceFile::is_allowed`] — stale suppressions (the covered code
    /// was fixed, the rule id was typo'd, or the annotation drifted off
    /// its site). Call only after all rules have run on this file.
    pub fn unused_allows(&self) -> impl Iterator<Item = &Allow> + '_ {
        self.allows.iter().filter(|a| !a.used.get())
    }

    /// Iterator over `(index, token)` for non-comment tokens outside test
    /// code — the stream the token-level rules match against.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .filter(|&(i, t)| !t.is_comment() && !self.test_mask[i])
    }
}

/// Parses `allow(<rule>) <reason>`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let rest = text
        .strip_prefix("allow(")
        .ok_or("`lint:` comment must be `lint: allow(<rule>) <reason>`".to_string())?;
    let (rule, reason) = rest
        .split_once(')')
        .ok_or("unterminated `allow(` in lint annotation".to_string())?;
    let rule = rule.trim();
    let reason = reason.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad rule id `{rule}` in lint annotation"));
    }
    if reason.is_empty() {
        return Err(format!(
            "lint annotation `allow({rule})` needs a reason after the closing parenthesis"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Marks every token belonging to a test-only item: one or more attributes
/// where some attribute is `#[test]` or a `#[cfg(…)]` mentioning `test`,
/// followed by the attributed item through its closing `}` (or `;` for
/// item-less forms like `use`).
fn mark_test_items(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Indices of non-comment tokens: attributes and items are matched on
    // the code stream, then the mask is painted over the raw range
    // (comments inside a test item are test code too).
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        match attribute_at(tokens, &code, k) {
            Some((end_k, is_test)) => {
                // Gather the full attribute run on the item.
                let start_k = k;
                let mut any_test = is_test;
                let mut next_k = end_k;
                while let Some((e, t)) = attribute_at(tokens, &code, next_k) {
                    any_test |= t;
                    next_k = e;
                }
                if !any_test {
                    k = end_k; // re-scan remaining attributes individually
                    continue;
                }
                let item_end_k = item_end(tokens, &code, next_k);
                let lo = code[start_k];
                let hi = code
                    .get(item_end_k.saturating_sub(1))
                    .copied()
                    .unwrap_or(tokens.len() - 1);
                for slot in mask.iter_mut().take(hi + 1).skip(lo) {
                    *slot = true;
                }
                k = item_end_k;
            }
            None => k += 1,
        }
    }
    mask
}

/// If the code stream at `k` starts an outer attribute `#[…]`, returns
/// (index just past it, whether it is test-gating).
fn attribute_at(tokens: &[Token], code: &[usize], k: usize) -> Option<(usize, bool)> {
    let at = |k: usize| code.get(k).map(|&i| &tokens[i]);
    if !at(k)?.is_punct('#') || !at(k + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut mentions_test = false;
    let mut first_ident: Option<&str> = None;
    let mut j = k + 1;
    while let Some(token) = at(j) {
        if token.is_punct('[') {
            depth += 1;
        } else if token.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let is_test = match first_ident {
                    Some("test") => true,
                    Some("cfg") => mentions_test,
                    _ => false,
                };
                return Some((j + 1, is_test));
            }
        } else if token.kind == TokenKind::Ident {
            if first_ident.is_none() {
                first_ident = Some(&token.text);
            }
            if token.text == "test" {
                mentions_test = true;
            }
        }
        j += 1;
    }
    None
}

/// Index (in the code stream) just past the item starting at `k`: through
/// the matching `}` of the first top-level brace, or the first `;` before
/// any brace opens.
fn item_end(tokens: &[Token], code: &[usize], k: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut brace = 0i64;
    let mut seen_brace = false;
    let mut j = k;
    while let Some(&i) = code.get(j) {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') => {
                    brace += 1;
                    seen_brace = true;
                }
                Some(b'}') => {
                    brace -= 1;
                    if seen_brace && brace == 0 {
                        return j + 1;
                    }
                }
                Some(b';') if !seen_brace && paren == 0 && bracket == 0 && brace == 0 => {
                    return j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src).unwrap()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let file = parse(
            "pub fn real() { work() }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { x.unwrap() }\n\
             }\n\
             pub fn after() {}\n",
        );
        let masked: Vec<&str> = file
            .tokens
            .iter()
            .zip(&file.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(!masked.contains(&"real"));
        assert!(!masked.contains(&"after"), "mask ends at the closing brace");
        assert!(!file.code_tokens().any(|(_, t)| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_inner_module_stays_inside_cfg_test_mask() {
        // The inner `mod` has its own brace pair; the mask must extend to
        // the *outer* module's closing brace, not stop at the inner one.
        let file = parse(
            "pub fn live() { a() }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 mod inner {\n\
                     fn deep() { x.unwrap() }\n\
                 }\n\
                 fn shallow() { y.unwrap() }\n\
             }\n\
             pub fn after() { b.unwrap() }\n",
        );
        let live: Vec<u32> = file
            .code_tokens()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(_, t)| t.line)
            .collect();
        assert_eq!(live, vec![9], "only the unwrap after the module survives");
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let file = parse(
            "#[test]\nfn probe() { x.unwrap(); }\n\
             fn live() { y.unwrap(); }\n",
        );
        let unwraps: Vec<u32> = file
            .code_tokens()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(_, t)| t.line)
            .collect();
        assert_eq!(unwraps, vec![3], "only the live fn's unwrap survives");
    }

    #[test]
    fn stacked_attributes_and_cfg_all() {
        let file = parse(
            "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\n\
             fn gated() { a.unwrap() }\n\
             #[allow(dead_code)]\nfn kept() { b.unwrap() }\n",
        );
        let lines: Vec<u32> = file
            .code_tokens()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(_, t)| t.line)
            .collect();
        assert_eq!(lines, vec![5]);
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let file = parse("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n");
        assert!(!file.code_tokens().any(|(_, t)| t.is_ident("HashMap")));
        assert!(file.code_tokens().any(|(_, t)| t.is_ident("live")));
    }

    #[test]
    fn annotations_trailing_and_above() {
        let file = parse(
            "// lint: allow(panic) invariant: index bounded by construction\n\
             fn a() { x.unwrap() }\n\
             fn b() { y.unwrap() } // lint: allow(panic) poisoning is unreachable\n\
             fn c() { z.unwrap() }\n",
        );
        assert!(file.is_allowed("panic", 2), "line under the annotation");
        assert!(file.is_allowed("panic", 3), "trailing annotation");
        assert!(!file.is_allowed("panic", 4));
        assert!(!file.is_allowed("exactness", 2), "rule ids do not cross");
        assert_eq!(file.allows.len(), 2);
    }

    #[test]
    fn annotation_without_reason_is_reported() {
        let file = parse("fn a() {} // lint: allow(panic)\nfn b() {} // lint: nonsense\n");
        assert_eq!(file.bad_annotations.len(), 2);
        assert!(file.bad_annotations[0].1.contains("reason"));
        assert!(!file.is_allowed("panic", 1));
    }

    #[test]
    fn annotations_inside_test_code_are_ignored() {
        let file = parse(
            "#[cfg(test)]\nmod tests {\n    // lint: allow(panic) irrelevant\n    fn t() {}\n}\n",
        );
        assert!(file.allows.is_empty());
    }
}
