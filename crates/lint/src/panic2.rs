//! **panic2** — panic-propagation v2: item-aware gating of the panic
//! sites the token-level v1 rule can only *count*.
//!
//! Bare indexing (`x[i]`), `.split_at`/`.split_at_mut`, slice patterns
//! (`let [a, b] = …`), and fallible integer arithmetic (`/`, `%` with a
//! non-literal divisor) all panic without spelling `panic` anywhere, so
//! the v1 rule leaves them as classification counts. Flagging every such
//! site in the workspace would drown the signal (500+ index sites), so
//! v2 uses the [`crate::items`] layer to gate only where a panic would
//! corrupt the paper's guarantees: inside functions on the **exact
//! path** — functions that mention the `Ratio` type, plus everything
//! they transitively call within the crate (approximate call graph). A
//! panic there aborts an equilibrium computation mid-solve; the fix or
//! the annotated invariant must be explicit:
//!
//! - `x[expr]` → `// lint: allow(index) <why in bounds>` (full-range
//!   `x[..]` passes — it cannot fail);
//! - `.split_at(…)` → `allow(index)` (it is bounds-checked indexing);
//! - `let [a, b] = …` slice patterns → `allow(index)`;
//! - `a / b`, `a % b` → `// lint: allow(arith) <why divisor nonzero>`,
//!   unless the divisor is a nonzero integer literal.
//!
//! Sites *outside* exact-path functions are counted in
//! [`Panic2Stats::sites_outside_exact`] but not gated — the same
//! signal-to-noise judgement v1 documents for index sites.

use std::collections::BTreeSet;

use crate::config::RuleConfig;
use crate::items::{FnId, ItemIndex};
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};

/// Site counts the panic2 rule reports alongside its findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Panic2Stats {
    /// Gated sites inside exact-path functions (flagged or annotated).
    pub sites_exact: u64,
    /// Of those, sites suppressed by an annotation.
    pub annotated: u64,
    /// Sites seen outside exact-path functions (counted, not gated).
    pub sites_outside_exact: u64,
}

/// The kind of panic2 site, deciding the annotation id the message asks
/// for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SiteKind {
    Index,
    SplitAt,
    SlicePattern,
    Arith,
}

impl SiteKind {
    fn allow_id(self) -> &'static str {
        match self {
            SiteKind::Index | SiteKind::SplitAt | SiteKind::SlicePattern => "index",
            SiteKind::Arith => "arith",
        }
    }
}

/// Runs the panic-propagation v2 checks over one file. `exact` is the
/// crate's exact-path closure from [`crate::items::exact_path`].
pub fn check_panic2(
    file: &SourceFile,
    cfg: &RuleConfig,
    items: &ItemIndex,
    exact: &BTreeSet<FnId>,
) -> (Vec<Finding>, Panic2Stats) {
    let mut stats = Panic2Stats::default();
    if !cfg.applies_to(&file.path) {
        return (Vec::new(), stats);
    }
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut findings = Vec::new();
    for (i, token) in code.iter().enumerate() {
        let site = index_site(&code, i)
            .or_else(|| split_at_site(&code, i))
            .or_else(|| slice_pattern_site(&code, i))
            .or_else(|| arith_site(&code, i));
        let Some((kind, what)) = site else { continue };
        let line = token.line;
        let in_exact = items
            .enclosing_fn(line)
            .is_some_and(|f| exact.contains(&(file.path.clone(), f.name.clone())));
        if !in_exact {
            stats.sites_outside_exact += 1;
            continue;
        }
        stats.sites_exact += 1;
        if file.is_allowed(kind.allow_id(), line) {
            stats.annotated += 1;
            continue;
        }
        findings.push(Finding::new(
            "panic2",
            &file.path,
            line,
            format!(
                "{what} on the exact path — this function feeds rational equilibrium \
                 computation; restructure, or annotate with `// lint: allow({}) <reason>`",
                kind.allow_id()
            ),
        ));
    }
    (findings, stats)
}

/// `value [ … ]` indexing, as in the v1 classifier: an opening bracket
/// directly after an ident, literal, or closing delimiter. Full-range
/// `value[..]` passes (cannot panic).
fn index_site(code: &[&Token], i: usize) -> Option<(SiteKind, String)> {
    if !code[i].is_punct('[') || i == 0 {
        return None;
    }
    let prev = code[i - 1];
    let after_value = matches!(
        prev.kind,
        TokenKind::Ident | TokenKind::Int | TokenKind::Str
    ) || prev.is_punct(')')
        || prev.is_punct(']');
    if !after_value {
        return None;
    }
    // A `[` after a statement keyword opens an array literal or a slice
    // pattern (the pattern case is its own site kind), not indexing.
    if prev.kind == TokenKind::Ident
        && matches!(
            prev.text.as_str(),
            "let"
                | "mut"
                | "ref"
                | "in"
                | "if"
                | "else"
                | "match"
                | "return"
                | "break"
                | "continue"
                | "move"
                | "box"
                | "yield"
        )
    {
        return None;
    }
    // Attributes: `#[…]` has punct '#' before '[', already screened by
    // after_value; `derive(X)]` closes with ']' never opens.
    if code.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && code.get(i + 2).is_some_and(|t| t.is_punct('.'))
        && code.get(i + 3).is_some_and(|t| t.is_punct(']'))
    {
        return None; // x[..]
    }
    Some((SiteKind::Index, "bare indexing `…[…]`".to_string()))
}

/// `. split_at ( ` / `. split_at_mut ( `.
fn split_at_site(code: &[&Token], i: usize) -> Option<(SiteKind, String)> {
    if !code[i].is_punct('.') {
        return None;
    }
    let callee = code.get(i + 1)?;
    if (callee.is_ident("split_at") || callee.is_ident("split_at_mut"))
        && code.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        Some((SiteKind::SplitAt, format!(".{}()", callee.text)))
    } else {
        None
    }
}

/// `let [ …` — a slice/array pattern in binding position (panics… or
/// rather fails to match; the refutable forms reach here through
/// `let … else` and `if let`, the irrefutable array form is fine but
/// rare enough to justify uniformly).
fn slice_pattern_site(code: &[&Token], i: usize) -> Option<(SiteKind, String)> {
    if code[i].is_ident("let") && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
        Some((
            SiteKind::SlicePattern,
            "slice pattern `let […]`".to_string(),
        ))
    } else {
        None
    }
}

/// Integer `/` or `%` whose divisor is not a nonzero integer literal.
/// `/=` and `%=` match through their leading punct. `::` paths, comments
/// and strings never produce a bare `/` token.
fn arith_site(code: &[&Token], i: usize) -> Option<(SiteKind, String)> {
    let op = code[i];
    if !op.is_punct('/') && !op.is_punct('%') {
        return None;
    }
    // A leading `/` of a doc path cannot occur in code tokens; `a / b`
    // needs a value on the left to be a binary op — otherwise it would
    // not lex in valid Rust. Check the divisor:
    let divisor = code.get(i + 1)?;
    if divisor.kind == TokenKind::Int && nonzero_int_literal(&divisor.text) {
        return None;
    }
    Some((
        SiteKind::Arith,
        format!("`{}` with a non-literal divisor", op.text),
    ))
}

/// Whether an integer literal's text denotes a nonzero value.
fn nonzero_int_literal(text: &str) -> bool {
    let digits: String = text
        .trim_start_matches("0x")
        .trim_start_matches("0o")
        .trim_start_matches("0b")
        .chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .collect();
    digits.chars().any(|c| c.is_ascii_hexdigit() && c != '0')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::items::exact_path;

    fn check(src: &str) -> (Vec<Finding>, Panic2Stats) {
        let file = SourceFile::parse("crates/x/src/lib.rs", src).unwrap();
        let items = ItemIndex::build(&file);
        let files = vec![("crates/x/src/lib.rs", &items, &file)];
        let exact = exact_path(&files, &["Ratio"]);
        let cfg = Config::parse("[rule.panic2]\nscope = [\"crates\"]\n").unwrap();
        check_panic2(&file, &cfg.rule("panic2"), &items, &exact)
    }

    #[test]
    fn indexing_gated_only_on_exact_path() {
        let src = "fn exact(v: &[Ratio], i: usize) -> Ratio { v[i] }\n\
                   fn plain(v: &[u64], i: usize) -> u64 { v[i] }\n";
        let (findings, stats) = check(src);
        assert_eq!(stats.sites_exact, 1);
        assert_eq!(stats.sites_outside_exact, 1);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("allow(index)"));
    }

    #[test]
    fn full_range_slicing_passes() {
        let src = "fn exact(v: &[Ratio]) -> &[Ratio] { &v[..] }\n";
        let (findings, stats) = check(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.sites_exact, 0);
    }

    #[test]
    fn annotation_suppresses_and_counts() {
        let src = "fn exact(v: &[Ratio], i: usize) -> Ratio {\n\
                   v[i] // lint: allow(index) caller clamps i to v.len()-1\n\
                   }\n";
        let (findings, stats) = check(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.sites_exact, 1);
        assert_eq!(stats.annotated, 1);
    }

    #[test]
    fn split_at_and_slice_patterns_gated() {
        let src = "fn exact(v: &[Ratio]) {\n\
                   let (a, b) = v.split_at(2);\n\
                   let [x, y] = [a, b];\n\
                   drop((x, y));\n\
                   }\n";
        let (findings, _) = check(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains(".split_at()"));
        assert!(findings[1].message.contains("slice pattern"));
    }

    #[test]
    fn division_literal_divisor_passes_variable_flagged() {
        let src = "fn exact(a: Ratio, n: i64) -> i64 {\n\
                   let half = n / 2;\n\
                   let bad = n / half;\n\
                   let rem = n % half;\n\
                   drop(a);\n\
                   bad + rem\n\
                   }\n";
        let (findings, _) = check(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains('/'));
        assert!(findings[1].message.contains('%'));
    }

    #[test]
    fn exact_path_extends_to_callees() {
        let src = "fn entry(r: Ratio) -> u64 { helper(1) }\n\
                   fn helper(i: usize) -> u64 { TABLE[i] }\n";
        let (findings, _) = check(src);
        assert_eq!(findings.len(), 1, "callee indexing gated: {findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn nonzero_literal_detection() {
        assert!(nonzero_int_literal("2"));
        assert!(nonzero_int_literal("0x10"));
        assert!(nonzero_int_literal("1_000u64"));
        assert!(!nonzero_int_literal("0"));
        assert!(!nonzero_int_literal("0x0"));
        assert!(!nonzero_int_literal("0_0"));
    }
}
