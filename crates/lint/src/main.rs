//! Standalone entry point: `cargo run -p defender-lint -- [options]`.
//! The same driver backs the `defender lint` subcommand.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match defender_lint::run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("defender-lint: {message}");
            ExitCode::from(1)
        }
    }
}
