//! A hand-rolled, comment- and string-aware Rust tokenizer.
//!
//! The lint rules are *token-level*, not semantic: they never need types
//! or name resolution, only a faithful split of a source file into
//! identifiers, literals, comments and punctuation — faithful enough that
//! a `HashMap` inside a string literal or a doc-comment example is never
//! mistaken for code. The tricky lexical corners the rules depend on:
//!
//! - line (`//`, `///`, `//!`) and **nested** block comments (`/* /* */ */`);
//! - string literals with escapes, byte strings, and raw strings with an
//!   arbitrary hash fence (`r#"…"#`, `br##"…"##`);
//! - char literals vs. lifetimes (`'a'` vs `'a`);
//! - float vs. integer literals (`1.5`, `1e3`, `2f64` are floats; `0xeF`,
//!   `1..n` are not).
//!
//! Everything else is a single-character [`TokenKind::Punct`]; rules match
//! multi-character operators (`::`, `#[`) as adjacent punct tokens.

/// The lexical class of one [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `f64`, `unwrap`).
    Ident,
    /// A lifetime (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// A string literal: `"…"`, `b"…"`, `r#"…"#`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'0'`.
    Char,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.5`, `1e3`, `2.0f64`, `3f32`).
    Float,
    /// A `//` comment, text including the slashes.
    LineComment,
    /// A `/* … */` comment (possibly nested), text including delimiters.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether the token is a (line or block) comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// The string literal's contents without quotes/fences/escape decoding,
    /// for `Str` tokens produced from ordinary (non-raw) literals; raw
    /// strings strip their fence. Escapes are left verbatim — the metric
    /// names the rules care about never contain any.
    #[must_use]
    pub fn str_contents(&self) -> Option<&str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let s = self.text.strip_prefix('b').unwrap_or(&self.text);
        if let Some(raw) = s.strip_prefix('r') {
            let hashes = raw.len() - raw.trim_start_matches('#').len();
            let inner = &raw[hashes..raw.len() - hashes];
            return inner.strip_prefix('"').and_then(|t| t.strip_suffix('"'));
        }
        s.strip_prefix('"').and_then(|t| t.strip_suffix('"'))
    }
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    src: &'a str,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Splits `src` into tokens.
///
/// # Errors
///
/// Returns a message with the 1-based line of the first unterminated
/// string, char literal or block comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut lexer = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        src,
    };
    let mut tokens = Vec::new();
    while let Some(c) = lexer.peek(0) {
        let line = lexer.line;
        match c {
            c if c.is_whitespace() => {
                lexer.bump();
            }
            '/' if lexer.peek(1) == Some('/') => {
                let mut text = String::new();
                lexer.take_while(&mut text, |c| c != '\n');
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text,
                    line,
                });
            }
            '/' if lexer.peek(1) == Some('*') => {
                tokens.push(block_comment(&mut lexer, line)?);
            }
            '"' => tokens.push(string_literal(&mut lexer, line, String::new())?),
            '\'' => tokens.push(char_or_lifetime(&mut lexer, line)?),
            c if c.is_ascii_digit() => tokens.push(number(&mut lexer, line)),
            c if is_ident_start(c) => {
                let mut text = String::new();
                lexer.take_while(&mut text, is_ident_continue);
                match ident_prefixed_literal(&mut lexer, line, &text)? {
                    Some(token) => tokens.push(token),
                    None => tokens.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                    }),
                }
            }
            c => {
                lexer.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
            }
        }
    }
    let _ = lexer.src;
    Ok(tokens)
}

/// Handles `r"…"`/`r#"…"#`/`b"…"`/`br#"…"#`/`b'…'` after the identifier
/// prefix has been consumed; `None` means the identifier was plain.
fn ident_prefixed_literal(
    lexer: &mut Lexer<'_>,
    line: u32,
    prefix: &str,
) -> Result<Option<Token>, String> {
    match prefix {
        "r" | "br" | "rb" => match lexer.peek(0) {
            Some('"' | '#') => raw_string(lexer, line, prefix).map(Some),
            _ => Ok(None),
        },
        "b" => match lexer.peek(0) {
            Some('"') => string_literal(lexer, line, prefix.to_string()).map(Some),
            Some('\'') => {
                lexer.bump();
                char_body(lexer, line, prefix.to_string()).map(Some)
            }
            _ => Ok(None),
        },
        _ => Ok(None),
    }
}

fn block_comment(lexer: &mut Lexer<'_>, line: u32) -> Result<Token, String> {
    let mut text = String::new();
    let mut depth = 0usize;
    loop {
        match (lexer.peek(0), lexer.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                lexer.bump();
                lexer.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push('*');
                text.push('/');
                lexer.bump();
                lexer.bump();
                if depth == 0 {
                    return Ok(Token {
                        kind: TokenKind::BlockComment,
                        text,
                        line,
                    });
                }
            }
            (Some(_), _) => {
                text.push(lexer.bump().unwrap_or('\0'));
            }
            (None, _) => return Err(format!("line {line}: unterminated block comment")),
        }
    }
}

fn string_literal(lexer: &mut Lexer<'_>, line: u32, prefix: String) -> Result<Token, String> {
    let mut text = prefix;
    text.push('"');
    lexer.bump(); // opening quote
    loop {
        match lexer.bump() {
            None => return Err(format!("line {line}: unterminated string literal")),
            Some('\\') => {
                text.push('\\');
                match lexer.bump() {
                    None => return Err(format!("line {line}: unterminated string literal")),
                    Some(e) => text.push(e),
                }
            }
            Some('"') => {
                text.push('"');
                return Ok(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
            }
            Some(c) => text.push(c),
        }
    }
}

fn raw_string(lexer: &mut Lexer<'_>, line: u32, prefix: &str) -> Result<Token, String> {
    let mut text = prefix.to_string();
    let mut hashes = 0usize;
    while lexer.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        lexer.bump();
    }
    if lexer.peek(0) != Some('"') {
        // `r#` that is not a raw string is a raw identifier (`r#type`);
        // re-lex the identifier body after the hash.
        let mut ident = text;
        lexer.take_while(&mut ident, is_ident_continue);
        return Ok(Token {
            kind: TokenKind::Ident,
            text: ident,
            line,
        });
    }
    text.push('"');
    lexer.bump();
    loop {
        match lexer.bump() {
            None => return Err(format!("line {line}: unterminated raw string")),
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && lexer.peek(0) == Some('#') {
                    seen += 1;
                    lexer.bump();
                }
                if seen == hashes {
                    text.push('"');
                    text.push_str(&"#".repeat(hashes));
                    return Ok(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                    });
                }
                text.push('"');
                text.push_str(&"#".repeat(seen));
            }
            Some(c) => text.push(c),
        }
    }
}

fn char_or_lifetime(lexer: &mut Lexer<'_>, line: u32) -> Result<Token, String> {
    lexer.bump(); // opening quote
                  // `'a'` is a char, `'a` (no closing quote right after one ident char
                  // run) is a lifetime; `'\n'` and `''' are chars.
    if matches!(lexer.peek(0), Some(c) if is_ident_start(c)) && lexer.peek(1) != Some('\'') {
        let mut text = String::from("'");
        lexer.take_while(&mut text, is_ident_continue);
        return Ok(Token {
            kind: TokenKind::Lifetime,
            text,
            line,
        });
    }
    char_body(lexer, line, String::new())
}

fn char_body(lexer: &mut Lexer<'_>, line: u32, prefix: String) -> Result<Token, String> {
    let mut text = prefix;
    text.push('\'');
    loop {
        match lexer.bump() {
            None => return Err(format!("line {line}: unterminated char literal")),
            Some('\\') => {
                text.push('\\');
                match lexer.bump() {
                    None => return Err(format!("line {line}: unterminated char literal")),
                    Some(e) => text.push(e),
                }
            }
            Some('\'') => {
                text.push('\'');
                return Ok(Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                });
            }
            Some(c) => text.push(c),
        }
    }
}

fn number(lexer: &mut Lexer<'_>, line: u32) -> Token {
    let mut text = String::new();
    let mut float = false;
    if lexer.peek(0) == Some('0') && matches!(lexer.peek(1), Some('x' | 'o' | 'b')) {
        text.push(lexer.bump().unwrap_or('0'));
        text.push(lexer.bump().unwrap_or('x'));
        lexer.take_while(&mut text, |c| c.is_ascii_hexdigit() || c == '_');
    } else {
        lexer.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        // A `.` continues the literal only when it is not a range (`1..n`)
        // or a method call on the literal (`1.max(x)`).
        if lexer.peek(0) == Some('.')
            && lexer.peek(1) != Some('.')
            && !matches!(lexer.peek(1), Some(c) if is_ident_start(c))
        {
            float = true;
            text.push('.');
            lexer.bump();
            lexer.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        }
        if matches!(lexer.peek(0), Some('e' | 'E'))
            && (matches!(lexer.peek(1), Some(c) if c.is_ascii_digit())
                || (matches!(lexer.peek(1), Some('+' | '-'))
                    && matches!(lexer.peek(2), Some(c) if c.is_ascii_digit())))
        {
            float = true;
            text.push(lexer.bump().unwrap_or('e'));
            lexer.take_while(&mut text, |c| c.is_ascii_digit() || c == '+' || c == '-');
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    let before_suffix = text.len();
    lexer.take_while(&mut text, is_ident_continue);
    let suffix = &text[before_suffix..];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let tokens = tokenize("fn main() {\n    x\n}").unwrap();
        assert_eq!(tokens[0], token(TokenKind::Ident, "fn", 1));
        assert_eq!(tokens[4].text, "{");
        assert_eq!(tokens[5], token(TokenKind::Ident, "x", 2));
        assert_eq!(tokens[6].line, 3);
    }

    fn token(kind: TokenKind, text: &str, line: u32) -> Token {
        Token {
            kind,
            text: text.to_string(),
            line,
        }
    }

    #[test]
    fn line_and_nested_block_comments() {
        let src = "a // trailing f64\n/* outer /* inner */ still comment */ b";
        let tokens = tokenize(src).unwrap();
        assert_eq!(tokens[0].text, "a");
        assert_eq!(tokens[1].kind, TokenKind::LineComment);
        assert!(tokens[1].text.contains("f64"));
        assert_eq!(tokens[2].kind, TokenKind::BlockComment);
        assert!(tokens[2].text.contains("inner"));
        assert_eq!(tokens[3], token(TokenKind::Ident, "b", 2));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* /* */").unwrap_err().contains("unterminated"));
    }

    #[test]
    fn strings_with_escapes_and_raw_fences() {
        let tokens = kinds(r####""a\"b" r"raw" r#"has "quotes""# br##"x"#y"## b"bytes""####);
        assert!(tokens.iter().all(|(k, _)| *k == TokenKind::Str));
        assert_eq!(tokens.len(), 5);
        let t = tokenize(r###"r#"has "quotes""#"###).unwrap();
        assert_eq!(t[0].str_contents(), Some(r#"has "quotes""#));
        let t = tokenize(r#""plain""#).unwrap();
        assert_eq!(t[0].str_contents(), Some("plain"));
    }

    #[test]
    fn forbidden_names_inside_strings_are_strings() {
        // The determinism rule must not fire on these.
        let tokens = kinds(r#"let x = "HashMap::new() SystemTime";"#);
        assert!(!tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let tokens = kinds("r#type r#match");
        assert_eq!(tokens[0], (TokenKind::Ident, "r#type".to_string()));
        assert_eq!(tokens[1], (TokenKind::Ident, "r#match".to_string()));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let tokens = kinds(r"'a' '\n' '\'' 'a 'static b'0'");
        assert_eq!(
            tokens.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn float_vs_integer_literals() {
        let tokens = kinds("1 1.5 1. 1e3 2E-4 1f64 3f32 0xeF 0b10 1..2 1.max(2) 1_000u64");
        let floats: Vec<&str> = tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5", "1.", "1e3", "2E-4", "1f64", "3f32"]);
        // `0xeF` must not read its `e` as an exponent; `1..2` and
        // `1.max(2)` keep their integer receivers.
        assert!(tokens.contains(&(TokenKind::Int, "0xeF".to_string())));
        assert!(tokens.contains(&(TokenKind::Int, "1_000u64".to_string())));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let t = tokenize(r#"b"ab\"c""#).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TokenKind::Str);
        assert_eq!(t[0].str_contents(), Some(r#"ab\"c"#));
        let t = tokenize(r###"br#"raw "bytes""#"###).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].str_contents(), Some(r#"raw "bytes""#));
        // A multi-line raw byte string advances the line counter past it.
        let t = tokenize("br##\"a\nb\"## x").unwrap();
        assert_eq!(t[1], token(TokenKind::Ident, "x", 2));
        // Rule-relevant names inside byte strings must stay string data.
        let t = tokenize(r#"let x = b"HashMap f64";"#).unwrap();
        assert!(!t.iter().any(|tok| tok.is_ident("HashMap")));
        assert!(!t.iter().any(|tok| tok.is_ident("f64")));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// let x = y.unwrap();\n//! inner f64\nfn f() {}";
        let tokens = tokenize(src).unwrap();
        assert_eq!(tokens[0].kind, TokenKind::LineComment);
        assert_eq!(tokens[1].kind, TokenKind::LineComment);
        assert!(!tokens.iter().any(|t| t.is_ident("unwrap")));
    }
}
