//! The audit rule families: **cast** (truncating `as` casts), **unsafe**
//! (workspace-wide unsafe inventory), and **deps** (the std-only
//! dependency guarantee).
//!
//! - **cast** — an `as` cast to a ≤32-bit integer type inside the
//!   exactness-scoped crates is a finding unless annotated with
//!   `// lint: allow(cast) <reason>`: a silently truncated length or
//!   coefficient feeding exact `Ratio` arithmetic is precisely the drift
//!   the paper's rational guarantees forbid. Casts to `u64`/`i64` are
//!   gated only inside exact-path functions (the item layer's
//!   `Ratio`-reachability closure) — that is where the workspace's
//!   `i128` accumulators live, so those are the casts that can narrow.
//!   Casts from an in-range integer literal (`255 as u8`) pass: the
//!   value is visible and fits.
//! - **unsafe** — any `unsafe` token in scope is a finding unless the
//!   file is allowlisted in `lint.toml`. The workspace is
//!   `#![forbid(unsafe_code)]` everywhere today, so the allowlist is
//!   empty and this rule pins that state: introducing the first unsafe
//!   block is a reviewed, config-visible event, not a drive-by.
//! - **deps** — parses every `Cargo.toml` (the same deliberately small
//!   TOML subset as `lint.toml`) and flags any `[dependencies]` /
//!   `[dev-dependencies]` / `[build-dependencies]` /
//!   `[workspace.dependencies]` entry that is not a workspace-internal
//!   `path`/`workspace = true` reference. The build must stay std-only
//!   and offline; a `version = "…"` dependency would not even resolve in
//!   the build environment, and this turns that from a confusing network
//!   error into a lint finding with a line number.

use std::collections::BTreeSet;

use crate::config::RuleConfig;
use crate::items::{FnId, ItemIndex};
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};

/// Integer targets always gated in scope: anything could overflow 32 bits.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Integer targets gated only on the exact path, where `i128` lives.
const WIDE_TARGETS: &[&str] = &["u64", "i64"];

/// **cast** — truncating `as` casts in the exactness-scoped crates.
pub fn check_cast(
    file: &SourceFile,
    cfg: &RuleConfig,
    items: &ItemIndex,
    exact: &BTreeSet<FnId>,
) -> Vec<Finding> {
    if !cfg.applies_to(&file.path) {
        return Vec::new();
    }
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut findings = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if !token.is_ident("as") {
            continue;
        }
        let Some(target) = code.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let narrow = NARROW_TARGETS.contains(&target.text.as_str());
        let wide = WIDE_TARGETS.contains(&target.text.as_str());
        if !narrow && !wide {
            continue;
        }
        if wide {
            let on_exact = items
                .enclosing_fn(token.line)
                .is_some_and(|f| exact.contains(&(file.path.clone(), f.name.clone())));
            if !on_exact {
                continue;
            }
        }
        // A literal source whose value visibly fits the target is safe.
        if i > 0
            && code[i - 1].kind == TokenKind::Int
            && literal_fits(&code[i - 1].text, &target.text)
        {
            continue;
        }
        if file.is_allowed("cast", token.line) {
            continue;
        }
        findings.push(Finding::new(
            "cast",
            &file.path,
            token.line,
            format!(
                "`as {}` may truncate toward the exact path — use try_from / From, \
                 or annotate with `// lint: allow(cast) <why the value fits>`",
                target.text
            ),
        ));
    }
    findings
}

/// Whether the integer literal `text` provably fits `target`.
fn literal_fits(text: &str, target: &str) -> bool {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = cleaned.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        (bin, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    let digits: String = digits.chars().take_while(|c| c.is_digit(radix)).collect();
    let Ok(value) = u128::from_str_radix(&digits, radix) else {
        return false;
    };
    let max: u128 = match target {
        "u8" => u128::from(u8::MAX),
        "u16" => u128::from(u16::MAX),
        "u32" => u128::from(u32::MAX),
        "u64" => u128::from(u64::MAX),
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        "i64" => i64::MAX as u128,
        _ => return false,
    };
    value <= max
}

/// **unsafe** — any `unsafe` token in scope is a finding unless the file
/// is allowlisted (today: nothing is).
pub fn check_unsafe(file: &SourceFile, cfg: &RuleConfig, items: &ItemIndex) -> Vec<Finding> {
    if !cfg.applies_to(&file.path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (_, token) in file.code_tokens() {
        if !token.is_ident("unsafe") {
            continue;
        }
        let host = items
            .enclosing_fn(token.line)
            .map_or(String::new(), |f| format!(" in fn `{}`", f.name));
        findings.push(Finding::new(
            "unsafe",
            &file.path,
            token.line,
            format!(
                "`unsafe`{host}: the workspace is #![forbid(unsafe_code)] everywhere — \
                 an unsafe block must be allowlisted in lint.toml with its audit trail"
            ),
        ));
    }
    findings
}

// ---------------------------------------------------------------------------
// Dependency audit
// ---------------------------------------------------------------------------

/// One parsed dependency entry of a `Cargo.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEntry {
    /// The manifest's workspace-relative path.
    pub manifest: String,
    /// The dependency name (the key, or the `[dependencies.<name>]`
    /// header segment).
    pub name: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// Whether the entry is workspace-internal (`workspace = true` or a
    /// `path = "…"` table).
    pub internal: bool,
}

/// Parses the dependency sections of one `Cargo.toml`. Only the subset
/// the workspace uses is understood — `name = { workspace = true }`,
/// `name = { path = "…", … }`, `name = "version"`, and
/// `[dependencies.<name>]` subsections — which is exactly enough, since
/// anything fancier is an external dependency and a finding anyway.
#[must_use]
pub fn parse_manifest_deps(manifest: &str, text: &str) -> Vec<DepEntry> {
    let mut entries = Vec::new();
    let mut in_dep_section = false;
    // A `[dependencies.<name>]` subsection accumulates into this entry
    // until the next section header.
    let mut open_subsection: Option<DepEntry> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            if let Some(done) = open_subsection.take() {
                entries.push(done);
            }
            let header = header.trim_end_matches(']').trim();
            let is_dep_table = |name: &str| {
                matches!(
                    name,
                    "dependencies"
                        | "dev-dependencies"
                        | "build-dependencies"
                        | "workspace.dependencies"
                )
            };
            if is_dep_table(header) {
                in_dep_section = true;
            } else if let Some((table, name)) = header.rsplit_once('.') {
                if is_dep_table(table) {
                    open_subsection = Some(DepEntry {
                        manifest: manifest.to_string(),
                        name: name.to_string(),
                        line: (i + 1) as u32,
                        internal: false,
                    });
                }
                in_dep_section = false;
            } else {
                in_dep_section = false;
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some(sub) = open_subsection.as_mut() {
            if key == "workspace" && value == "true" {
                sub.internal = true;
            }
            if key == "path" {
                sub.internal = true;
            }
            continue;
        }
        if in_dep_section {
            let internal = value.contains("workspace = true") || value.contains("path =");
            entries.push(DepEntry {
                manifest: manifest.to_string(),
                name: key.trim_matches('"').to_string(),
                line: (i + 1) as u32,
                internal,
            });
        }
    }
    if let Some(done) = open_subsection.take() {
        entries.push(done);
    }
    entries
}

/// Removes a trailing `#` comment from a manifest line, respecting
/// double-quoted strings.
fn strip_toml_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_string = false;
    for c in line.chars() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => break,
            _ => {}
        }
        out.push(c);
    }
    out
}

/// **deps** — every non-internal dependency entry is a finding.
#[must_use]
pub fn check_deps(entries: &[DepEntry]) -> Vec<Finding> {
    entries
        .iter()
        .filter(|e| !e.internal)
        .map(|e| {
            Finding::new(
                "deps",
                &e.manifest,
                e.line,
                format!(
                    "dependency `{}` is not a workspace-internal path dependency — \
                     the build is std-only and offline (DESIGN.md §7)",
                    e.name
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::items::exact_path;

    fn cast_findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/lib.rs", src).unwrap();
        let items = ItemIndex::build(&file);
        let files = vec![("crates/x/src/lib.rs", &items, &file)];
        let exact = exact_path(&files, &["Ratio"]);
        let cfg = Config::parse("[rule.cast]\nscope = [\"crates\"]\n").unwrap();
        check_cast(&file, &cfg.rule("cast"), &items, &exact)
    }

    #[test]
    fn narrow_casts_flagged_everywhere_in_scope() {
        let findings = cast_findings("fn f(n: usize) -> u32 { n as u32 }\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("as u32"));
    }

    #[test]
    fn wide_casts_gated_only_on_exact_path() {
        let src = "fn exact(r: Ratio, n: i128) -> i64 { n as i64 }\n\
                   fn plain(n: usize) -> u64 { n as u64 }\n";
        let findings = cast_findings(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn fitting_literals_and_annotations_pass() {
        let findings = cast_findings("fn f() -> u8 { 255 as u8 }\n");
        assert!(findings.is_empty(), "{findings:?}");
        let findings = cast_findings("fn f() -> u8 { 256 as u8 }\n");
        assert_eq!(findings.len(), 1, "256 does not fit u8");
        let findings = cast_findings(
            "fn f(n: usize) -> u32 {\n\
             n as u32 // lint: allow(cast) n <= 64 vertices by construction\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn widening_and_usize_casts_pass() {
        let findings = cast_findings("fn f(n: u8, m: u32) -> usize { n as usize + m as usize }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_flagged_with_enclosing_fn() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn fast(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .unwrap();
        let items = ItemIndex::build(&file);
        let cfg = Config::parse("[rule.unsafe]\nscope = [\"crates\"]\n").unwrap();
        let findings = check_unsafe(&file, &cfg.rule("unsafe"), &items);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("fn `fast`"));
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_a_finding() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn ok() {}\n",
        )
        .unwrap();
        let items = ItemIndex::build(&file);
        let cfg = Config::parse("[rule.unsafe]\nscope = [\"crates\"]\n").unwrap();
        assert!(check_unsafe(&file, &cfg.rule("unsafe"), &items).is_empty());
    }

    #[test]
    fn manifest_deps_parse_and_audit() {
        let toml = r#"
[package]
name = "defender-x"

[dependencies]
defender-num = { workspace = true }
defender-obs = { path = "../obs" }
serde = "1.0"               # external: finding
rand = { version = "0.8" }

[dependencies.libc]
version = "0.2"

[dev-dependencies]
defender-game = { workspace = true }

[features]
default = []
"#;
        let entries = parse_manifest_deps("crates/x/Cargo.toml", toml);
        let names: Vec<(&str, bool)> = entries
            .iter()
            .map(|e| (e.name.as_str(), e.internal))
            .collect();
        assert_eq!(
            names,
            vec![
                ("defender-num", true),
                ("defender-obs", true),
                ("serde", false),
                ("rand", false),
                ("libc", false),
                ("defender-game", true),
            ]
        );
        let findings = check_deps(&entries);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "deps"));
        assert!(findings[0].message.contains("serde"));
    }

    #[test]
    fn workspace_dependencies_table_audited() {
        let toml = "[workspace.dependencies]\n\
                    defender-num = { path = \"crates/num\", version = \"0.1.0\" }\n\
                    regex = \"1\"\n";
        let entries = parse_manifest_deps("Cargo.toml", toml);
        let findings = check_deps(&entries);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("regex"));
    }
}
