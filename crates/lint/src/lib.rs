//! defender-lint: zero-dependency static analysis for the workspace.
//!
//! The reproduction rests on invariants `rustc` cannot see: exact `Ratio`
//! arithmetic must never silently mix with floats (the NE probabilities of
//! Π_k(G) are rationals by Theorem 1 of the paper), deterministic replay
//! forbids wall clock and hash-order containers in library crates, every
//! potential panic site in a library crate must be justified, and every
//! obs metric name must be registered, documented, and consistent with the
//! committed bench baselines. `defender lint` machine-checks all four on
//! every commit.
//!
//! The analysis is deliberately **token-level** (a hand-rolled lexer, no
//! `syn`, no rustc): see [`rules`] and DESIGN.md §12 for the soundness
//! caveats this buys the zero-dependency build. v2 adds an **item layer**
//! ([`items`]) — item extents and an approximate intra-crate call graph —
//! so the newer rule families ([`concurrency`], [`panic2`], [`audit`]) can
//! gate by *function* (is this on the exact `Ratio` path? which fn hosts
//! this spawn?) instead of flagging every token uniformly. A final
//! suppression-ageing pass turns every `// lint: allow(…)` that suppressed
//! nothing into an `unused_allow` finding, so annotations cannot outlive
//! the code they justified.
//!
//! Exit codes: `0` clean, `2` findings, `1` usage or I/O error.

pub mod audit;
pub mod concurrency;
pub mod config;
pub mod items;
pub mod panic2;
pub mod rules;
pub mod source;
pub mod tokenizer;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use defender_obs::json::{JsonArray, JsonObject};

use concurrency::ConcurrencyStats;
use config::Config;
use items::{FnId, ItemIndex};
use panic2::Panic2Stats;
use rules::{Finding, MetricUse, MetricsInputs, PanicStats};
use source::SourceFile;

/// The outcome of linting a workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files tokenized.
    pub files_scanned: u64,
    /// Panic-site classification totals.
    pub panic: PanicStats,
    /// Panic-propagation v2 site totals (exact-path gating).
    pub panic2: Panic2Stats,
    /// Concurrency-rule site totals.
    pub concurrency: ConcurrencyStats,
    /// Functions on the exact path (per-crate `Ratio` closures, merged).
    pub exact_fns: u64,
    /// Every metric call site seen (also drives `--dump-registry`).
    pub metric_uses: Vec<MetricUse>,
}

impl LintReport {
    /// Findings per rule family, for counters and the summary line.
    #[must_use]
    pub fn by_rule(&self) -> BTreeMap<&str, u64> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        out
    }

    /// Human-readable rendering: one `path:line: [rule] message` per
    /// finding plus a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        let per_rule: Vec<String> = self
            .by_rule()
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        let breakdown = if per_rule.is_empty() {
            String::new()
        } else {
            format!(" ({})", per_rule.join(", "))
        };
        out.push_str(&format!(
            "lint: {} finding(s){} in {} file(s); panic sites: {} ({} annotated), \
             index sites: {}\n",
            self.findings.len(),
            breakdown,
            self.files_scanned,
            self.panic.sites,
            self.panic.annotated,
            self.panic.index_sites,
        ));
        out.push_str(&format!(
            "lint: exact path: {} fn(s), {} gated site(s) ({} annotated), \
             {} site(s) outside; ordering sites: {}, lock sites: {}, spawn sites: {}\n",
            self.exact_fns,
            self.panic2.sites_exact,
            self.panic2.annotated,
            self.panic2.sites_outside_exact,
            self.concurrency.ordering_sites,
            self.concurrency.lock_sites,
            self.concurrency.spawn_sites,
        ));
        out
    }

    /// Machine-readable rendering (stable JSON, same writer as the obs
    /// registry export).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut findings = JsonArray::new();
        for f in &self.findings {
            let mut o = JsonObject::new();
            o.field_str("rule", &f.rule);
            o.field_str("path", &f.path);
            o.field_u64("line", u64::from(f.line));
            o.field_str("message", &f.message);
            findings.push_raw(&o.finish());
        }
        let mut panic = JsonObject::new();
        panic.field_u64("sites", self.panic.sites);
        panic.field_u64("annotated", self.panic.annotated);
        panic.field_u64("index_sites", self.panic.index_sites);
        let mut panic2 = JsonObject::new();
        panic2.field_u64("exact_fns", self.exact_fns);
        panic2.field_u64("sites_exact", self.panic2.sites_exact);
        panic2.field_u64("annotated", self.panic2.annotated);
        panic2.field_u64("sites_outside_exact", self.panic2.sites_outside_exact);
        let mut conc = JsonObject::new();
        conc.field_u64("ordering_sites", self.concurrency.ordering_sites);
        conc.field_u64("lock_sites", self.concurrency.lock_sites);
        conc.field_u64("spawn_sites", self.concurrency.spawn_sites);
        let mut root = JsonObject::new();
        root.field_u64("files_scanned", self.files_scanned);
        root.field_raw("findings", &findings.finish());
        root.field_raw("panic", &panic.finish());
        root.field_raw("panic2", &panic2.finish());
        root.field_raw("concurrency", &conc.finish());
        root.finish()
    }

    /// A `BENCH_lint.json`-shaped sidecar document (RunReport schema), so
    /// lint runs can be diffed by `defender bench diff` like any
    /// experiment.
    #[must_use]
    pub fn sidecar_json(&self) -> String {
        let by_rule = self.by_rule();
        let count = |rule: &str| by_rule.get(rule).copied().unwrap_or(0);
        let mut counters = JsonObject::new();
        counters.field_u64("lint.files_scanned", self.files_scanned);
        counters.field_u64("lint.findings.annotation", count("annotation"));
        counters.field_u64("lint.findings.cast", count("cast"));
        counters.field_u64("lint.findings.concurrency", count("concurrency"));
        counters.field_u64("lint.findings.deps", count("deps"));
        counters.field_u64("lint.findings.determinism", count("determinism"));
        counters.field_u64("lint.findings.exactness", count("exactness"));
        counters.field_u64("lint.findings.metrics", count("metrics"));
        counters.field_u64("lint.findings.panic", count("panic"));
        counters.field_u64("lint.findings.panic2", count("panic2"));
        counters.field_u64("lint.findings.unsafe", count("unsafe"));
        counters.field_u64("lint.findings.unused_allow", count("unused_allow"));
        let mut root = JsonObject::new();
        root.field_str("experiment", "lint");
        root.field_raw("phases", "[]");
        root.field_raw("counters", &counters.finish());
        root.finish()
    }
}

/// Records the run's totals in the process-wide obs registry (the
/// `lint.*` counters), so embedding contexts that harvest snapshots see
/// lint runs like any other instrumented phase.
fn record_obs_counters(report: &LintReport) {
    let by_rule = report.by_rule();
    let count = |rule: &str| by_rule.get(rule).copied().unwrap_or(0);
    defender_obs::counter!("lint.files_scanned").add(report.files_scanned);
    defender_obs::counter!("lint.findings.annotation").add(count("annotation"));
    defender_obs::counter!("lint.findings.cast").add(count("cast"));
    defender_obs::counter!("lint.findings.concurrency").add(count("concurrency"));
    defender_obs::counter!("lint.findings.deps").add(count("deps"));
    defender_obs::counter!("lint.findings.determinism").add(count("determinism"));
    defender_obs::counter!("lint.findings.exactness").add(count("exactness"));
    defender_obs::counter!("lint.findings.metrics").add(count("metrics"));
    defender_obs::counter!("lint.findings.panic").add(count("panic"));
    defender_obs::counter!("lint.findings.panic2").add(count("panic2"));
    defender_obs::counter!("lint.findings.unsafe").add(count("unsafe"));
    defender_obs::counter!("lint.findings.unused_allow").add(count("unused_allow"));
}

// ---------------------------------------------------------------------------
// Workspace loading
// ---------------------------------------------------------------------------

/// Collects every library `.rs` file under `<root>/crates/*/src` (and
/// `<root>/src` if present), as sorted workspace-relative paths. `tests/`,
/// `benches/` and `examples/` trees are intentionally out of scope: the
/// rules govern library code.
///
/// # Errors
///
/// Propagates filesystem errors with the offending path.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut src_roots: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let src = entry.join("src");
            if src.is_dir() {
                src_roots.push(src);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_roots.push(root_src);
    }
    let mut files = Vec::new();
    for src in src_roots {
        collect_rs(&src, &mut files)?;
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).map(Path::to_path_buf).ok())
        .collect();
    rel.sort();
    Ok(rel)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path rendered workspace-relative with `/` separators (the form the
/// config's prefix matching and the reports use).
fn rel_str(path: &Path) -> String {
    let s = path.to_string_lossy().into_owned();
    if std::path::MAIN_SEPARATOR == '/' {
        s
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// The crate-grouping key of a workspace-relative path:
/// `crates/num/src/ratio.rs` → `crates/num`, a root `src/main.rs` → `src`.
/// The call graph and exact-path closure are built per crate — calls do
/// not resolve across crate boundaries at the token level.
fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(krate)) => format!("crates/{krate}"),
        (Some(first), _) => first.to_string(),
        (None, _) => String::new(),
    }
}

/// Runs every rule over the workspace at `root` with `config`.
///
/// Three passes: load + item-index every file, close the per-crate exact
/// paths over the call graphs, then run the rule families (the item-aware
/// ones consult the exact set) followed by the suppression-ageing,
/// dependency and metrics audits.
///
/// # Errors
///
/// Fails on I/O errors, tokenizer errors (a file the lexer cannot read is
/// a finding-grade event but reported as an error since nothing else can
/// be trusted), and a malformed metrics registry.
pub fn lint(root: &Path, config: &Config) -> Result<LintReport, String> {
    let exactness = config.rule("exactness");
    let determinism = config.rule("determinism");
    let panic_rule = config.rule("panic");
    let concurrency_rule = config.rule("concurrency");
    let panic2_rule = config.rule("panic2");
    let cast_rule = config.rule("cast");
    let unsafe_rule = config.rule("unsafe");
    let metrics = config.rule("metrics");

    // Pass 1: load and item-index every file.
    let mut loaded: Vec<(SourceFile, ItemIndex)> = Vec::new();
    for rel in workspace_files(root)? {
        let rel_name = rel_str(&rel);
        let text = fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel_name}: {e}"))?;
        let file = SourceFile::parse(&rel_name, &text)
            .map_err(|e| format!("{rel_name}: tokenizer: {e}"))?;
        let index = ItemIndex::build(&file);
        loaded.push((file, index));
    }

    // Pass 2: per-crate exact-path closures, merged (FnIds carry paths, so
    // the union is unambiguous).
    let mut exact: BTreeSet<FnId> = BTreeSet::new();
    let mut crates: BTreeMap<String, Vec<(&str, &ItemIndex, &SourceFile)>> = BTreeMap::new();
    for (file, index) in &loaded {
        crates
            .entry(crate_key(&file.path))
            .or_default()
            .push((file.path.as_str(), index, file));
    }
    for files in crates.values() {
        exact.extend(items::exact_path(files, &["Ratio"]));
    }

    // Pass 3: the rule families, then suppression ageing per file (every
    // rule that consults annotations has run on the file by then).
    let mut report = LintReport {
        exact_fns: exact.len() as u64,
        ..LintReport::default()
    };
    for (file, index) in &loaded {
        report.files_scanned += 1;
        report.findings.extend(rules::check_annotations(file));
        report
            .findings
            .extend(rules::check_exactness(file, &exactness));
        report
            .findings
            .extend(rules::check_determinism(file, &determinism));
        let (panic_findings, stats) = rules::check_panic(file, &panic_rule);
        report.findings.extend(panic_findings);
        report.panic.sites += stats.sites;
        report.panic.annotated += stats.annotated;
        report.panic.index_sites += stats.index_sites;
        let (conc_findings, conc_stats) =
            concurrency::check_concurrency(file, &concurrency_rule, index);
        report.findings.extend(conc_findings);
        report.concurrency.ordering_sites += conc_stats.ordering_sites;
        report.concurrency.lock_sites += conc_stats.lock_sites;
        report.concurrency.spawn_sites += conc_stats.spawn_sites;
        let (p2_findings, p2_stats) = panic2::check_panic2(file, &panic2_rule, index, &exact);
        report.findings.extend(p2_findings);
        report.panic2.sites_exact += p2_stats.sites_exact;
        report.panic2.annotated += p2_stats.annotated;
        report.panic2.sites_outside_exact += p2_stats.sites_outside_exact;
        report
            .findings
            .extend(audit::check_cast(file, &cast_rule, index, &exact));
        report
            .findings
            .extend(audit::check_unsafe(file, &unsafe_rule, index));
        if metrics.applies_to(&file.path) {
            report.metric_uses.extend(rules::extract_metric_uses(file));
        }
        for allow in file.unused_allows() {
            report.findings.push(Finding::new(
                "unused_allow",
                &file.path,
                allow.line,
                format!(
                    "`// lint: allow({})` suppressed no finding — the covered code \
                     was fixed or the annotation drifted; delete it (reason was: {})",
                    allow.rule, allow.reason
                ),
            ));
        }
    }

    // Dependency audit over every manifest.
    for (manifest, text) in workspace_manifests(root)? {
        let entries = audit::parse_manifest_deps(&manifest, &text);
        report.findings.extend(audit::check_deps(&entries));
    }

    let inputs = load_metrics_inputs(root, &metrics)?;
    report
        .findings
        .extend(rules::check_metrics(&report.metric_uses, &inputs));

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    record_obs_counters(&report);
    Ok(report)
}

/// Collects `(workspace-relative path, text)` of the root `Cargo.toml` and
/// every `crates/*/Cargo.toml`, for the dependency audit.
fn workspace_manifests(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut manifests = Vec::new();
    let root_toml = root.join("Cargo.toml");
    if root_toml.is_file() {
        let text =
            fs::read_to_string(&root_toml).map_err(|e| format!("cannot read Cargo.toml: {e}"))?;
        manifests.push(("Cargo.toml".to_string(), text));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let toml = entry.join("Cargo.toml");
            if !toml.is_file() {
                continue;
            }
            let rel = toml
                .strip_prefix(root)
                .map_or_else(|_| toml.clone(), Path::to_path_buf);
            let text = fs::read_to_string(&toml)
                .map_err(|e| format!("cannot read {}: {e}", toml.display()))?;
            manifests.push((rel_str(&rel), text));
        }
    }
    Ok(manifests)
}

/// Reads the registry, documentation and baseline files named by the
/// `[rule.metrics]` section.
fn load_metrics_inputs(root: &Path, cfg: &config::RuleConfig) -> Result<MetricsInputs, String> {
    let mut inputs = MetricsInputs::default();
    let Some(registry_rel) = cfg.extra_one("registry") else {
        return Ok(inputs); // no registry configured → audit disabled
    };
    inputs.registry_path = registry_rel.to_string();
    let registry_text = fs::read_to_string(root.join(registry_rel))
        .map_err(|e| format!("cannot read {registry_rel}: {e}"))?;
    inputs.registry =
        rules::parse_registry(&registry_text).map_err(|e| format!("{registry_rel}: {e}"))?;
    for doc in cfg.extra.get("docs").map(Vec::as_slice).unwrap_or(&[]) {
        let text =
            fs::read_to_string(root.join(doc)).map_err(|e| format!("cannot read {doc}: {e}"))?;
        inputs.docs.push((doc.clone(), text));
    }
    for dir in cfg.extra.get("baselines").map(Vec::as_slice).unwrap_or(&[]) {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        for path in read_dir_sorted(&dir_path)? {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let keys =
                baseline_counter_keys(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            inputs.baselines.push((format!("{dir}/{name}"), keys));
        }
    }
    Ok(inputs)
}

/// The counter-valued key names of a `BENCH_*.json` sidecar: the
/// `counters`, `parallelism` and `profile` objects.
fn baseline_counter_keys(text: &str) -> Result<Vec<String>, String> {
    let doc = defender_obs::json::parse(text)?;
    let mut keys = Vec::new();
    for section in ["counters", "parallelism", "profile"] {
        if let Some(fields) = doc.get(section).and_then(|v| v.as_object()) {
            keys.extend(fields.iter().map(|(k, _)| k.clone()));
        }
    }
    Ok(keys)
}

// ---------------------------------------------------------------------------
// Command-line driver (shared by the standalone binary and `defender lint`)
// ---------------------------------------------------------------------------

const USAGE: &str = "\
usage: defender-lint [options]
  --root <dir>      workspace root (default: nearest ancestor with lint.toml)
  --config <file>   config path (default: <root>/lint.toml)
  --format <f>      text | json   (default: text)
  --sidecar         also write BENCH_lint.json in the current directory
  --dump-registry   print a metrics_registry.txt for the workspace's
                    current call sites and exit
exit status: 0 clean, 2 findings, 1 error";

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    sidecar: bool,
    dump_registry: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value".to_string())?;
                opts.root = Some(PathBuf::from(v));
            }
            "--config" => {
                let v = it.next().ok_or("--config needs a value".to_string())?;
                opts.config = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value".to_string())?;
                opts.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--sidecar" => opts.sidecar = true,
            "--dump-registry" => opts.dump_registry = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// containing `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found above {} (pass --root)",
                    start.display()
                ));
            }
        }
    }
}

/// A registry document inferred from the workspace's current call sites
/// (sorted, deduplicated). Dynamic metrics cannot be inferred from static
/// text — append their wildcard lines by hand.
#[must_use]
pub fn dump_registry(uses: &[MetricUse]) -> String {
    let mut lines: Vec<String> = uses
        .iter()
        .map(|u| format!("{} {}", u.kind.label(), u.name))
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# Metric registry: every obs name the workspace may emit.\n\
         # Format: <kind> <name> [dynamic]   — `*` suffix = prefix wildcard.\n\
         # Checked by `defender lint`; regenerate the static part with\n\
         # `defender lint --dump-registry` (dynamic lines are hand-kept).\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Runs the lint CLI with `args` (without the program name), printing to
/// stdout, and returns the intended exit code.
///
/// # Errors
///
/// Usage and I/O problems (exit code 1 at the callers).
pub fn run(args: &[String]) -> Result<u8, String> {
    let opts = parse_options(args)?;
    defender_obs::enable();
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_root()?,
    };
    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let config_text = fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config =
        Config::parse(&config_text).map_err(|e| format!("{}: {e}", config_path.display()))?;
    let report = lint(&root, &config)?;
    if opts.dump_registry {
        print!("{}", dump_registry(&report.metric_uses));
        return Ok(0);
    }
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if opts.sidecar {
        let path = PathBuf::from("BENCH_lint.json");
        fs::write(&path, report.sidecar_json() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        // stderr, so `--format json` stdout stays machine-parseable.
        eprintln!("wrote {}", path.display());
    }
    Ok(if report.findings.is_empty() { 0 } else { 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_text_and_json() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "panic".into(),
                path: "crates/x/src/a.rs".into(),
                line: 7,
                message: "boom".into(),
            }],
            files_scanned: 3,
            panic: PanicStats {
                sites: 2,
                annotated: 1,
                index_sites: 5,
            },
            ..LintReport::default()
        };
        let text = report.render_text();
        assert!(text.contains("crates/x/src/a.rs:7: [panic] boom"));
        assert!(text.contains("1 finding(s) (panic: 1) in 3 file(s)"));
        let json = defender_obs::json::parse(&report.render_json()).unwrap();
        assert_eq!(json.get("files_scanned").and_then(|v| v.as_u64()), Some(3));
        let sidecar = defender_obs::json::parse(&report.sidecar_json()).unwrap();
        assert_eq!(
            sidecar
                .get("counters")
                .and_then(|c| c.get("lint.findings.panic"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            sidecar.get("experiment").and_then(|v| v.as_str()),
            Some("lint")
        );
    }

    #[test]
    fn options_parse_and_reject() {
        let ok = parse_options(&["--format".into(), "json".into(), "--sidecar".into()]).unwrap();
        assert!(ok.json && ok.sidecar);
        assert!(parse_options(&["--format".into()]).is_err());
        assert!(parse_options(&["--wat".into()]).is_err());
    }

    #[test]
    fn dump_registry_sorts_and_dedups() {
        let mk = |kind, name: &str| MetricUse {
            kind,
            name: name.into(),
            path: "p".into(),
            line: 1,
        };
        let out = dump_registry(&[
            mk(rules::MetricKind::Span, "z"),
            mk(rules::MetricKind::Counter, "a.b"),
            mk(rules::MetricKind::Counter, "a.b"),
        ]);
        let body: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body, vec!["counter a.b", "span z"]);
    }
}
