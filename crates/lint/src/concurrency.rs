//! **concurrency** — synchronization discipline for the concurrent
//! subsystems (`par` workers, the `sweep` orchestrator, the `serve`
//! batching front, the `obs` registries).
//!
//! Three checks, all token-level over non-test code, all suppressable
//! per-site with the annotation grammar or per-file with `lint.toml`
//! keys on `[rule.concurrency]`:
//!
//! - **atomic orderings** — `Ordering::Relaxed` and `Ordering::SeqCst`
//!   are findings unless the file is listed under `ordering_allow` (for
//!   modules like the obs counters where relaxed monotone counters are
//!   the documented design) or the site carries
//!   `// lint: allow(ordering) <reason>`. `Acquire`/`Release`/`AcqRel`
//!   pass: they state *which* edge they order; `Relaxed` claims no edge
//!   is needed and `SeqCst` claims not to know which — both are exactly
//!   the claims that silently drift a replayed solve from the oracle,
//!   so both must be argued in writing.
//! - **lock poison recovery** — an argless `.lock()` / `.read()` /
//!   `.write()` call must recover poisoning via
//!   `PoisonError::into_inner` in the same expression (the workspace
//!   idiom: `.unwrap_or_else(PoisonError::into_inner)`), or carry
//!   `// lint: allow(lock) <reason>`. A poisoned-mutex panic in one
//!   worker must not cascade into every later request.
//! - **thread spawns** — `thread::spawn` / `thread::scope` /
//!   `thread::Builder` sites are confined to the path prefixes listed
//!   under `spawn_allow` (the crates whose *job* is thread management);
//!   anywhere else needs `// lint: allow(spawn) <reason>`.

use crate::config::RuleConfig;
use crate::items::ItemIndex;
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};

/// How many following code tokens the lock check scans for the
/// `into_inner` recovery before demanding an annotation. The fully
/// qualified workspace idiom `.lock().unwrap_or_else(std::sync::
/// PoisonError::into_inner)` spans 17 tokens (each `::` is two), so the
/// window leaves headroom without reaching into the next statement.
const LOCK_RECOVERY_WINDOW: usize = 24;

/// Site counts the concurrency rule reports alongside its findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// `Ordering::Relaxed` / `Ordering::SeqCst` sites in scope.
    pub ordering_sites: u64,
    /// Argless `.lock()` / `.read()` / `.write()` sites in scope.
    pub lock_sites: u64,
    /// `thread::spawn` / `thread::scope` / `thread::Builder` sites.
    pub spawn_sites: u64,
}

/// Runs the concurrency checks over one file.
pub fn check_concurrency(
    file: &SourceFile,
    cfg: &RuleConfig,
    items: &ItemIndex,
) -> (Vec<Finding>, ConcurrencyStats) {
    let mut stats = ConcurrencyStats::default();
    if !cfg.applies_to(&file.path) {
        return (Vec::new(), stats);
    }
    let ordering_allowed_file = prefix_listed(cfg, "ordering_allow", &file.path);
    let spawn_allowed_file = prefix_listed(cfg, "spawn_allow", &file.path);
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut findings = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if let Some(which) = relaxed_or_seqcst(&code, i) {
            stats.ordering_sites += 1;
            if !ordering_allowed_file && !file.is_allowed("ordering", token.line) {
                findings.push(Finding::new(
                    "concurrency",
                    &file.path,
                    token.line,
                    format!(
                        "`Ordering::{which}` needs a written reason: annotate with \
                         `// lint: allow(ordering) <why this ordering is sufficient>` \
                         or list the file under [rule.concurrency] ordering_allow"
                    ),
                ));
            }
        }
        if let Some(method) = argless_guard_call(&code, i) {
            stats.lock_sites += 1;
            let recovered = code[i..]
                .iter()
                .take(LOCK_RECOVERY_WINDOW)
                .any(|t| t.is_ident("into_inner"));
            if !recovered && !file.is_allowed("lock", token.line) {
                findings.push(Finding::new(
                    "concurrency",
                    &file.path,
                    token.line,
                    format!(
                        ".{method}() does not recover poison — chain \
                         `.unwrap_or_else(PoisonError::into_inner)` or annotate with \
                         `// lint: allow(lock) <reason>`"
                    ),
                ));
            }
        }
        if let Some(what) = thread_spawn(&code, i) {
            stats.spawn_sites += 1;
            if !spawn_allowed_file && !file.is_allowed("spawn", token.line) {
                let host = items
                    .enclosing_fn(token.line)
                    .map_or(String::new(), |f| format!(" (in fn `{}`)", f.name));
                findings.push(Finding::new(
                    "concurrency",
                    &file.path,
                    token.line,
                    format!(
                        "thread::{what}{host} outside the spawn-allowed crates — \
                         route the work through defender-par, or annotate with \
                         `// lint: allow(spawn) <reason>`"
                    ),
                ));
            }
        }
    }
    (findings, stats)
}

/// Whether `path` starts with any prefix of the rule's `key` list.
fn prefix_listed(cfg: &RuleConfig, key: &str, path: &str) -> bool {
    cfg.extra
        .get(key)
        .is_some_and(|prefixes| prefixes.iter().any(|p| path.starts_with(p.as_str())))
}

/// `Ordering :: Relaxed` / `Ordering :: SeqCst` with the match anchored on
/// the `Ordering` ident (so `cmp::Ordering::Less` never matches — the
/// variant name decides).
fn relaxed_or_seqcst(code: &[&Token], i: usize) -> Option<&'static str> {
    if !code[i].is_ident("Ordering")
        || !code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        || !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        return None;
    }
    let variant = code.get(i + 3)?;
    if variant.is_ident("Relaxed") {
        Some("Relaxed")
    } else if variant.is_ident("SeqCst") {
        Some("SeqCst")
    } else {
        None
    }
}

/// `. lock ( )` / `. read ( )` / `. write ( )` — the argless guard
/// acquisitions. `Read::read(&mut buf)` and friends take arguments, so
/// requiring the immediately-closing paren screens out the io traits.
fn argless_guard_call(code: &[&Token], i: usize) -> Option<&'static str> {
    if !code[i].is_punct('.') {
        return None;
    }
    let callee = code.get(i + 1)?;
    let method = if callee.is_ident("lock") {
        "lock"
    } else if callee.is_ident("read") {
        "read"
    } else if callee.is_ident("write") {
        "write"
    } else {
        return None;
    };
    if code.get(i + 2).is_some_and(|t| t.is_punct('('))
        && code.get(i + 3).is_some_and(|t| t.is_punct(')'))
    {
        Some(method)
    } else {
        None
    }
}

/// `thread :: spawn` / `thread :: scope` / `thread :: Builder` — anchored
/// on the `thread` path segment, so a local method named `spawn` does not
/// match.
fn thread_spawn(code: &[&Token], i: usize) -> Option<String> {
    if !code[i].is_ident("thread")
        || !code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        || !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        return None;
    }
    let what = code.get(i + 3)?;
    if what.kind == TokenKind::Ident && matches!(what.text.as_str(), "spawn" | "scope" | "Builder")
    {
        Some(what.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn check(path: &str, src: &str, toml: &str) -> (Vec<Finding>, ConcurrencyStats) {
        let file = SourceFile::parse(path, src).unwrap();
        let items = ItemIndex::build(&file);
        let cfg = Config::parse(toml).unwrap();
        check_concurrency(&file, &cfg.rule("concurrency"), &items)
    }

    const SCOPE: &str = "[rule.concurrency]\nscope = [\"crates\"]\n";

    #[test]
    fn relaxed_and_seqcst_flagged_acquire_release_pass() {
        let src = "fn f(a: &AtomicU64) {\n\
                   a.store(1, Ordering::Relaxed);\n\
                   a.load(Ordering::SeqCst);\n\
                   a.load(Ordering::Acquire);\n\
                   a.store(2, Ordering::Release);\n\
                   }\n";
        let (findings, stats) = check("crates/x/src/a.rs", src, SCOPE);
        assert_eq!(stats.ordering_sites, 2);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("Relaxed"));
        assert!(findings[1].message.contains("SeqCst"));
    }

    #[test]
    fn cmp_ordering_variants_never_match() {
        let src = "fn f(o: cmp::Ordering) -> bool { o == Ordering::Less }\n";
        let (findings, stats) = check("crates/x/src/a.rs", src, SCOPE);
        assert!(findings.is_empty());
        assert_eq!(stats.ordering_sites, 0);
    }

    #[test]
    fn ordering_allow_list_and_annotation_suppress() {
        let src = "fn f(a: &AtomicU64) {\n\
                   a.load(Ordering::Relaxed); // lint: allow(ordering) monotone counter\n\
                   }\n";
        let (findings, _) = check("crates/x/src/a.rs", src, SCOPE);
        assert!(findings.is_empty(), "{findings:?}");
        let toml = "[rule.concurrency]\nscope = [\"crates\"]\n\
                    ordering_allow = [\"crates/x/src/a.rs\"]\n";
        let bare = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let (findings, stats) = check("crates/x/src/a.rs", bare, toml);
        assert!(findings.is_empty());
        assert_eq!(stats.ordering_sites, 1, "still counted");
    }

    #[test]
    fn lock_requires_poison_recovery_or_annotation() {
        let src = "fn f(m: &Mutex<u8>) -> u8 {\n\
                   let a = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                   let b = *m.lock().expect(\"poisoned\"); // lint: allow(lock) test-only state\n\
                   let c = *m.lock().unwrap();\n\
                   a + b + c\n\
                   }\n";
        let (findings, stats) = check("crates/x/src/a.rs", src, SCOPE);
        assert_eq!(stats.lock_sites, 3);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("into_inner"));
    }

    #[test]
    fn io_read_write_with_arguments_pass() {
        let src = "fn f(r: &mut impl Read, w: &mut impl Write, buf: &mut [u8]) {\n\
                   r.read(buf).ok();\n\
                   w.write(buf).ok();\n\
                   }\n";
        let (findings, stats) = check("crates/x/src/a.rs", src, SCOPE);
        assert!(findings.is_empty());
        assert_eq!(stats.lock_sites, 0);
    }

    #[test]
    fn rwlock_argless_read_write_flagged() {
        let src = "fn f(l: &RwLock<u8>) -> u8 { *l.read().unwrap() + *l.write().unwrap() }\n";
        let (findings, stats) = check("crates/x/src/a.rs", src, SCOPE);
        assert_eq!(stats.lock_sites, 2);
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn spawn_confined_to_allowed_prefixes() {
        let toml = "[rule.concurrency]\nscope = [\"crates\"]\n\
                    spawn_allow = [\"crates/par/src\"]\n";
        let src = "fn pump() { thread::spawn(|| {}); }\n";
        let (findings, stats) = check("crates/par/src/lib.rs", src, toml);
        assert!(findings.is_empty());
        assert_eq!(stats.spawn_sites, 1);
        let (findings, _) = check("crates/core/src/lib.rs", src, toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("thread::spawn"));
        assert!(findings[0].message.contains("fn `pump`"));
        let annotated =
            "fn pump() {\n    // lint: allow(spawn) one-shot helper\n    thread::spawn(|| {});\n}\n";
        let (findings, _) = check("crates/core/src/lib.rs", annotated, toml);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let toml = "[rule.concurrency]\nscope = [\"crates/par/src\"]\n";
        let src = "fn f() { thread::spawn(|| {}); }\n";
        let (findings, stats) = check("crates/cli/src/main.rs", src, toml);
        assert!(findings.is_empty());
        assert_eq!(stats.spawn_sites, 0);
    }
}
