//! The item layer: approximate item extents and an intra-crate call graph
//! recovered from the token stream.
//!
//! The v2 rule families need more context than a flat token stream gives:
//! *which function* does a `thread::spawn` live in, *which functions* feed
//! exact `Ratio` arithmetic, *where* does an `unsafe` block sit. This
//! module recovers that structure with the same hand-rolled,
//! zero-dependency discipline as the tokenizer — a bracket-matching scan,
//! not a parser:
//!
//! - [`ItemIndex::build`] walks the non-test code tokens of one file and
//!   records every `fn` / `mod` / `impl` / `trait` item: name, 1-based
//!   line extent, token extent, and whether the item is `pub`. Nested
//!   items (a `fn` inside a `mod`, a helper `fn` inside a `fn`) are all
//!   recorded; [`ItemIndex::enclosing_fn`] resolves a line to the
//!   *innermost* containing function.
//! - [`CallGraph::build`] joins the per-function token streams of a crate:
//!   an identifier inside a function body that names another function of
//!   the same crate (called as `name(…)` or `.name(…)`) becomes an edge.
//!   This is deliberately approximate — it sees names, not resolved paths
//!   — but it errs toward *more* edges, which is the safe direction for
//!   the reachability uses below.
//! - [`CallGraph::reachable`] closes a seed set over call edges; the
//!   panic-propagation rule seeds with every function whose tokens
//!   mention `Ratio` (the exact-arithmetic type) and treats the closure
//!   as the **exact path**: functions whose arithmetic and indexing feed
//!   rational equilibrium computation, where a silent panic or wrap would
//!   drift the solver from the oracle.
//!
//! Soundness caveats mirror DESIGN.md §12: a macro-generated function is
//! invisible, same-name functions in one crate alias into one node, and a
//! call through a trait object edges to every same-name inherent fn. All
//! acceptable: the consumers gate *annotation requirements*, not
//! correctness proofs.

use std::collections::{BTreeMap, BTreeSet};

use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// The item kinds the index distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }` (or a bodyless trait method `fn name(…);`).
    Fn,
    /// `mod name { … }` (or `mod name;`).
    Mod,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
}

/// One recovered item.
#[derive(Clone, Debug)]
pub struct Item {
    /// What kind of item.
    pub kind: ItemKind,
    /// The item's name: the ident after `fn`/`mod`/`trait`, or for an
    /// `impl` the last type ident before the opening brace.
    pub name: String,
    /// Whether a `pub` token directly precedes the item keyword (possibly
    /// with `pub(crate)`-style restrictions in between).
    pub is_pub: bool,
    /// 1-based line of the item keyword.
    pub line_start: u32,
    /// 1-based line of the closing `}` (or the `;` of a bodyless form).
    pub line_end: u32,
    /// Half-open range over the file's raw token vector, keyword through
    /// closing delimiter.
    pub tokens: (usize, usize),
}

impl Item {
    /// Whether `line` falls inside the item's extent.
    #[must_use]
    pub fn contains_line(&self, line: u32) -> bool {
        self.line_start <= line && line <= self.line_end
    }
}

/// All items of one source file, in keyword order.
#[derive(Clone, Debug, Default)]
pub struct ItemIndex {
    /// Every recovered item (outer items before the nested items they
    /// contain, by construction of the scan).
    pub items: Vec<Item>,
}

impl ItemIndex {
    /// Scans `file`'s non-test code tokens for item keywords and matches
    /// their extents.
    #[must_use]
    pub fn build(file: &SourceFile) -> ItemIndex {
        let code: Vec<usize> = file.code_tokens().map(|(i, _)| i).collect();
        let tok = |k: usize| code.get(k).map(|&i| &file.tokens[i]);
        let mut items = Vec::new();
        let mut k = 0usize;
        while let Some(token) = tok(k) {
            if token.kind != TokenKind::Ident {
                k += 1;
                continue;
            }
            let kind = match token.text.as_str() {
                "fn" => ItemKind::Fn,
                "mod" => ItemKind::Mod,
                "impl" => ItemKind::Impl,
                "trait" => ItemKind::Trait,
                _ => {
                    k += 1;
                    continue;
                }
            };
            let name = match kind {
                // `fn name` / `mod name` / `trait Name`; a `fn` keyword
                // not followed by an ident is a pointer/closure type
                // (`fn(i64) -> i64`), not an item.
                ItemKind::Fn | ItemKind::Mod | ItemKind::Trait => {
                    match tok(k + 1).filter(|t| t.kind == TokenKind::Ident) {
                        Some(t) => t.text.clone(),
                        None => {
                            k += 1;
                            continue;
                        }
                    }
                }
                ItemKind::Impl => impl_name(file, &code, k),
            };
            let Some((end_k, line_end)) = item_extent(file, &code, k) else {
                k += 1;
                continue;
            };
            let line_start = token.line;
            let is_pub = preceded_by_pub(file, &code, k);
            let lo = code[k];
            let hi = code.get(end_k - 1).copied().unwrap_or(lo);
            items.push(Item {
                kind,
                name,
                is_pub,
                line_start,
                line_end,
                tokens: (lo, hi + 1),
            });
            // Continue *inside* the item so nested fns are indexed too.
            k += 1;
        }
        ItemIndex { items }
    }

    /// The innermost `fn` item containing `line`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, line: u32) -> Option<&Item> {
        self.items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn && i.contains_line(line))
            .min_by_key(|i| i.line_end - i.line_start)
    }

    /// Iterator over the `fn` items.
    pub fn fns(&self) -> impl Iterator<Item = &Item> + '_ {
        self.items.iter().filter(|i| i.kind == ItemKind::Fn)
    }
}

/// The display name of an `impl` item: the last type ident before the
/// opening brace (`impl Display for Ratio` → `Ratio`).
fn impl_name(file: &SourceFile, code: &[usize], k: usize) -> String {
    let mut name = String::from("impl");
    let mut j = k + 1;
    while let Some(&i) = code.get(j) {
        let t = &file.tokens[i];
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Ident && t.text != "for" {
            name = t.text.clone();
        }
        j += 1;
    }
    name
}

/// Whether the tokens directly before the item keyword are a `pub`
/// qualifier (`pub`, `pub(crate)`, `pub(in …)`), skipping the other
/// modifier keywords (`const`, `async`, `unsafe`, `extern "C"`).
fn preceded_by_pub(file: &SourceFile, code: &[usize], k: usize) -> bool {
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[code[j]];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern") =>
            {
                continue;
            }
            TokenKind::Str => continue, // extern "C"
            TokenKind::Ident if t.text == "pub" => return true,
            TokenKind::Punct if t.is_punct(')') => {
                // Skip a `(crate)` / `(in path)` restriction back to `pub`.
                let mut depth = 0usize;
                loop {
                    let t = &file.tokens[code[j]];
                    if t.is_punct(')') {
                        depth += 1;
                    } else if t.is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
                continue;
            }
            _ => return false,
        }
    }
    false
}

/// The extent of the item whose keyword sits at code index `k`: index just
/// past the closing token, and that token's line. Brace-matched like
/// `source::item_end`, but also reports the end line.
fn item_extent(file: &SourceFile, code: &[usize], k: usize) -> Option<(usize, u32)> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut brace = 0i64;
    let mut seen_brace = false;
    let mut j = k;
    while let Some(&i) = code.get(j) {
        let t = &file.tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') => {
                    brace += 1;
                    seen_brace = true;
                }
                Some(b'}') => {
                    brace -= 1;
                    if seen_brace && brace == 0 {
                        return Some((j + 1, t.line));
                    }
                }
                Some(b';') if !seen_brace && paren == 0 && bracket == 0 && brace == 0 => {
                    return Some((j + 1, t.line));
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

/// A function node: `(file path, fn name)` — the granularity the
/// approximate graph resolves to. Same-name fns in one file alias.
pub type FnId = (String, String);

/// The approximate call graph of one crate (one file set).
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Adjacency: caller → called fn *names* resolved against the crate's
    /// fn-name set (file-blind on the callee side: a call to `solve` edges
    /// to every `solve` in the crate).
    edges: BTreeMap<FnId, BTreeSet<String>>,
    /// Every fn name defined anywhere in the crate.
    defined: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph over `(path, index, file)` triples of one crate.
    #[must_use]
    pub fn build(files: &[(&str, &ItemIndex, &SourceFile)]) -> CallGraph {
        let mut graph = CallGraph::default();
        for (_, index, _) in files {
            for f in index.fns() {
                graph.defined.insert(f.name.clone());
            }
        }
        for (path, index, file) in files {
            for f in index.fns() {
                let id: FnId = ((*path).to_string(), f.name.clone());
                let callees = graph.edges.entry(id).or_default();
                let (lo, hi) = f.tokens;
                for i in lo..hi {
                    let t = &file.tokens[i];
                    if t.kind != TokenKind::Ident
                        || t.text == f.name
                        || !graph.defined.contains(&t.text)
                    {
                        continue;
                    }
                    // A call looks like `name (` or `name ::` (UFCS /
                    // turbofish); a bare mention (doc link, shadowed
                    // variable) does not edge.
                    let next = file.tokens[i + 1..].iter().find(|t| !t.is_comment());
                    if next.is_some_and(|n| n.is_punct('(') || n.is_punct(':') || n.is_punct('<')) {
                        callees.insert(t.text.clone());
                    }
                }
            }
        }
        graph
    }

    /// Closes `seeds` over call edges: every function a seed (transitively)
    /// calls joins the set. The closure is name-level — a reached *name*
    /// marks every same-name fn in the crate — so it is a superset of the
    /// true one, the conservative direction for "does this function feed
    /// exact arithmetic".
    #[must_use]
    pub fn reachable(&self, seeds: &BTreeSet<FnId>) -> BTreeSet<FnId> {
        let mut names: BTreeSet<String> = seeds.iter().map(|(_, name)| name.clone()).collect();
        loop {
            let mut grew = false;
            for (id, callees) in &self.edges {
                if !names.contains(&id.1) {
                    continue;
                }
                for callee in callees {
                    if !names.contains(callee) {
                        names.insert(callee.clone());
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        self.edges
            .keys()
            .filter(|id| names.contains(&id.1))
            .cloned()
            .collect()
    }
}

/// The **exact path** of a crate: every fn whose tokens mention one of
/// `seed_idents` (by default the `Ratio` type), closed over the call
/// graph — callees of exact fns do exact work.
#[must_use]
pub fn exact_path(
    files: &[(&str, &ItemIndex, &SourceFile)],
    seed_idents: &[&str],
) -> BTreeSet<FnId> {
    let graph = CallGraph::build(files);
    let mut seeds: BTreeSet<FnId> = BTreeSet::new();
    for (path, index, file) in files {
        for f in index.fns() {
            let (lo, hi) = f.tokens;
            let mentions = file.tokens[lo..hi]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && seed_idents.contains(&t.text.as_str()));
            if mentions {
                seeds.insert(((*path).to_string(), f.name.clone()));
            }
        }
    }
    graph.reachable(&seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src).unwrap()
    }

    #[test]
    fn fn_mod_impl_extents_and_visibility() {
        let file = parse(
            "pub fn outer(x: i64) -> i64 {\n\
             \u{20}   fn inner(y: i64) -> i64 { y }\n\
             \u{20}   inner(x)\n\
             }\n\
             mod helpers {\n\
             \u{20}   pub(crate) fn help() {}\n\
             }\n\
             impl Display for Ratio {\n\
             \u{20}   fn fmt(&self) {}\n\
             }\n",
        );
        let index = ItemIndex::build(&file);
        let names: Vec<(&str, ItemKind, bool)> = index
            .items
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", ItemKind::Fn, true),
                ("inner", ItemKind::Fn, false),
                ("helpers", ItemKind::Mod, false),
                ("help", ItemKind::Fn, true),
                ("Ratio", ItemKind::Impl, false),
                ("fmt", ItemKind::Fn, false),
            ]
        );
        let outer = &index.items[0];
        assert_eq!((outer.line_start, outer.line_end), (1, 4));
        let inner = &index.items[1];
        assert_eq!((inner.line_start, inner.line_end), (2, 2));
    }

    #[test]
    fn enclosing_fn_resolves_to_innermost() {
        let file = parse(
            "fn outer() {\n\
             \u{20}   fn inner() {\n\
             \u{20}       work();\n\
             \u{20}   }\n\
             \u{20}   inner();\n\
             }\n",
        );
        let index = ItemIndex::build(&file);
        assert_eq!(
            index.enclosing_fn(3).map(|i| i.name.as_str()),
            Some("inner")
        );
        assert_eq!(
            index.enclosing_fn(5).map(|i| i.name.as_str()),
            Some("outer")
        );
        assert!(index.enclosing_fn(40).is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let file = parse("type Op = fn(i64) -> i64;\nfn real(f: fn(i64) -> i64) {}\n");
        let index = ItemIndex::build(&file);
        let fns: Vec<&str> = index.fns().map(|i| i.name.as_str()).collect();
        assert_eq!(fns, vec!["real"]);
    }

    #[test]
    fn test_code_is_not_indexed() {
        let file = parse("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        let index = ItemIndex::build(&file);
        let names: Vec<&str> = index.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["live"]);
    }

    #[test]
    fn call_graph_reaches_transitive_callees() {
        let file = parse(
            "fn uses_ratio(r: Ratio) -> Ratio { normalize(r) }\n\
             fn normalize(r: Ratio) -> Ratio { reduce(r) }\n\
             fn reduce(r: i64) -> i64 { r }\n\
             fn unrelated() { log() }\n\
             fn log() {}\n",
        );
        let index = ItemIndex::build(&file);
        let files = vec![("crates/x/src/lib.rs", &index, &file)];
        let exact = exact_path(&files, &["Ratio"]);
        let names: Vec<&str> = exact.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["normalize", "reduce", "uses_ratio"]);
    }

    #[test]
    fn bare_mentions_do_not_edge() {
        let file = parse(
            "fn seed() -> Ratio { Ratio }\n\
             // `helper` mentioned by name only: shadowing local, no call\n\
             fn other() { let helper = 1; drop(helper); }\n\
             fn helper() {}\n",
        );
        let index = ItemIndex::build(&file);
        let files = vec![("crates/x/src/lib.rs", &index, &file)];
        let exact = exact_path(&files, &["Ratio"]);
        let names: Vec<&str> = exact.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["seed"]);
    }
}
