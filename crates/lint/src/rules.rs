//! The rule families: exactness, determinism, panic-freedom, metrics.
//!
//! Every rule is a pure function from tokenized sources (plus, for the
//! metric audit, registry/docs/baseline text) to [`Finding`]s — no I/O
//! here, so fixture tests can drive the rules on in-memory workspaces.
//!
//! All rules are **token-level**: they see the lexical stream, not the
//! semantic program. The soundness caveats this implies (e.g. a local
//! `struct Instant` would trip the determinism rule; a macro expanding to
//! `unwrap()` would evade the panic rule) are documented in DESIGN.md §12;
//! in exchange the checker needs no `syn`, no rustc, and runs in
//! milliseconds on the whole workspace.

use crate::config::RuleConfig;
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule family id (`exactness`, `determinism`, `panic`, `metrics`,
    /// `annotation`).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: &str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message,
        }
    }
}

/// Idents the determinism rule forbids when `lint.toml` does not override
/// them with a `forbid = […]` key.
const DEFAULT_FORBIDDEN: &[&str] = &[
    "SystemTime",
    "Instant",
    "HashMap",
    "HashSet",
    "RandomState",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Malformed `// lint:` comments become findings of the `annotation` rule
/// so a typo'd suppression fails loudly instead of silently not applying.
pub fn check_annotations(file: &SourceFile) -> Vec<Finding> {
    file.bad_annotations
        .iter()
        .map(|(line, msg)| Finding::new("annotation", &file.path, *line, msg.clone()))
        .collect()
}

/// **exactness** — no floating point in the exact-arithmetic crates.
///
/// Flags `f64`/`f32` idents (covers `as f64` casts, type ascriptions and
/// `f64::from` paths) and float literals in scoped files.
pub fn check_exactness(file: &SourceFile, cfg: &RuleConfig) -> Vec<Finding> {
    if !cfg.applies_to(&file.path) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (_, token) in file.code_tokens() {
        let message = if token.is_ident("f64") || token.is_ident("f32") {
            format!(
                "`{}` in an exact-arithmetic crate; NE probabilities are rationals \
                 (paper Thm. 1) — use Ratio, or allowlist a timing/report module in lint.toml",
                token.text
            )
        } else if token.kind == TokenKind::Float {
            format!(
                "float literal `{}` in an exact-arithmetic crate — use Ratio",
                token.text
            )
        } else {
            continue;
        };
        if !file.is_allowed("exactness", token.line) {
            findings.push(Finding::new("exactness", &file.path, token.line, message));
        }
    }
    findings
}

/// **determinism** — no wall clock, hash-order containers, or ambient
/// randomness in library crates; `defender_num::rng` is the only RNG.
pub fn check_determinism(file: &SourceFile, cfg: &RuleConfig) -> Vec<Finding> {
    if !cfg.applies_to(&file.path) {
        return Vec::new();
    }
    let forbidden: Vec<&str> = match cfg.extra.get("forbid") {
        Some(names) => names.iter().map(String::as_str).collect(),
        None => DEFAULT_FORBIDDEN.to_vec(),
    };
    let mut findings = Vec::new();
    for (_, token) in file.code_tokens() {
        if token.kind != TokenKind::Ident || !forbidden.contains(&token.text.as_str()) {
            continue;
        }
        if file.is_allowed("determinism", token.line) {
            continue;
        }
        findings.push(Finding::new(
            "determinism",
            &file.path,
            token.line,
            format!(
                "`{}` breaks deterministic replay (wall clock / hash order / ambient \
                 randomness); use defender_num::rng or annotate the site",
                token.text
            ),
        ));
    }
    findings
}

/// Site counts the panic rule reports alongside its findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PanicStats {
    /// `.unwrap()` / `.expect()` / `panic!`-family sites found in scope.
    pub sites: u64,
    /// Of those, sites suppressed by a `lint: allow(panic)` annotation.
    pub annotated: u64,
    /// `expr[index]`-adjacent sites (classified and counted, not failed:
    /// token-level analysis cannot tell checked from unchecked indexing).
    pub index_sites: u64,
}

/// **panic** — every potential-panic site in a library crate must be
/// fixed or carry a `// lint: allow(panic) <reason>` annotation.
pub fn check_panic(file: &SourceFile, cfg: &RuleConfig) -> (Vec<Finding>, PanicStats) {
    let mut stats = PanicStats::default();
    if !cfg.applies_to(&file.path) {
        return (Vec::new(), stats);
    }
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut findings = Vec::new();
    for (i, token) in code.iter().enumerate() {
        // `expr[…]` indexing: an opening bracket directly after a value
        // (ident, literal, or a closing delimiter). Counted for the
        // classification report only.
        if token.is_punct('[') && i > 0 {
            let prev = code[i - 1];
            let after_value = matches!(
                prev.kind,
                TokenKind::Ident | TokenKind::Int | TokenKind::Str
            ) || prev.is_punct(')')
                || prev.is_punct(']');
            if after_value {
                stats.index_sites += 1;
            }
            continue;
        }
        let site = if token.is_punct('.')
            && code.get(i + 1).is_some_and(|t| {
                (t.is_ident("unwrap") || t.is_ident("expect"))
                    && code.get(i + 2).is_some_and(|p| p.is_punct('('))
            }) {
            let callee = &code[i + 1];
            Some((callee.line, format!(".{}()", callee.text)))
        } else if (token.is_ident("panic")
            || token.is_ident("unreachable")
            || token.is_ident("todo")
            || token.is_ident("unimplemented"))
            && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            Some((token.line, format!("{}!", token.text)))
        } else {
            None
        };
        let Some((line, what)) = site else { continue };
        stats.sites += 1;
        if file.is_allowed("panic", line) {
            stats.annotated += 1;
            continue;
        }
        findings.push(Finding::new(
            "panic",
            &file.path,
            line,
            format!(
                "{what} in a library crate — return a typed error, prove the invariant, \
                 or annotate with `// lint: allow(panic) <reason>`"
            ),
        ));
    }
    (findings, stats)
}

// ---------------------------------------------------------------------------
// Metric-registry audit
// ---------------------------------------------------------------------------

/// The metric kinds the obs macros declare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// `counter!`
    Counter,
    /// `gauge!`
    Gauge,
    /// `histogram!`
    Histogram,
    /// `span!`
    Span,
}

impl MetricKind {
    /// The macro ident → kind mapping.
    #[must_use]
    pub fn from_macro(name: &str) -> Option<MetricKind> {
        match name {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "span" => Some(MetricKind::Span),
            _ => None,
        }
    }

    /// The registry-file keyword for the kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Span => "span",
        }
    }
}

/// One `counter!("…")`-style call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricUse {
    /// Which macro.
    pub kind: MetricKind,
    /// The name literal's contents.
    pub name: String,
    /// File containing the call.
    pub path: String,
    /// 1-based line of the name literal.
    pub line: u32,
}

/// One line of `crates/obs/metrics_registry.txt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Declared kind.
    pub kind: MetricKind,
    /// Metric name; a trailing `*` makes it a prefix wildcard.
    pub name: String,
    /// Marked `dynamic`: created at runtime (`leaked_counter`), so no
    /// static call site is required.
    pub dynamic: bool,
    /// 1-based line in the registry file.
    pub line: u32,
}

impl RegistryEntry {
    /// Whether this entry declares `name` (exact or wildcard-prefix).
    #[must_use]
    pub fn matches(&self, name: &str) -> bool {
        match self.name.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => self.name == name,
        }
    }
}

/// Extracts every `counter!`/`gauge!`/`histogram!`/`span!` name literal
/// from non-test code: `<macro> ! ( "<name>"` in the token stream.
pub fn extract_metric_uses(file: &SourceFile) -> Vec<MetricUse> {
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut uses = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let Some(kind) = MetricKind::from_macro(&token.text) else {
            continue;
        };
        if !code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            || !code.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(name_token) = code.get(i + 3) else {
            continue;
        };
        let Some(name) = name_token.str_contents() else {
            continue; // non-literal name: invisible to the audit
        };
        uses.push(MetricUse {
            kind,
            name: name.to_string(),
            path: file.path.clone(),
            line: name_token.line,
        });
    }
    uses
}

/// Parses `metrics_registry.txt`: one `<kind> <name> [dynamic]` per line,
/// `#` comments, blank lines ignored.
///
/// # Errors
///
/// Reports the first malformed line.
pub fn parse_registry(text: &str) -> Result<Vec<RegistryEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let kind_word = words.next().unwrap_or("");
        let kind = match kind_word {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            "span" => MetricKind::Span,
            other => return Err(format!("registry line {}: unknown kind `{other}`", i + 1)),
        };
        let name = words
            .next()
            .ok_or(format!("registry line {}: missing metric name", i + 1))?;
        let dynamic = match words.next() {
            None => false,
            Some("dynamic") => true,
            Some(extra) => {
                return Err(format!("registry line {}: unexpected `{extra}`", i + 1));
            }
        };
        if words.next().is_some() {
            return Err(format!("registry line {}: too many fields", i + 1));
        }
        entries.push(RegistryEntry {
            kind,
            name: name.to_string(),
            dynamic,
            line: (i + 1) as u32,
        });
    }
    Ok(entries)
}

/// Auxiliary inputs to the metric audit, already read from disk.
#[derive(Clone, Debug, Default)]
pub struct MetricsInputs {
    /// Workspace-relative path of the registry file (for finding locations).
    pub registry_path: String,
    /// Parsed registry.
    pub registry: Vec<RegistryEntry>,
    /// Documentation files as `(path, text)`; counters must appear in at
    /// least one of them.
    pub docs: Vec<(String, String)>,
    /// Benchmark baselines as `(path, counter keys)`; every key must be
    /// a registered name.
    pub baselines: Vec<(String, Vec<String>)>,
}

/// **metrics** — cross-checks call sites, the registry, EXPERIMENTS.md and
/// the committed baselines; any disagreement is a finding.
pub fn check_metrics(uses: &[MetricUse], inputs: &MetricsInputs) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Code → registry: every use declared, with the declared kind.
    for u in uses {
        match inputs.registry.iter().find(|e| e.matches(&u.name)) {
            None => findings.push(Finding::new(
                "metrics",
                &u.path,
                u.line,
                format!(
                    "{} `{}` is not declared in {}",
                    u.kind.label(),
                    u.name,
                    inputs.registry_path
                ),
            )),
            Some(entry) if entry.kind != u.kind => findings.push(Finding::new(
                "metrics",
                &u.path,
                u.line,
                format!(
                    "`{}` used as a {} but registered as a {}",
                    u.name,
                    u.kind.label(),
                    entry.kind.label()
                ),
            )),
            Some(_) => {}
        }
    }
    // Registry → code: non-dynamic entries must still be emitted somewhere.
    for entry in &inputs.registry {
        if entry.dynamic {
            continue;
        }
        if !uses.iter().any(|u| entry.matches(&u.name)) {
            findings.push(Finding::new(
                "metrics",
                &inputs.registry_path,
                entry.line,
                format!(
                    "orphaned {} `{}`: registered but no longer emitted by any code",
                    entry.kind.label(),
                    entry.name
                ),
            ));
        }
    }
    // Registry → docs: counters are user-facing experiment outputs and
    // must be documented (wildcards by their prefix).
    for entry in &inputs.registry {
        if entry.kind != MetricKind::Counter {
            continue;
        }
        let needle = entry.name.strip_suffix('*').unwrap_or(&entry.name);
        if !inputs.docs.iter().any(|(_, text)| text.contains(needle)) {
            let docs_list: Vec<&str> = inputs.docs.iter().map(|(p, _)| p.as_str()).collect();
            findings.push(Finding::new(
                "metrics",
                &inputs.registry_path,
                entry.line,
                format!(
                    "counter `{}` is not documented in {}",
                    entry.name,
                    docs_list.join(", ")
                ),
            ));
        }
    }
    // Baselines → registry: committed sidecar counter keys must all be
    // registered names, so the bench gate and the lint registry agree.
    for (path, keys) in &inputs.baselines {
        for key in keys {
            if !inputs.registry.iter().any(|e| e.matches(key)) {
                findings.push(Finding::new(
                    "metrics",
                    path,
                    0,
                    format!("baseline counter `{key}` is not a registered metric name"),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src).unwrap()
    }

    fn cfg(toml: &str) -> Config {
        Config::parse(toml).unwrap()
    }

    #[test]
    fn exactness_flags_floats_and_casts() {
        let config = cfg(
            "[rule.exactness]\nscope = [\"crates/num/src\"]\nallow = [\"crates/num/src/rng.rs\"]\n",
        );
        let bad = file(
            "crates/num/src/ratio.rs",
            "fn f(x: i64) -> f64 { x as f64 * 0.5 }\n",
        );
        let findings = check_exactness(&bad, &config.rule("exactness"));
        assert_eq!(findings.len(), 3, "{findings:?}"); // f64, f64, 0.5
        let allowed = file("crates/num/src/rng.rs", "fn f() -> f64 { 0.5 }\n");
        assert!(check_exactness(&allowed, &config.rule("exactness")).is_empty());
        let out_of_scope = file("crates/bench/src/timer.rs", "fn f() -> f64 { 0.5 }\n");
        assert!(check_exactness(&out_of_scope, &config.rule("exactness")).is_empty());
    }

    #[test]
    fn exactness_respects_annotations_and_strings() {
        let config = cfg("[rule.exactness]\nscope = [\"crates/num/src\"]\n");
        let src = "// lint: allow(exactness) report string only\n\
                   fn f(x: i64) -> f64 { g(x) }\n\
                   const LABEL: &str = \"uses f64 internally\";\n";
        assert!(check_exactness(
            &file("crates/num/src/report.rs", src),
            &config.rule("exactness")
        )
        .is_empty());
    }

    #[test]
    fn determinism_flags_forbidden_idents() {
        let config = cfg("[rule.determinism]\nscope = [\"crates\"]\n");
        let bad = file(
            "crates/core/src/run.rs",
            "use std::collections::HashMap;\nfn t() { let _ = Instant::now(); }\n",
        );
        let findings = check_determinism(&bad, &config.rule("determinism"));
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("HashMap"));
    }

    #[test]
    fn determinism_forbid_override() {
        let config = cfg("[rule.determinism]\nscope = [\"crates\"]\nforbid = [\"SystemTime\"]\n");
        let src = "fn t() { let _ = (HashMap::new(), SystemTime::now()); }\n";
        let findings =
            check_determinism(&file("crates/x/src/a.rs", src), &config.rule("determinism"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SystemTime"));
    }

    #[test]
    fn panic_sites_classified_and_annotated() {
        let config = cfg("[rule.panic]\nscope = [\"crates/graph/src\"]\n");
        let src = "fn f(v: &[u64], i: usize) -> u64 {\n\
                   let x = v.get(i).unwrap(); // lint: allow(panic) caller checked bounds\n\
                   let y = v.first().expect(\"nonempty\");\n\
                   if i > v.len() { panic!(\"oob\") }\n\
                   v[i] + x + y\n\
                   }\n";
        let (findings, stats) =
            check_panic(&file("crates/graph/src/a.rs", src), &config.rule("panic"));
        assert_eq!(stats.sites, 3);
        assert_eq!(stats.annotated, 1);
        assert_eq!(stats.index_sites, 1, "v[i]");
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains(".expect()"));
        assert!(findings[1].message.contains("panic!"));
    }

    #[test]
    fn panic_free_fn_named_expect_is_not_a_site() {
        // obs::json has a free `expect(bytes, …)` helper — only method
        // calls (preceded by `.`) count.
        let config = cfg("[rule.panic]\nscope = [\"crates\"]\n");
        let src = "fn expect(b: &[u8]) {}\nfn f(b: &[u8]) { expect(b); }\n";
        let (findings, stats) = check_panic(&file("crates/x/src/a.rs", src), &config.rule("panic"));
        assert!(findings.is_empty());
        assert_eq!(stats.sites, 0);
    }

    #[test]
    fn metric_uses_extracted_with_paths_and_kinds() {
        let src = "fn f() {\n\
                   defender_obs::counter!(\"a.b\").incr();\n\
                   let _s = span!(\"phase\");\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn t() { crate::counter!(\"test.only\").incr(); } }\n";
        let uses = extract_metric_uses(&file("crates/x/src/a.rs", src));
        assert_eq!(uses.len(), 2, "test-code uses are masked: {uses:?}");
        assert_eq!(uses[0].kind, MetricKind::Counter);
        assert_eq!(uses[0].name, "a.b");
        assert_eq!(uses[1].kind, MetricKind::Span);
    }

    #[test]
    fn registry_parses_wildcards_and_rejects_junk() {
        let entries = parse_registry(
            "# header\ncounter a.b\ngauge par.jobs\ncounter par.tasks.w* dynamic\nspan phase\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 4);
        assert!(entries[2].dynamic);
        assert!(entries[2].matches("par.tasks.w3"));
        assert!(!entries[2].matches("par.other"));
        assert!(parse_registry("widget a.b\n").is_err());
        assert!(parse_registry("counter\n").is_err());
        assert!(parse_registry("counter a.b static\n").is_err());
    }

    #[test]
    fn metrics_audit_finds_all_disagreements() {
        let registry = parse_registry(
            "counter used.ok\ncounter orphan.gone\ncounter undoc.ed\nspan used.ok.span\n",
        )
        .unwrap();
        let uses = vec![
            MetricUse {
                kind: MetricKind::Counter,
                name: "used.ok".into(),
                path: "crates/x/src/a.rs".into(),
                line: 3,
            },
            MetricUse {
                kind: MetricKind::Counter,
                name: "undoc.ed".into(),
                path: "crates/x/src/a.rs".into(),
                line: 4,
            },
            MetricUse {
                kind: MetricKind::Gauge,
                name: "used.ok.span".into(), // kind mismatch
                path: "crates/x/src/b.rs".into(),
                line: 9,
            },
            MetricUse {
                kind: MetricKind::Counter,
                name: "never.registered".into(),
                path: "crates/x/src/b.rs".into(),
                line: 12,
            },
        ];
        let inputs = MetricsInputs {
            registry_path: "crates/obs/metrics_registry.txt".into(),
            registry,
            docs: vec![(
                "EXPERIMENTS.md".into(),
                "`used.ok` counts things; `orphan.gone` counted things".into(),
            )],
            baselines: vec![(
                "baselines/BENCH_E1.json".into(),
                vec!["used.ok".into(), "mystery.key".into()],
            )],
        };
        let findings = check_metrics(&uses, &inputs);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("never.registered")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("used as a gauge")),
            "{msgs:?}"
        );
        assert!(msgs
            .iter()
            .any(|m| m.contains("orphaned counter `orphan.gone`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("counter `undoc.ed` is not documented")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("baseline counter `mystery.key`")));
        assert_eq!(findings.len(), 5, "{msgs:?}");
    }

    #[test]
    fn clean_workspace_produces_no_metric_findings() {
        let registry = parse_registry("counter a.b\ncounter dyn.w* dynamic\nspan phase\n").unwrap();
        let uses = vec![
            MetricUse {
                kind: MetricKind::Counter,
                name: "a.b".into(),
                path: "crates/x/src/a.rs".into(),
                line: 1,
            },
            MetricUse {
                kind: MetricKind::Span,
                name: "phase".into(),
                path: "crates/x/src/a.rs".into(),
                line: 2,
            },
        ];
        let inputs = MetricsInputs {
            registry_path: "r.txt".into(),
            registry,
            docs: vec![("D.md".into(), "`a.b` and `dyn.w` prefixed counters".into())],
            baselines: vec![("b.json".into(), vec!["a.b".into(), "dyn.w7".into()])],
        };
        assert!(check_metrics(&uses, &inputs).is_empty());
    }
}
