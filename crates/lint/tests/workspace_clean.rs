//! Self-test: the workspace at HEAD must be lint-clean, so a regression
//! (a stray float, an un-annotated unwrap, an unregistered counter) fails
//! `cargo test` locally — not just the CI gate.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    let config = defender_lint::config::Config::parse(&config_text).expect("lint.toml parses");
    let report = defender_lint::lint(&root, &config).expect("lint run succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "walker found the workspace");
    // Every potential panic site in scope is annotated (or it would have
    // been a finding above); the counts agree by construction.
    assert_eq!(report.panic.sites, report.panic.annotated);
    // Same for the item-aware pass: every gated site on the exact path
    // carries a written reason, and the exact-path closure really covers
    // the rational kernel (a regression that empties it would silently
    // stop gating anything).
    assert_eq!(report.panic2.sites_exact, report.panic2.annotated);
    assert!(report.exact_fns > 50, "exact-path closure found the kernel");
    assert!(
        report.concurrency.ordering_sites > 0
            && report.concurrency.lock_sites > 0
            && report.concurrency.spawn_sites > 0,
        "concurrency pass saw the workspace's sync sites"
    );
    let text = report.render_text();
    assert!(text.contains("exact path:"), "summary has the v2 line");
}
