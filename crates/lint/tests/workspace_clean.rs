//! Self-test: the workspace at HEAD must be lint-clean, so a regression
//! (a stray float, an un-annotated unwrap, an unregistered counter) fails
//! `cargo test` locally — not just the CI gate.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    let config = defender_lint::config::Config::parse(&config_text).expect("lint.toml parses");
    let report = defender_lint::lint(&root, &config).expect("lint run succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "walker found the workspace");
    // Every potential panic site in scope is annotated (or it would have
    // been a finding above); the counts agree by construction.
    assert_eq!(report.panic.sites, report.panic.annotated);
}
