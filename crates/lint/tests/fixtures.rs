//! Fixture workspaces: a seeded violation for every rule family must make
//! `defender-lint` exit 2, and the same workspace with the violation
//! annotated or fixed must exit 0.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// Materializes `files` under a fresh temp workspace root and returns it.
fn workspace(files: &[(&str, &str)]) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let root = std::env::temp_dir().join(format!(
        "defender-lint-fixture-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    for (rel, text) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).unwrap();
        }
        fs::write(path, text).unwrap();
    }
    root
}

const CONFIG: &str = r#"
[rule.exactness]
scope = ["crates/num/src"]

[rule.determinism]
scope = ["crates/num/src"]

[rule.panic]
scope = ["crates/num/src"]

[rule.metrics]
scope = ["crates"]
registry = "registry.txt"
docs = ["DOCS.md"]
baselines = ["baselines"]
"#;

const REGISTRY: &str = "counter good.counter\n";
const DOCS: &str = "`good.counter` counts good things\n";

/// Runs the CLI driver against `root` and returns its exit code.
fn lint_exit(root: &Path) -> u8 {
    let args = vec!["--root".to_string(), root.to_string_lossy().into_owned()];
    defender_lint::run(&args).unwrap()
}

/// A workspace whose only source file is `lib_rs`, with standard
/// config/registry/docs.
fn single_file_root(lib_rs: &str) -> PathBuf {
    workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", DOCS),
        ("crates/num/src/lib.rs", lib_rs),
    ])
}

const CLEAN: &str = "pub fn ok(x: i64) -> i64 {\n    defender_obs::counter!(\"good.counter\").incr();\n    x + 1\n}\n";

#[test]
fn clean_workspace_exits_zero() {
    assert_eq!(lint_exit(&single_file_root(CLEAN)), 0);
}

#[test]
fn exactness_violation_exits_two() {
    let root = single_file_root("pub fn bad(x: i64) -> f64 {\n    x as f64 * 0.5\n}\n");
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn determinism_violation_exits_two() {
    let root = single_file_root(
        "use std::collections::HashMap;\npub fn bad() -> usize {\n    HashMap::<u8, u8>::new().len()\n}\n",
    );
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn panic_violation_exits_two_and_annotation_clears_it() {
    let bad = format!("{CLEAN}pub fn bad(v: &[u8]) -> u8 {{\n    *v.first().unwrap()\n}}\n");
    assert_eq!(lint_exit(&single_file_root(&bad)), 2);
    let annotated = format!(
        "{CLEAN}pub fn bad(v: &[u8]) -> u8 {{\n    \
         *v.first().unwrap() // lint: allow(panic) callers pass non-empty slices\n}}\n"
    );
    assert_eq!(lint_exit(&single_file_root(&annotated)), 0);
}

#[test]
fn unregistered_metric_exits_two() {
    let root = single_file_root(
        "pub fn bad() {\n    defender_obs::counter!(\"rogue.counter\").incr();\n}\n",
    );
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn orphaned_registry_entry_exits_two() {
    // Registry declares a counter no code emits.
    let root = workspace(&[
        ("lint.toml", CONFIG),
        (
            "registry.txt",
            "counter good.counter\ncounter ghost.counter\n",
        ),
        ("DOCS.md", "`good.counter` and `ghost.counter` documented\n"),
        ("crates/num/src/lib.rs", CLEAN),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn undocumented_counter_exits_two() {
    let root = workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", "nothing relevant here\n"),
        ("crates/num/src/lib.rs", CLEAN),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn unknown_baseline_counter_exits_two() {
    let root = workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", DOCS),
        ("crates/num/src/lib.rs", CLEAN),
        (
            "baselines/BENCH_x.json",
            "{\"experiment\": \"x\", \"phases\": [], \"counters\": {\"mystery.key\": 1}}\n",
        ),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn malformed_annotation_exits_two() {
    // A reason-less annotation is itself a finding (and suppresses nothing).
    let root = single_file_root("pub fn f() {} // lint: allow(panic)\n");
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn cfg_test_code_is_exempt() {
    let src = format!(
        "{CLEAN}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        \
         let v: Vec<u8> = vec![1];\n        assert_eq!(*v.first().unwrap(), 1);\n    }}\n}}\n"
    );
    assert_eq!(lint_exit(&single_file_root(&src)), 0);
}

#[test]
fn json_format_reports_findings() {
    let root = single_file_root("pub fn bad(v: &[u8]) -> u8 {\n    *v.first().unwrap()\n}\n");
    let args = vec![
        "--root".to_string(),
        root.to_string_lossy().into_owned(),
        "--format".to_string(),
        "json".to_string(),
    ];
    assert_eq!(defender_lint::run(&args).unwrap(), 2);
}

// ---- item-aware rule families (lint v2) ----

/// Config exercising the v2 families: concurrency discipline, exact-path
/// panic/cast gating, the unsafe and dependency audits.
const CONFIG_V2: &str = r#"
[rule.panic]
scope = ["crates/num/src"]

[rule.concurrency]
scope = ["crates/num/src"]
ordering_allow = ["crates/num/src/allowed"]
spawn_allow = ["crates/num/src/allowed"]

[rule.panic2]
scope = ["crates/num/src"]

[rule.cast]
scope = ["crates/num/src"]

[rule.unsafe]
scope = ["crates"]

[rule.deps]
scope = ["crates"]
"#;

/// A workspace whose only source file is `lib_rs`, under the v2 config.
fn v2_root(lib_rs: &str) -> PathBuf {
    workspace(&[("lint.toml", CONFIG_V2), ("crates/num/src/lib.rs", lib_rs)])
}

#[test]
fn relaxed_ordering_needs_annotation() {
    let bad = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               pub fn read(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n";
    assert_eq!(lint_exit(&v2_root(bad)), 2);
    let annotated = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                     pub fn read(c: &AtomicU64) -> u64 {\n    \
                     c.load(Ordering::Relaxed) // lint: allow(ordering) monotone counter\n}\n";
    assert_eq!(lint_exit(&v2_root(annotated)), 0);
    // An ordering_allow-listed file passes without per-site annotations.
    let root = workspace(&[
        ("lint.toml", CONFIG_V2),
        ("crates/num/src/allowed/mod.rs", bad),
    ]);
    assert_eq!(lint_exit(&root), 0);
}

#[test]
fn bare_lock_needs_poison_recovery() {
    let bad = "use std::sync::Mutex;\npub fn get(m: &Mutex<u32>) -> u32 {\n    \
               *m.lock().unwrap()\n}\n";
    assert_eq!(lint_exit(&v2_root(bad)), 2);
    let recovered = "use std::sync::Mutex;\npub fn get(m: &Mutex<u32>) -> u32 {\n    \
                     *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n";
    assert_eq!(lint_exit(&v2_root(recovered)), 0);
}

#[test]
fn thread_spawn_outside_allowed_crates_exits_two() {
    let bad = "pub fn go() {\n    std::thread::spawn(|| {}).join().ok();\n}\n";
    assert_eq!(lint_exit(&v2_root(bad)), 2);
    let annotated = "pub fn go() {\n    \
                     // lint: allow(spawn) one-shot helper; joined on the next line\n    \
                     std::thread::spawn(|| {}).join().ok();\n}\n";
    assert_eq!(lint_exit(&v2_root(annotated)), 0);
}

#[test]
fn bare_index_gated_only_on_the_exact_path() {
    // `pick` mentions `Ratio`, so it is on the exact path: bare indexing
    // is a panic2 finding there...
    let exact = "pub struct Ratio;\npub fn pick(v: &[Ratio]) -> &Ratio {\n    &v[0]\n}\n";
    assert_eq!(lint_exit(&v2_root(exact)), 2);
    // ...but the identical shape outside the exact path is none.
    let outside = "pub fn pick(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert_eq!(lint_exit(&v2_root(outside)), 0);
    let annotated = "pub struct Ratio;\npub fn pick(v: &[Ratio]) -> &Ratio {\n    \
                     &v[0] // lint: allow(index) callers pass non-empty slices\n}\n";
    assert_eq!(lint_exit(&v2_root(annotated)), 0);
}

#[test]
fn narrowing_cast_exits_two() {
    // Narrow targets (u8..i32) are findings anywhere in scope.
    let bad = "pub fn shrink(x: u32) -> u8 {\n    x as u8\n}\n";
    assert_eq!(lint_exit(&v2_root(bad)), 2);
    let annotated = "pub fn shrink(x: u32) -> u8 {\n    \
                     x as u8 // lint: allow(cast) callers pass values below 256\n}\n";
    assert_eq!(lint_exit(&v2_root(annotated)), 0);
    // Wide targets (u64/i64) are gated only inside exact-path fns.
    let wide_outside = "pub fn wide(x: u128) -> u64 {\n    x as u64\n}\n";
    assert_eq!(lint_exit(&v2_root(wide_outside)), 0);
    let wide_exact = "pub struct Ratio;\npub fn wide(_r: &Ratio, x: u128) -> u64 {\n    \
                      x as u64\n}\n";
    assert_eq!(lint_exit(&v2_root(wide_exact)), 2);
}

#[test]
fn unsafe_code_exits_two() {
    let bad = "pub fn deref(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(lint_exit(&v2_root(bad)), 2);
}

#[test]
fn external_dependency_exits_two() {
    let external = workspace(&[
        ("lint.toml", CONFIG_V2),
        ("crates/num/src/lib.rs", "pub fn ok() {}\n"),
        (
            "crates/num/Cargo.toml",
            "[package]\nname = \"fixture\"\n\n[dependencies]\nserde = \"1\"\n",
        ),
    ]);
    assert_eq!(lint_exit(&external), 2);
    let internal = workspace(&[
        ("lint.toml", CONFIG_V2),
        ("crates/num/src/lib.rs", "pub fn ok() {}\n"),
        (
            "crates/num/Cargo.toml",
            "[package]\nname = \"fixture\"\n\n[dependencies]\n\
             defender-obs = { path = \"../obs\" }\nother = { workspace = true }\n",
        ),
    ]);
    assert_eq!(lint_exit(&internal), 0);
}

#[test]
fn stale_annotation_ages_into_a_finding() {
    // A well-formed allow that suppresses nothing is itself a finding.
    let stale = "pub fn fine() {} // lint: allow(panic) stale: nothing here panics\n";
    assert_eq!(lint_exit(&v2_root(stale)), 2);
}

#[test]
fn json_field_order_is_stable() {
    // The JSON report is a hand-assembled contract: downstream consumers
    // (and the docs) rely on this exact top-level field order.
    let root = v2_root("pub fn ok() {}\n");
    let config = defender_lint::config::Config::parse(CONFIG_V2).unwrap();
    let report = defender_lint::lint(&root, &config).unwrap();
    let json = report.render_json();
    let keys = [
        "\"files_scanned\"",
        "\"findings\"",
        "\"panic\"",
        "\"panic2\"",
        "\"concurrency\"",
    ];
    let positions: Vec<usize> = keys
        .iter()
        .map(|k| {
            json.find(k)
                .unwrap_or_else(|| panic!("{k} missing in {json}"))
        })
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "top-level fields out of order: {json}"
    );
    // The nested section orders are part of the same contract; anchor
    // each search at its section so repeated keys ("annotated") resolve
    // to the right object.
    for (section, keys) in [
        (
            "\"panic2\"",
            [
                "\"exact_fns\"",
                "\"sites_exact\"",
                "\"annotated\"",
                "\"sites_outside_exact\"",
            ]
            .as_slice(),
        ),
        (
            "\"concurrency\"",
            ["\"ordering_sites\"", "\"lock_sites\"", "\"spawn_sites\""].as_slice(),
        ),
    ] {
        let start = json.find(section).unwrap();
        let body = &json[start..];
        let pos: Vec<usize> = keys.iter().map(|k| body.find(k).unwrap()).collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "nested order: {json}");
    }
}

#[test]
fn exit_code_table() {
    // 0 — clean workspace.
    assert_eq!(lint_exit(&single_file_root(CLEAN)), 0);
    // 2 — findings.
    assert_eq!(
        lint_exit(&v2_root("pub fn bad(x: u32) -> u8 {\n    x as u8\n}\n")),
        2
    );
    // 1 — usage and I/O errors surface as Err; the binary maps them to 1.
    assert!(defender_lint::run(&["--wat".to_string()]).is_err());
    assert!(defender_lint::run(&[
        "--root".to_string(),
        "/nonexistent/defender-lint-fixture".to_string()
    ])
    .is_err());
}
