//! Fixture workspaces: a seeded violation for every rule family must make
//! `defender-lint` exit 2, and the same workspace with the violation
//! annotated or fixed must exit 0.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// Materializes `files` under a fresh temp workspace root and returns it.
fn workspace(files: &[(&str, &str)]) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let root = std::env::temp_dir().join(format!(
        "defender-lint-fixture-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    for (rel, text) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).unwrap();
        }
        fs::write(path, text).unwrap();
    }
    root
}

const CONFIG: &str = r#"
[rule.exactness]
scope = ["crates/num/src"]

[rule.determinism]
scope = ["crates/num/src"]

[rule.panic]
scope = ["crates/num/src"]

[rule.metrics]
scope = ["crates"]
registry = "registry.txt"
docs = ["DOCS.md"]
baselines = ["baselines"]
"#;

const REGISTRY: &str = "counter good.counter\n";
const DOCS: &str = "`good.counter` counts good things\n";

/// Runs the CLI driver against `root` and returns its exit code.
fn lint_exit(root: &Path) -> u8 {
    let args = vec!["--root".to_string(), root.to_string_lossy().into_owned()];
    defender_lint::run(&args).unwrap()
}

/// A workspace whose only source file is `lib_rs`, with standard
/// config/registry/docs.
fn single_file_root(lib_rs: &str) -> PathBuf {
    workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", DOCS),
        ("crates/num/src/lib.rs", lib_rs),
    ])
}

const CLEAN: &str = "pub fn ok(x: i64) -> i64 {\n    defender_obs::counter!(\"good.counter\").incr();\n    x + 1\n}\n";

#[test]
fn clean_workspace_exits_zero() {
    assert_eq!(lint_exit(&single_file_root(CLEAN)), 0);
}

#[test]
fn exactness_violation_exits_two() {
    let root = single_file_root("pub fn bad(x: i64) -> f64 {\n    x as f64 * 0.5\n}\n");
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn determinism_violation_exits_two() {
    let root = single_file_root(
        "use std::collections::HashMap;\npub fn bad() -> usize {\n    HashMap::<u8, u8>::new().len()\n}\n",
    );
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn panic_violation_exits_two_and_annotation_clears_it() {
    let bad = format!("{CLEAN}pub fn bad(v: &[u8]) -> u8 {{\n    *v.first().unwrap()\n}}\n");
    assert_eq!(lint_exit(&single_file_root(&bad)), 2);
    let annotated = format!(
        "{CLEAN}pub fn bad(v: &[u8]) -> u8 {{\n    \
         *v.first().unwrap() // lint: allow(panic) callers pass non-empty slices\n}}\n"
    );
    assert_eq!(lint_exit(&single_file_root(&annotated)), 0);
}

#[test]
fn unregistered_metric_exits_two() {
    let root = single_file_root(
        "pub fn bad() {\n    defender_obs::counter!(\"rogue.counter\").incr();\n}\n",
    );
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn orphaned_registry_entry_exits_two() {
    // Registry declares a counter no code emits.
    let root = workspace(&[
        ("lint.toml", CONFIG),
        (
            "registry.txt",
            "counter good.counter\ncounter ghost.counter\n",
        ),
        ("DOCS.md", "`good.counter` and `ghost.counter` documented\n"),
        ("crates/num/src/lib.rs", CLEAN),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn undocumented_counter_exits_two() {
    let root = workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", "nothing relevant here\n"),
        ("crates/num/src/lib.rs", CLEAN),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn unknown_baseline_counter_exits_two() {
    let root = workspace(&[
        ("lint.toml", CONFIG),
        ("registry.txt", REGISTRY),
        ("DOCS.md", DOCS),
        ("crates/num/src/lib.rs", CLEAN),
        (
            "baselines/BENCH_x.json",
            "{\"experiment\": \"x\", \"phases\": [], \"counters\": {\"mystery.key\": 1}}\n",
        ),
    ]);
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn malformed_annotation_exits_two() {
    // A reason-less annotation is itself a finding (and suppresses nothing).
    let root = single_file_root("pub fn f() {} // lint: allow(panic)\n");
    assert_eq!(lint_exit(&root), 2);
}

#[test]
fn cfg_test_code_is_exempt() {
    let src = format!(
        "{CLEAN}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{\n        \
         let v: Vec<u8> = vec![1];\n        assert_eq!(*v.first().unwrap(), 1);\n    }}\n}}\n"
    );
    assert_eq!(lint_exit(&single_file_root(&src)), 0);
}

#[test]
fn json_format_reports_findings() {
    let root = single_file_root("pub fn bad(v: &[u8]) -> u8 {\n    *v.first().unwrap()\n}\n");
    let args = vec![
        "--root".to_string(),
        root.to_string_lossy().into_owned(),
        "--format".to_string(),
        "json".to_string(),
    ];
    assert_eq!(defender_lint::run(&args).unwrap(), 2);
}
