//! `defender-par` — deterministic fork-join parallelism for the workspace.
//!
//! Every hot sweep in this repository — the E1–E15 experiment suite,
//! exhaustive payoff-table construction, support enumeration — is an
//! embarrassingly parallel loop over independent cells. This crate is the
//! one primitive they all share: a zero-dependency, std-only scoped-thread
//! work pool ([`std::thread::scope`]) whose contract is **determinism
//! first, speed second**:
//!
//! - **index-ordered merge**: [`par_map`] / [`par_for_indexed`] return
//!   results in input order regardless of which worker computed what, so
//!   output is byte-identical for any `--jobs N` (including 1);
//! - **dynamic scheduling**: workers pull the next index from a shared
//!   atomic cursor, so heterogeneous tasks (LP solves of varying size)
//!   balance without tuning — scheduling order is *not* deterministic,
//!   only results are, which is why per-worker task counts live in the
//!   segregated `par.*` metric namespace (see below);
//! - **inline degenerate path**: with one job, one item, or when called
//!   from inside a worker ([`is_worker`]), the closure runs on the calling
//!   thread with no spawn at all — nested parallelism is rejected rather
//!   than oversubscribing the pool;
//! - **panic propagation**: a panicking task aborts the pool and the first
//!   panic payload (in worker order) is resumed on the caller, so
//!   experiment assertions fail the run exactly as they do sequentially;
//! - **observability**: each `par_map` records the configured width in the
//!   `par.jobs` gauge and per-worker task counts in `par.tasks.w<i>`
//!   counters, and every worker wraps its task loop in a `par.worker`
//!   span, so `--trace` timelines show one balanced lane per worker.
//!
//! The `par.*` namespace is an **execution-shape record**, not algorithm
//! work: it legitimately differs between `--jobs 1` and `--jobs 4` (and,
//! for the per-worker split, between two runs at the same width). Consumers
//! that promise jobs-invariant output — the `BENCH_*.json` sidecars —
//! segregate it from the deterministic counter registry.
//!
//! # Examples
//!
//! ```
//! defender_par::set_jobs(4);
//! let squares = defender_par::par_for_indexed(16, |i| i * i);
//! assert_eq!(squares, (0..16).map(|i| i * i).collect::<Vec<_>>());
//! let lens = defender_par::par_map(&["a", "bb", "ccc"], |s| s.len());
//! assert_eq!(lens, vec![1, 2, 3]);
//! # defender_par::set_jobs(1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global pool width; 0 means "unset, use [`available_jobs`]".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// The hardware's advertised parallelism (at least 1).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the process-wide pool width (clamped to at least 1).
///
/// Affects only *how* subsequent [`par_map`] calls execute, never what
/// they return — results are identical for every width by construction.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed); // lint: allow(ordering) config cell; no data published through it
}

/// The current pool width: the last [`set_jobs`] value, or
/// [`available_jobs`] when never set.
#[must_use]
pub fn jobs() -> usize {
    // lint: allow(ordering) config cell; no data published through it
    match JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker. Inside a worker, nested
/// [`par_map`] calls run inline instead of spawning a second scope.
#[must_use]
pub fn is_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// The per-worker task counter `par.tasks.w<i>`. Worker identities are
/// per-call spawn indices, so counts aggregate across calls; the handles
/// are leaked once per distinct index (bounded by the largest width ever
/// used) so they satisfy the registry's `'static` contract.
fn task_counter(worker: usize) -> &'static defender_obs::Metric {
    static CELLS: OnceLock<Mutex<Vec<&'static defender_obs::Metric>>> = OnceLock::new();
    let cells = CELLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut cells = cells
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    while cells.len() <= worker {
        let name = format!("par.tasks.w{}", cells.len());
        cells.push(defender_obs::leaked_counter(name));
    }
    cells[worker]
}

/// Maps `f` over `0..n` and returns the results in index order.
///
/// Execution is spread over `min(jobs(), n)` scoped worker threads pulling
/// indices from a shared cursor; the merge is by index, so the returned
/// vector is identical for any pool width. Runs inline (no spawn) when the
/// effective width is 1 or when called from inside a worker.
///
/// # Panics
///
/// Re-raises the first panic (in worker order) raised by any task.
pub fn par_for_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let width = if is_worker() { 1 } else { jobs().min(n.max(1)) };
    defender_obs::gauge!("par.jobs").set(jobs() as u64);
    if width <= 1 {
        task_counter(0).add(n as u64);
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|worker| {
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    // Label the lane `w<i>` so trace consumers can merge
                    // a logical worker's stints across pool spawns (every
                    // scoped thread gets a fresh tid). Gated to avoid the
                    // allocation when nothing is recording.
                    if defender_obs::trace::enabled() {
                        defender_obs::trace::set_thread_label(&format!("w{worker}"));
                    }
                    let _lane = defender_obs::span!("par.worker");
                    let mut out = Vec::new();
                    loop {
                        // lint: allow(ordering) atomic RMW claims each index once; results join at thread exit
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    task_counter(worker).add(out.len() as u64);
                    out
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(width);
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(part) => parts.push(part),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        parts
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        // lint: allow(panic) pool invariant: par_for_indexed covers 0..n exactly once
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over a slice and returns the results in input order.
///
/// See [`par_for_indexed`] for the execution and determinism contract.
///
/// # Panics
///
/// Re-raises the first panic (in worker order) raised by any task.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_for_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate the process-global width; serialize them. Other
    /// crates' tests may race `set_jobs` freely — it only changes the
    /// execution shape, never results — but these tests assert on the
    /// width itself.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn results_are_index_ordered_for_any_width() {
        let _guard = lock();
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        for width in [1, 2, 4, 9] {
            set_jobs(width);
            assert_eq!(par_map(&items, |v| v * v), expected, "width {width}");
            assert_eq!(
                par_for_indexed(items.len(), |i| items[i] * items[i]),
                expected,
                "width {width}"
            );
        }
        set_jobs(1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = lock();
        set_jobs(4);
        assert_eq!(par_map::<u8, u8, _>(&[], |v| *v), Vec::<u8>::new());
        assert_eq!(par_for_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(&[7u8], |v| *v + 1), vec![8]);
        set_jobs(1);
    }

    #[test]
    fn jobs_one_is_the_degenerate_inline_path() {
        let _guard = lock();
        set_jobs(1);
        let caller = std::thread::current().id();
        let ids = par_for_indexed(8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller), "no threads spawned");
        assert!(!is_worker(), "the caller never becomes a worker");
    }

    #[test]
    fn set_jobs_clamps_zero_to_one() {
        let _guard = lock();
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let _guard = lock();
        set_jobs(4);
        let result = std::panic::catch_unwind(|| {
            par_for_indexed(64, |i| {
                assert!(i != 13, "task 13 exploded");
                i
            })
        });
        let payload = result.expect_err("panic must cross the pool");
        let message = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("task 13 exploded"), "{message}");
        set_jobs(1);
        // The pool is reusable after a panic.
        assert_eq!(par_for_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_calls_run_inline_on_the_worker() {
        let _guard = lock();
        set_jobs(4);
        let nested: Vec<(bool, Vec<usize>)> = par_for_indexed(4, |_| {
            // The inner call must not spawn a second scope: it runs on
            // this worker thread, which is flagged as in-pool.
            let inner_on_worker = par_for_indexed(5, |j| (is_worker(), j * 2));
            (
                is_worker(),
                inner_on_worker
                    .into_iter()
                    .map(|(on_worker, v)| {
                        assert!(on_worker, "inner tasks stay on the worker");
                        v
                    })
                    .collect(),
            )
        });
        for (on_worker, inner) in nested {
            assert!(on_worker, "outer tasks run on workers");
            assert_eq!(inner, vec![0, 2, 4, 6, 8]);
        }
        set_jobs(1);
    }

    #[test]
    fn workers_label_their_trace_lanes() {
        let _guard = lock();
        defender_obs::trace::clear();
        defender_obs::trace::start();
        set_jobs(2);
        let _ = par_for_indexed(8, |i| i);
        defender_obs::trace::stop();
        let json = defender_obs::trace::chrome_trace_json();
        defender_obs::trace::clear();
        set_jobs(1);
        assert!(json.contains(r#""args": {"name": "w0"}"#), "{json}");
        assert!(json.contains(r#""args": {"name": "w1"}"#), "{json}");
        let labels: Vec<String> = defender_obs::trace::snapshot_threads()
            .into_iter()
            .filter(|s| !s.label.is_empty())
            .map(|s| s.label)
            .collect();
        assert!(labels.is_empty(), "clear() forgets the labels");
    }

    #[test]
    fn metrics_record_the_parallel_shape() {
        let _guard = lock();
        defender_obs::reset();
        defender_obs::enable();
        set_jobs(3);
        let n = 40;
        let _ = par_for_indexed(n, |i| i);
        let snap = defender_obs::snapshot();
        assert_eq!(snap.gauge("par.jobs"), Some(3));
        let tasks: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("par.tasks.w"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(tasks, n as u64, "every task attributed to some worker");
        defender_obs::disable();
        defender_obs::reset();
        set_jobs(1);
    }
}
