//! The pool's trace story, end to end in a dedicated process: a parallel
//! map under event tracing exports a Chrome timeline whose per-thread
//! span stacks are balanced and which really spans multiple threads.

use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn parallel_trace_is_balanced_and_multi_threaded() {
    defender_obs::trace::start();
    defender_par::set_jobs(4);
    // Tasks spin until at least two workers have arrived, so the timeline
    // provably spans more than one thread even on a single-core host.
    let arrived = AtomicUsize::new(0);
    let results = defender_par::par_for_indexed(8, |i| {
        arrived.fetch_add(1, Ordering::SeqCst);
        while arrived.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let _inner = defender_obs::span!("task_body");
        i * 3
    });
    defender_par::set_jobs(1);
    defender_obs::trace::stop();
    assert_eq!(results, (0..8).map(|i| i * 3).collect::<Vec<_>>());

    let doc = defender_obs::trace::chrome_trace_json();
    let check = defender_obs::trace::validate_chrome_trace(&doc)
        .expect("parallel trace must keep per-thread stack discipline");
    assert_eq!(check.dropped, 0, "nothing should be dropped here");
    assert!(
        check.threads >= 2,
        "expected worker lanes beyond the main thread, saw {} ({doc})",
        check.threads
    );
    // Every worker lane wraps its tasks in a `par.worker` span.
    assert!(doc.contains(r#""name": "par.worker""#), "{doc}");
}
