//! A minimal keep-alive HTTP/1.1 client for the load generator, the CI
//! gate, and the integration tests. Std-only, like everything else.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response, framed by `Content-Length`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds when the server sent one.
    pub retry_after: Option<u64>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to one server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects with a bounded timeout.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads one response on the persistent
    /// connection.
    ///
    /// # Errors
    ///
    /// I/O failures and unframeable responses ([`io::ErrorKind::InvalidData`]).
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: defender\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// POSTs a JSON body to `/v1/solve`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn solve(&mut self, body: &str) -> io::Result<Response> {
        self.request("POST", "/v1/solve", body.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let head_end = loop {
            if let Some(end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed before a full response head"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let body_start = head_end + 4;

        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;

        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                "retry-after" => retry_after = value.parse().ok(),
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }

        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response body"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Response {
            status,
            retry_after,
            keep_alive,
            body,
        })
    }
}
