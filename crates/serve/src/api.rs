//! The `/v1/solve` wire format: request parsing with a typed error
//! taxonomy and response rendering.
//!
//! A request is a JSON object naming the graph either as a strict graph6
//! string (`{"graph6": "DQc", ...}`) or as an explicit edge list
//! (`{"edges": [[0,1],[1,2]], "n": 3, ...}`), plus the game parameters
//! `k` (defender tuple size) and `nu` (attacker count). Every reject is
//! a [`HttpError`] whose `kind` is machine-stable — the graph6 parser's
//! error taxonomy ([`Graph6Error`]) passes through variant-for-variant
//! (`TrailingData`, `NonzeroPadding`, ...), so an HTTP client sees
//! exactly what a CLI caller sees. No input reachable from the network
//! can panic: edge lists are range- and loop-checked before they touch
//! [`GraphBuilder`]'s asserting API.

use defender_core::algorithm::ATupleReport;
use defender_core::model::TupleGame;
use defender_core::pure::PureNeOutcome;
use defender_core::solve::ExactEquilibrium;
use defender_core::tuple::Tuple;
use defender_graph::graph6::{from_graph6, Graph6Error};
use defender_graph::{Graph, GraphBuilder, VertexId};
use defender_num::Ratio;
use defender_obs::json::{self, JsonArray, JsonObject, JsonValue};

use crate::http::HttpError;

/// A validated solve request: the instance graph plus game parameters.
#[derive(Debug)]
pub struct SolveRequest {
    /// The instance graph, in the caller's labeling.
    pub graph: Graph,
    /// Defender tuple size `k`.
    pub k: usize,
    /// Attacker count `ν`.
    pub nu: usize,
}

/// How the response was produced; reported back to the caller and
/// asserted by the load generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served straight from the canonical-key memo.
    Hit,
    /// This request's solve ran (first request of its class).
    Miss,
    /// Another in-flight request for the same class solved; this one
    /// waited and shared the result.
    Coalesced,
}

impl CacheStatus {
    /// Wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

fn graph6_error(e: &Graph6Error) -> HttpError {
    let kind = match e {
        Graph6Error::Empty => "Empty",
        Graph6Error::BadCharacter { .. } => "BadCharacter",
        Graph6Error::Truncated => "Truncated",
        Graph6Error::TooLarge => "TooLarge",
        Graph6Error::TrailingData { .. } => "TrailingData",
        Graph6Error::NonzeroPadding => "NonzeroPadding",
    };
    HttpError::bad_request(kind, format!("graph6: {e}"))
}

/// Parses and validates a `/v1/solve` body. `max_vertices` bounds the
/// instance size the server is willing to solve (422 beyond it) — the
/// graph6 header alone can claim a quarter-million vertices, so the
/// bound is checked before any per-vertex allocation happens.
pub fn parse_solve_request(body: &[u8], max_vertices: usize) -> Result<SolveRequest, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::bad_request("BadJson", "body is not valid UTF-8"))?;
    let doc = json::parse(text)
        .map_err(|e| HttpError::bad_request("BadJson", format!("body is not valid JSON: {e}")))?;

    let uint_field = |name: &str| -> Result<usize, HttpError> {
        doc.get(name)
            .and_then(JsonValue::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| {
                HttpError::bad_request(
                    "BadRequest",
                    format!("missing or non-integer field {name:?}"),
                )
            })
    };
    let k = uint_field("k")?;
    let nu = uint_field("nu")?;

    let graph = match (doc.get("graph6"), doc.get("edges")) {
        (Some(_), Some(_)) => {
            return Err(HttpError::bad_request(
                "BadRequest",
                "give either \"graph6\" or \"edges\", not both",
            ))
        }
        (Some(g6), None) => {
            let s = g6.as_str().ok_or_else(|| {
                HttpError::bad_request("BadRequest", "\"graph6\" must be a string")
            })?;
            // Refuse oversized claims from the header before building
            // adjacency: a 3-byte header can promise 258047 vertices.
            let claimed = graph6_vertex_claim(s);
            if claimed > max_vertices {
                return Err(too_many_vertices(claimed, max_vertices));
            }
            from_graph6(s).map_err(|e| graph6_error(&e))?
        }
        (None, Some(edges)) => parse_edge_list(edges, doc.get("n"), max_vertices)?,
        (None, None) => {
            return Err(HttpError::bad_request(
                "BadRequest",
                "missing graph: give \"graph6\" or \"edges\"",
            ))
        }
    };
    if graph.vertex_count() > max_vertices {
        return Err(too_many_vertices(graph.vertex_count(), max_vertices));
    }

    Ok(SolveRequest { graph, k, nu })
}

fn too_many_vertices(n: usize, max: usize) -> HttpError {
    HttpError {
        status: 422,
        kind: "TooLarge",
        message: format!("graph has {n} vertices; this server accepts at most {max}"),
    }
}

/// Reads the vertex count a graph6 string claims without decoding the
/// payload (0 when the header is malformed — the real parser will
/// produce the typed error).
fn graph6_vertex_claim(s: &str) -> usize {
    let b = s.trim().as_bytes();
    match b {
        [c, ..] if (b'?'..=b'}').contains(c) && *c != b'~' => (c - b'?') as usize,
        [b'~', rest @ ..] if rest.len() >= 3 && rest[0] != b'~' => rest[..3]
            .iter()
            .try_fold(0usize, |acc, &c| {
                (b'?'..=b'~')
                    .contains(&c)
                    .then(|| acc * 64 + (c - b'?') as usize)
            })
            .unwrap_or(0),
        [b'~', b'~', rest @ ..] if rest.len() >= 6 => rest[..6]
            .iter()
            .try_fold(0usize, |acc, &c| {
                (b'?'..=b'~')
                    .contains(&c)
                    .then(|| acc * 64 + (c - b'?') as usize)
            })
            .unwrap_or(0),
        _ => 0,
    }
}

/// Validates an `"edges"` array (with optional explicit `"n"`) into a
/// simple graph. Every malformed shape is a `BadEdgeList` reject —
/// nothing here reaches [`GraphBuilder`]'s panicking preconditions.
fn parse_edge_list(
    edges: &JsonValue,
    n: Option<&JsonValue>,
    max_vertices: usize,
) -> Result<Graph, HttpError> {
    let bad = |message: String| HttpError::bad_request("BadEdgeList", message);
    let items = edges
        .as_array()
        .ok_or_else(|| bad("\"edges\" must be an array of [u, v] pairs".to_owned()))?;

    let mut pairs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ends = item
            .as_array()
            .ok_or_else(|| bad(format!("edge {i} is not a [u, v] pair")))?;
        let [u, v] = ends else {
            return Err(bad(format!("edge {i} is not a pair")));
        };
        let (Some(u), Some(v)) = (u.as_u64(), v.as_u64()) else {
            return Err(bad(format!("edge {i} has a non-integer endpoint")));
        };
        let (u, v) = (u as usize, v as usize);
        if u == v {
            return Err(bad(format!("edge {i} is a self-loop ({u}, {v})")));
        }
        if u >= max_vertices || v >= max_vertices {
            return Err(too_many_vertices(u.max(v) + 1, max_vertices));
        }
        pairs.push((u, v));
    }

    let implied = pairs.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = match n {
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| bad("\"n\" must be a non-negative integer".to_owned()))?
                as usize;
            if n > max_vertices {
                return Err(too_many_vertices(n, max_vertices));
            }
            if n < implied {
                return Err(bad(format!(
                    "\"n\" is {n} but an edge mentions vertex {}",
                    implied - 1
                )));
            }
            n
        }
        None => implied,
    };

    let mut b = GraphBuilder::new(n);
    for (u, v) in pairs {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Renders the typed error JSON body for `err`.
#[must_use]
pub fn render_error(err: &HttpError) -> Vec<u8> {
    let mut inner = JsonObject::new();
    inner.field_str("kind", err.kind);
    inner.field_str("message", &err.message);
    let mut doc = JsonObject::new();
    doc.field_raw("error", &inner.finish());
    doc.finish().into_bytes()
}

/// Everything the handler computed about one instance, ready to render.
#[derive(Debug)]
pub struct SolveOutcome<'a> {
    /// Canonical graph6 key of the instance's isomorphism class.
    pub canonical: &'a str,
    /// How the equilibrium was obtained.
    pub status: CacheStatus,
    /// The exact mixed equilibrium, in the caller's labeling.
    pub equilibrium: &'a ExactEquilibrium,
    /// Pure-NE existence (Theorem 3.1).
    pub pure: &'a PureNeOutcome,
    /// The `A_tuple` construction when the instance admits one.
    pub a_tuple: Option<(&'static str, &'a ATupleReport)>,
    /// Attacker's best response against the equilibrium.
    pub attacker_br: (VertexId, Ratio),
    /// Defender's best response `(tuple, gain, exact?)`.
    pub defender_br: (&'a Tuple, Ratio, bool),
}

/// Renders the `/v1/solve` 200 body.
#[must_use]
pub fn render_solve_response(game: &TupleGame<'_>, out: &SolveOutcome<'_>) -> Vec<u8> {
    let graph = game.graph();
    let edge_pairs = |t: &Tuple| {
        let mut arr = JsonArray::new();
        for &e in t.edges() {
            let ends = graph.endpoints(e);
            let mut pair = JsonArray::new();
            pair.push_u64(ends.u().index() as u64);
            pair.push_u64(ends.v().index() as u64);
            arr.push_raw(&pair.finish());
        }
        arr.finish()
    };

    let mut doc = JsonObject::new();
    doc.field_u64("n", graph.vertex_count() as u64);
    doc.field_u64("m", graph.edge_count() as u64);
    doc.field_u64("k", game.k() as u64);
    doc.field_u64("nu", game.attacker_count() as u64);
    doc.field_str("canonical", out.canonical);
    doc.field_str("cache", out.status.as_str());
    doc.field_str("value", &out.equilibrium.value.to_string());
    doc.field_str("defender_gain", &out.equilibrium.defender_gain.to_string());

    let mut pure = JsonObject::new();
    match out.pure {
        PureNeOutcome::Exists { cover, .. } => {
            pure.field_bool("exists", true);
            let mut arr = JsonArray::new();
            for &e in cover {
                let ends = graph.endpoints(e);
                let mut pair = JsonArray::new();
                pair.push_u64(ends.u().index() as u64);
                pair.push_u64(ends.v().index() as u64);
                arr.push_raw(&pair.finish());
            }
            pure.field_raw("cover", &arr.finish());
        }
        PureNeOutcome::None { min_cover_size } => {
            pure.field_bool("exists", false);
            pure.field_u64("min_cover_size", *min_cover_size as u64);
        }
    }
    doc.field_raw("pure_ne", &pure.finish());

    let mut attacker = JsonArray::new();
    for (v, p) in out.equilibrium.config.attacker(0).iter() {
        let mut item = JsonObject::new();
        item.field_u64("vertex", v.index() as u64);
        item.field_str("p", &p.to_string());
        attacker.push_raw(&item.finish());
    }
    let mut defender = JsonArray::new();
    for (t, p) in out.equilibrium.config.defender().iter() {
        let mut item = JsonObject::new();
        item.field_raw("edges", &edge_pairs(t));
        item.field_str("p", &p.to_string());
        defender.push_raw(&item.finish());
    }
    let mut mixed = JsonObject::new();
    mixed.field_raw("attacker", &attacker.finish());
    mixed.field_raw("defender", &defender.finish());
    doc.field_raw("equilibrium", &mixed.finish());

    let mut a_tuple = JsonObject::new();
    match &out.a_tuple {
        Some((route, report)) => {
            a_tuple.field_bool("applies", true);
            a_tuple.field_str("route", route);
            a_tuple.field_u64("e_num", report.e_num as u64);
            a_tuple.field_u64("delta", report.delta as u64);
            a_tuple.field_str("defender_gain", &report.ne.defender_gain().to_string());
            a_tuple.field_str("summary", &report.summary());
        }
        None => {
            a_tuple.field_bool("applies", false);
        }
    }
    doc.field_raw("a_tuple", &a_tuple.finish());

    let mut br = JsonObject::new();
    let mut abr = JsonObject::new();
    abr.field_u64("vertex", out.attacker_br.0.index() as u64);
    abr.field_str("survival", &out.attacker_br.1.to_string());
    br.field_raw("attacker", &abr.finish());
    let mut dbr = JsonObject::new();
    dbr.field_raw("edges", &edge_pairs(out.defender_br.0));
    dbr.field_str("gain", &out.defender_br.1.to_string());
    dbr.field_bool("exact", out.defender_br.2);
    br.field_raw("defender", &dbr.finish());
    doc.field_raw("best_response", &br.finish());

    doc.finish().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_graph6_and_edge_list_spellings_of_the_same_graph() {
        let g6 = parse_solve_request(br#"{"graph6": "DQo", "k": 1, "nu": 1}"#, 64).unwrap();
        let edges = parse_solve_request(
            br#"{"edges": [[0,1],[1,2],[2,3],[3,4]], "n": 5, "k": 1, "nu": 1}"#,
            64,
        )
        .unwrap();
        assert_eq!(g6.graph.vertex_count(), 5);
        assert_eq!(edges.graph.vertex_count(), 5);
        assert_eq!(edges.graph.edge_count(), 4);
        assert_eq!((g6.k, g6.nu), (1, 1));
    }

    #[test]
    fn graph6_taxonomy_passes_through_variant_for_variant() {
        for (body, kind) in [
            (&br#"{"graph6": "", "k": 1, "nu": 1}"#[..], "Empty"),
            (
                &br#"{"graph6": "DQo!!", "k": 1, "nu": 1}"#[..],
                "BadCharacter",
            ),
            (&br#"{"graph6": "D", "k": 1, "nu": 1}"#[..], "Truncated"),
            (
                &br#"{"graph6": "DQoA", "k": 1, "nu": 1}"#[..],
                "TrailingData",
            ),
            (
                &br#"{"graph6": "DQp", "k": 1, "nu": 1}"#[..],
                "NonzeroPadding",
            ),
        ] {
            let err = parse_solve_request(body, 64).unwrap_err();
            assert_eq!(err.status, 400, "{kind}");
            assert_eq!(err.kind, kind);
        }
    }

    #[test]
    fn edge_list_rejects_never_reach_the_builder_asserts() {
        for (body, kind) in [
            // Self-loop and out-of-range both panic in GraphBuilder;
            // here they must be typed 4xx rejects instead.
            (
                &br#"{"edges": [[2,2]], "k": 1, "nu": 1}"#[..],
                "BadEdgeList",
            ),
            (
                &br#"{"edges": [[0,9]], "n": 3, "k": 1, "nu": 1}"#[..],
                "BadEdgeList",
            ),
            (&br#"{"edges": [[0]], "k": 1, "nu": 1}"#[..], "BadEdgeList"),
            (
                &br#"{"edges": [[0,"x"]], "k": 1, "nu": 1}"#[..],
                "BadEdgeList",
            ),
            (&br#"{"edges": 7, "k": 1, "nu": 1}"#[..], "BadEdgeList"),
            (&br#"{"k": 1, "nu": 1}"#[..], "BadRequest"),
            (
                &br#"{"graph6": "DQo", "edges": [], "k": 1, "nu": 1}"#[..],
                "BadRequest",
            ),
            (&br#"{"graph6": "DQo", "nu": 1}"#[..], "BadRequest"),
            (&b"not json at all"[..], "BadJson"),
            (&[0xFF, 0xFE, 0x01][..], "BadJson"),
        ] {
            let err = parse_solve_request(body, 64).unwrap_err();
            assert_eq!(err.kind, kind, "body: {:?}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn oversized_claims_are_refused_before_decoding() {
        // Header claims 5000 vertices ('~' + three sextets); the 422
        // must fire without the parser materializing the adjacency.
        let body = br#"{"graph6": "~@MG", "k": 1, "nu": 1}"#;
        let err = parse_solve_request(body, 256).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.kind, "TooLarge");

        let err =
            parse_solve_request(br#"{"edges": [[0, 5000]], "k": 1, "nu": 1}"#, 256).unwrap_err();
        assert_eq!(err.status, 422);

        let err = parse_solve_request(br#"{"edges": [[0,1]], "n": 5000, "k": 1, "nu": 1}"#, 256)
            .unwrap_err();
        assert_eq!(err.status, 422);
    }

    #[test]
    fn error_bodies_are_typed_json() {
        let err = HttpError::bad_request("NonzeroPadding", "graph6: nonzero padding bits");
        let body = String::from_utf8(render_error(&err)).unwrap();
        let doc = json::parse(&body).unwrap();
        let inner = doc.get("error").unwrap();
        assert_eq!(
            inner.get("kind").and_then(JsonValue::as_str),
            Some("NonzeroPadding")
        );
    }
}
