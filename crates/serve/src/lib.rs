//! `defender-serve`: cache-first batched equilibrium serving over a
//! std-only HTTP front.
//!
//! This crate turns the batch solver into an always-on service. The
//! front is a hand-rolled HTTP/1.1 listener ([`http`]); the engine
//! behind it ([`solver`]) is cache-first — every request canonicalizes
//! its graph and probes the [`defender_cache`] memo, so isomorphic
//! re-queries are answered in O(canonical form) without touching the
//! LP — with in-flight coalescing (one solve fans out to all concurrent
//! waiters of a class) and micro-batched misses fanned over
//! [`defender_par`]. Overload sheds with `429 + Retry-After` instead of
//! queueing unboundedly.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/solve` | graph6 or edge list + `(k, ν)` → equilibrium |
//! | `GET /v1/metrics` | obs snapshot + judged counters |
//! | `GET /v1/healthz` | liveness + queue depth |
//! | `POST /v1/shutdown` | graceful stop (flushes the cache sidecar) |
//!
//! # Telemetry
//!
//! The request path ticks `srv.*` counters (requests, hits, misses,
//! coalesced, batches, shed, ...), a queue-depth gauge, and latency /
//! batch-size histograms, and wraps requests and batch rounds in
//! `span!` lanes, so `defender profile` and the bench gate cover
//! serving like any experiment. Live counters are warm-variant by
//! design; the jobs/warmth-invariant judged view is exposed as the
//! `judged` object of `GET /v1/metrics` (see [`solver`] docs).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod api;
pub mod client;
pub mod http;
pub mod solver;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use defender_cache::EquilibriumCache;
use defender_core::best_response::{attacker_best_response, defender_best_response_auto};
use defender_core::bipartite::a_tuple_bipartite_report;
use defender_core::pure::pure_ne_existence;
use defender_core::tree::a_tuple_tree_report;
use defender_graph::properties;
use defender_obs as obs;
use defender_obs::json::JsonObject;

use crate::api::{parse_solve_request, render_error, render_solve_response, SolveOutcome};
use crate::http::{HttpError, ReadOutcome, RequestReader};
use crate::solver::{request_game, Solver, SolverConfig, TUPLE_LIMIT};

/// Server tunables; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Cache directory for the persisted sidecar (in-memory when absent).
    pub cache_dir: Option<PathBuf>,
    /// Worker-pool width for batched solves (0 = all cores).
    pub jobs: usize,
    /// Micro-batch linger window for distinct concurrent misses.
    pub batch_window: Duration,
    /// Bound on queued solve classes; sheds past ¾ of this.
    pub max_queue: usize,
    /// Request body bound in bytes (413 beyond it).
    pub max_body: usize,
    /// Per-request solve deadline.
    pub deadline: Duration,
    /// Largest instance (vertices) the server will solve.
    pub max_vertices: usize,
    /// Concurrent-connection bound (503 beyond it).
    pub max_connections: usize,
    /// How often the dirty cache sidecar is flushed.
    pub flush_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: None,
            jobs: 0,
            batch_window: Duration::from_millis(5),
            max_queue: 64,
            max_body: 64 * 1024,
            deadline: Duration::from_secs(10),
            max_vertices: 64,
            max_connections: 64,
            flush_interval: Duration::from_secs(2),
        }
    }
}

/// State shared by the accept loop, connection handlers, and the flusher.
struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    cache: Arc<EquilibriumCache>,
    solver: Arc<Solver>,
    stop: AtomicBool,
    connections: AtomicUsize,
}

/// A running server; keep it to stop it.
pub struct Server {
    shared: Arc<Shared>,
    accept: Mutex<Option<JoinHandle<()>>>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr())
            .finish()
    }
}

impl Server {
    /// Binds, starts the solve engine and accept/flusher threads, and
    /// returns without blocking. `defender_par` width is set from
    /// `config.jobs`.
    ///
    /// # Errors
    ///
    /// Bind failures and cache-open failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        obs::enable();
        if config.jobs > 0 {
            defender_par::set_jobs(config.jobs);
        }
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => EquilibriumCache::open(dir)?,
            None => EquilibriumCache::in_memory(),
        });
        let solver = Solver::start(
            Arc::clone(&cache),
            SolverConfig {
                batch_window: config.batch_window,
                max_queue: config.max_queue,
                deadline: config.deadline,
            },
        );
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            config,
            addr,
            cache,
            solver,
            stop: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("srv-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let flush_shared = Arc::clone(&shared);
        let flusher = std::thread::Builder::new()
            .name("srv-flush".to_owned())
            .spawn(move || flush_loop(&flush_shared))?;

        Ok(Server {
            shared,
            accept: Mutex::new(Some(accept)),
            flusher: Mutex::new(Some(flusher)),
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the server stops (via [`Server::shutdown`] or a
    /// `POST /v1/shutdown`), then flushes the cache sidecar.
    pub fn wait(&self) {
        let accept = self.lock_thread(&self.accept);
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let flusher = self.lock_thread(&self.flusher);
        if let Some(handle) = flusher {
            let _ = handle.join();
        }
        self.shared.solver.shutdown();
        // Final unconditional flush: batched flushing must never lose
        // the tail of the store at exit.
        let _ = self.shared.cache.persist();
    }

    /// Requests a stop and unblocks the accept loop.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
    }

    fn lock_thread(&self, slot: &Mutex<Option<JoinHandle<()>>>) -> Option<JoinHandle<()>> {
        slot.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// Sets the stop flag and pokes the accept loop awake with a throwaway
/// connection (std has no listener interruption).
fn request_stop(shared: &Shared) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let active = shared.connections.fetch_add(1, Ordering::AcqRel) + 1;
        obs::gauge!("srv.connections").set(active as u64);
        if active > shared.config.max_connections {
            let err = HttpError {
                status: 503,
                kind: "Overloaded",
                message: format!("connection limit {} reached", shared.config.max_connections),
            };
            let mut stream = stream;
            let _ =
                http::write_response(&mut stream, err.status, &render_error(&err), false, Some(1));
            release_connection(shared);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("srv-conn".to_owned())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                release_connection(&conn_shared);
            });
        if spawned.is_err() {
            release_connection(shared);
        }
    }
}

fn release_connection(shared: &Shared) {
    let active = shared.connections.fetch_sub(1, Ordering::AcqRel) - 1;
    obs::gauge!("srv.connections").set(active as u64);
}

/// Flushes the dirty sidecar on an interval until stop, then once more.
/// Sleeps in 100 ms steps so shutdown stays prompt under long intervals.
fn flush_loop(shared: &Shared) {
    'outer: loop {
        let mut slept = Duration::ZERO;
        while slept < shared.config.flush_interval {
            if shared.stop.load(Ordering::Acquire) {
                break 'outer;
            }
            let step = Duration::from_millis(100).min(shared.config.flush_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        let _ = shared.cache.flush_if_dirty();
    }
    let _ = shared.cache.flush_if_dirty();
}

/// Serves one connection: strict incremental parsing, pipelining, and a
/// close on the first unframeable request. A peer disconnecting
/// mid-response surfaces as a write error and simply ends the loop —
/// no panic path is reachable from the network.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Idle/stalled peers release the thread after the deadline + slack.
    let _ = stream.set_read_timeout(Some(shared.config.deadline + Duration::from_secs(5)));
    let mut reader = RequestReader::new(shared.config.max_body);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match reader.next_request(&mut stream) {
            ReadOutcome::Closed => return,
            ReadOutcome::Error(err) => {
                obs::counter!("srv.errors").incr();
                let _ =
                    http::write_response(&mut stream, err.status, &render_error(&err), false, None);
                return;
            }
            ReadOutcome::Request(request) => {
                let _span = obs::span!("srv.request");
                obs::counter!("srv.requests").incr();
                let t0 = obs::trace::elapsed_ns();
                let keep_alive = request.keep_alive;
                let (status, body, retry_after) = route(&request, shared);
                obs::histogram!("srv.latency_ns")
                    .record(obs::trace::elapsed_ns().saturating_sub(t0));
                if status >= 400 {
                    obs::counter!("srv.errors").incr();
                }
                if http::write_response(&mut stream, status, &body, keep_alive, retry_after)
                    .is_err()
                {
                    return; // peer went away mid-response
                }
                if !keep_alive {
                    return;
                }
                if request.method == "POST" && request.path == "/v1/shutdown" {
                    return;
                }
            }
        }
    }
}

/// Dispatches one parsed request to its endpoint.
fn route(request: &http::Request, shared: &Shared) -> (u16, Vec<u8>, Option<u64>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/solve") => match solve_endpoint(&request.body, shared) {
            Ok(body) => (200, body, None),
            Err(err) => {
                let retry = (err.status == 429 || err.status == 503)
                    .then(|| (shared.config.batch_window.as_millis() as u64 / 1000).max(1));
                (err.status, render_error(&err), retry)
            }
        },
        ("GET", "/v1/metrics") => (200, metrics_endpoint(shared), None),
        ("GET", "/v1/healthz") => (200, healthz_endpoint(shared), None),
        ("POST", "/v1/shutdown") => {
            request_stop(shared);
            (200, b"{\"status\": \"stopping\"}".to_vec(), None)
        }
        (_, "/v1/solve" | "/v1/metrics" | "/v1/healthz" | "/v1/shutdown") => {
            let err = HttpError {
                status: 405,
                kind: "MethodNotAllowed",
                message: format!("{} is not valid for {}", request.method, request.path),
            };
            (err.status, render_error(&err), None)
        }
        (_, path) => {
            let err = HttpError {
                status: 404,
                kind: "NotFound",
                message: format!("no route for {path}"),
            };
            (err.status, render_error(&err), None)
        }
    }
}

fn solve_endpoint(body: &[u8], shared: &Shared) -> Result<Vec<u8>, HttpError> {
    let parsed = parse_solve_request(body, shared.config.max_vertices)?;
    let game = request_game(&parsed.graph, parsed.k, parsed.nu)?;
    let served = shared.solver.solve(&game)?;

    // The paper-side extras are combinatorial (no LP): pure existence
    // (Thm 3.1), the A_tuple construction on forests / bipartite graphs
    // (Alg. 4.12), and both best responses against the equilibrium.
    let pure = pure_ne_existence(&game);
    let a_tuple_report = a_tuple_tree_report(&game)
        .map(|r| ("tree", r))
        .ok()
        .or_else(|| {
            properties::is_bipartite(game.graph())
                .then(|| {
                    a_tuple_bipartite_report(&game)
                        .map(|r| ("bipartite", r))
                        .ok()
                })
                .flatten()
        });
    let attacker_br = attacker_best_response(&game, &served.equilibrium.config);
    let defender_br = defender_best_response_auto(&game, &served.equilibrium.config, TUPLE_LIMIT);

    Ok(render_solve_response(
        &game,
        &SolveOutcome {
            canonical: &served.canonical,
            status: served.status,
            equilibrium: &served.equilibrium,
            pure: &pure,
            a_tuple: a_tuple_report.as_ref().map(|(route, r)| (*route, r)),
            attacker_br,
            defender_br: (&defender_br.0, defender_br.1, defender_br.2),
        },
    ))
}

fn metrics_endpoint(shared: &Shared) -> Vec<u8> {
    let snapshot = obs::snapshot();
    let mut judged = JsonObject::new();
    for (name, v) in shared.solver.judged_counters() {
        judged.field_u64(&name, v);
    }
    let mut doc = JsonObject::new();
    doc.field_raw("snapshot", &snapshot.to_json());
    doc.field_raw("judged", &judged.finish());
    doc.field_u64("served_classes", shared.solver.served_classes() as u64);
    doc.field_u64("cached_classes", shared.cache.len() as u64);
    doc.finish().into_bytes()
}

fn healthz_endpoint(shared: &Shared) -> Vec<u8> {
    let mut doc = JsonObject::new();
    doc.field_str("status", "ok");
    doc.field_u64("cached_classes", shared.cache.len() as u64);
    doc.field_u64(
        "connections",
        shared.connections.load(Ordering::Acquire) as u64,
    );
    doc.finish().into_bytes()
}
