//! The serving solve path: cache-first probe, in-flight coalescing,
//! micro-batched misses on the deterministic pool, and admission
//! control under overload.
//!
//! Requests flow through three gates:
//!
//! 1. **Probe** — the canonical-key memo is consulted without replaying
//!    stored counter deltas ([`defender_cache::EquilibriumCache::probe`]).
//!    A warm class is answered here in O(canonical form), solve-free.
//! 2. **Coalesce** — a miss joins the in-flight table: if another
//!    request for the same canonical class is already queued or
//!    solving, this one just waits for that solve and shares the result
//!    (`srv.coalesced`). One solve fans out to every waiter.
//! 3. **Batch** — a genuinely new class is enqueued for the batcher
//!    thread, which sleeps up to the batch window collecting more
//!    distinct classes and then fans the whole batch over
//!    [`defender_par::par_map`] as one round (`srv.batches`,
//!    `srv.batch_size`).
//!
//! Overload is governed at gate 3: the queue is bounded, new classes
//! are shed with `429 + Retry-After` once depth crosses the watermark
//! (¾ of `--max-queue`), and every waiter carries a deadline — hits and
//! coalesced joins keep being served while fresh work sheds, so a
//! warmed server degrades to its cache instead of melting.
//!
//! # Judged counters
//!
//! The serving loop's *live* counters are warm-variant by design: a
//! cold instance shows `lp.*` solve activity, a warm one must show
//! none. The jobs/warmth-invariant "judged" view is reconstructed from
//! the served class *set*: [`Solver::judged_counters`] sums the stored
//! per-class solve deltas over every class this process served
//! (`Σ class-deltas`), which is exactly what a cold batch run over one
//! representative per class would tick — invariant to cache warmth,
//! worker width, request multiplicity, and arrival order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use defender_cache::{CacheKey, EquilibriumCache};
use defender_core::model::TupleGame;
use defender_core::solve::ExactEquilibrium;
use defender_graph::canonical::canonical_form;
use defender_graph::graph6::from_graph6;
use defender_graph::{Graph, VertexId};
use defender_num::Ratio;
use defender_obs as obs;

use crate::api::CacheStatus;
use crate::http::HttpError;

/// Tuple-enumeration ceiling for served solves (matches the CLI default).
pub const TUPLE_LIMIT: usize = 100_000;

/// Tunables for the solve path.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// How long the batcher waits for more distinct classes before
    /// solving the round.
    pub batch_window: Duration,
    /// Bound on queued (not yet solving) classes.
    pub max_queue: usize,
    /// Per-request wait bound; expiring waiters get 503.
    pub deadline: Duration,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            batch_window: Duration::from_millis(5),
            max_queue: 64,
            deadline: Duration::from_secs(10),
        }
    }
}

/// Result of one solve request, ready for rendering.
#[derive(Debug)]
pub struct Served {
    /// The equilibrium, relabeled onto the request's graph.
    pub equilibrium: ExactEquilibrium,
    /// Canonical graph6 key of the request's class.
    pub canonical: String,
    /// Hit / miss / coalesced.
    pub status: CacheStatus,
}

/// One class's in-flight solve; waiters block on `cv` until `done`.
struct InFlight {
    done: Mutex<Option<Result<(), HttpError>>>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Arc<InFlight> {
        Arc::new(InFlight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn resolve(&self, result: Result<(), HttpError>) {
        *self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
        self.cv.notify_all();
    }

    /// Waits up to `deadline`; `None` means the deadline expired.
    fn wait(&self, deadline: Duration) -> Option<Result<(), HttpError>> {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut remaining = deadline;
        loop {
            if let Some(result) = done.clone() {
                return Some(result);
            }
            let t0 = std::time::Instant::now();
            let (guard, timeout) = self
                .cv
                .wait_timeout(done, remaining)
                // lint: allow(panic) a poisoned waiter mutex means a panic already in flight
                .expect("inflight poisoned");
            done = guard;
            if timeout.timed_out() {
                return done.clone();
            }
            remaining = remaining.saturating_sub(t0.elapsed());
        }
    }
}

/// The shared solve engine behind every connection handler.
pub struct Solver {
    cache: Arc<EquilibriumCache>,
    config: SolverConfig,
    queue: Mutex<VecDeque<CacheKey>>,
    queue_cv: Condvar,
    inflight: Mutex<BTreeMap<CacheKey, Arc<InFlight>>>,
    served: Mutex<BTreeSet<CacheKey>>,
    stop: AtomicBool,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("config", &self.config)
            .field("queue_depth", &self.lock_queue().len())
            .finish()
    }
}

impl Solver {
    /// Starts the engine: one batcher thread over `cache`.
    pub fn start(cache: Arc<EquilibriumCache>, config: SolverConfig) -> Arc<Solver> {
        let solver = Arc::new(Solver {
            cache,
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(BTreeMap::new()),
            served: Mutex::new(BTreeSet::new()),
            stop: AtomicBool::new(false),
            batcher: Mutex::new(None),
        });
        let for_thread = Arc::clone(&solver);
        let handle = std::thread::Builder::new()
            .name("srv-batcher".to_owned())
            .spawn(move || for_thread.batch_loop())
            // lint: allow(panic) thread spawn fails only on resource exhaustion at startup
            .expect("spawn batcher thread");
        *solver.lock_batcher() = Some(handle);
        solver
    }

    /// Stops the batcher (failing queued classes) and joins it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.queue_cv.notify_all();
        if let Some(handle) = self.lock_batcher().take() {
            let _ = handle.join();
        }
    }

    /// Serves one instance: probe, coalesce, or enqueue + wait.
    ///
    /// # Errors
    ///
    /// `429 Overloaded` past the shed watermark, `503 DeadlineExceeded`
    /// when the solve misses this request's deadline, and solve errors.
    pub fn solve(&self, game: &TupleGame<'_>) -> Result<Served, HttpError> {
        let t0 = obs::trace::elapsed_ns();
        let form = canonical_form(game.graph());
        obs::counter!("cache.canon_ns").add(obs::trace::elapsed_ns().saturating_sub(t0));
        let key: CacheKey = (form.key(), game.k(), game.attacker_count());

        if let Some(eq) = self.cache.probe(game, &form, TUPLE_LIMIT) {
            obs::counter!("srv.hits").incr();
            self.lock_served().insert(key);
            return Ok(Served {
                equilibrium: eq,
                canonical: form.key(),
                status: CacheStatus::Hit,
            });
        }

        // Join or open the class's in-flight slot. Shedding applies only
        // to *new* classes: joins ride a solve that is already paid for.
        let (slot, status) = {
            let mut inflight = self.lock_inflight();
            match inflight.get(&key) {
                Some(slot) => (Arc::clone(slot), CacheStatus::Coalesced),
                None => {
                    let depth = {
                        let mut queue = self.lock_queue();
                        if queue.len() >= self.shed_watermark() {
                            obs::counter!("srv.shed").incr();
                            return Err(HttpError {
                                status: 429,
                                kind: "Overloaded",
                                message: format!(
                                    "solve queue is at {} of {}; retry shortly",
                                    queue.len(),
                                    self.config.max_queue
                                ),
                            });
                        }
                        queue.push_back(key.clone());
                        queue.len()
                    };
                    obs::gauge!("srv.queue_depth").set_max(depth as u64);
                    let slot = InFlight::new();
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    self.queue_cv.notify_one();
                    (slot, CacheStatus::Miss)
                }
            }
        };
        match status {
            CacheStatus::Miss => obs::counter!("srv.misses").incr(),
            _ => obs::counter!("srv.coalesced").incr(),
        }

        match slot.wait(self.config.deadline) {
            Some(Ok(())) => {}
            Some(Err(e)) => return Err(e),
            None => {
                obs::counter!("srv.deadline").incr();
                return Err(HttpError {
                    status: 503,
                    kind: "DeadlineExceeded",
                    message: format!(
                        "solve did not finish within {} ms",
                        self.config.deadline.as_millis()
                    ),
                });
            }
        }

        // The class is cached now; serve this request's labeling from it.
        let eq = self
            .cache
            .probe(game, &form, TUPLE_LIMIT)
            .ok_or(HttpError {
                status: 500,
                kind: "Internal",
                message: "solved class failed to relabel onto the request graph".to_owned(),
            })?;
        self.lock_served().insert(key);
        Ok(Served {
            equilibrium: eq,
            canonical: form.key(),
            status,
        })
    }

    /// The warmth/jobs-invariant judged counters: `Σ` of stored solve
    /// deltas over every class this process has served (see module docs).
    pub fn judged_counters(&self) -> Vec<(String, u64)> {
        let served = self.lock_served();
        self.cache.replay_sums(served.iter())
    }

    /// Number of distinct canonical classes served so far.
    pub fn served_classes(&self) -> usize {
        self.lock_served().len()
    }

    fn shed_watermark(&self) -> usize {
        (self.config.max_queue * 3 / 4).max(1)
    }

    /// The batcher: sleep until work arrives, linger one batch window to
    /// coalesce more distinct classes into the round, then fan the round
    /// over the worker pool.
    fn batch_loop(&self) {
        loop {
            let mut queue = self.lock_queue();
            while queue.is_empty() && !self.stop.load(Ordering::Acquire) {
                // lint: allow(panic) a poisoned queue means a panic already in flight
                queue = self.queue_cv.wait(queue).expect("queue poisoned");
            }
            if self.stop.load(Ordering::Acquire) {
                drop(queue);
                self.fail_pending();
                return;
            }
            drop(queue);

            // Linger: let concurrent distinct misses join this round.
            std::thread::sleep(self.config.batch_window);

            let batch: Vec<CacheKey> = {
                let mut queue = self.lock_queue();
                queue.drain(..).collect()
            };
            if batch.is_empty() {
                continue;
            }
            let _span = obs::span!("srv.solve_batch");
            obs::counter!("srv.batches").incr();
            obs::counter!("srv.batched").add(batch.len() as u64);
            obs::histogram!("srv.batch_size").record(batch.len() as u64);

            let results = defender_par::par_map(&batch, |key| solve_class(&self.cache, key));
            let mut served = self.lock_served();
            let mut inflight = self.lock_inflight();
            for (key, result) in batch.iter().zip(results) {
                if result.is_ok() {
                    served.insert(key.clone());
                }
                if let Some(slot) = inflight.remove(key) {
                    slot.resolve(result);
                }
            }
        }
    }

    /// On shutdown, every queued-but-unsolved class fails its waiters.
    fn fail_pending(&self) {
        let pending: Vec<CacheKey> = self.lock_queue().drain(..).collect();
        let mut inflight = self.lock_inflight();
        for key in pending {
            if let Some(slot) = inflight.remove(&key) {
                slot.resolve(Err(HttpError {
                    status: 503,
                    kind: "Shutdown",
                    message: "server is shutting down".to_owned(),
                }));
            }
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<CacheKey>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, BTreeMap<CacheKey, Arc<InFlight>>> {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_served(&self) -> std::sync::MutexGuard<'_, BTreeSet<CacheKey>> {
        self.served
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_batcher(&self) -> std::sync::MutexGuard<'_, Option<JoinHandle<()>>> {
        self.batcher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Drop for Solver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Solves one canonical class through the memo. The canonical graph is
/// rebuilt from the key's graph6 (canonicalization is idempotent, so the
/// cache stores under the same key); the rebuild runs suppressed — it is
/// cache bookkeeping, and the solve's own ticks are captured and stored
/// as the class's judged deltas by the cache layer.
fn solve_class(cache: &EquilibriumCache, key: &CacheKey) -> Result<(), HttpError> {
    let (graph6, k, nu) = key;
    let graph = obs::suppressed(|| from_graph6(graph6)).map_err(|e| HttpError {
        status: 500,
        kind: "Internal",
        message: format!("canonical key failed to decode: {e}"),
    })?;
    let game = obs::suppressed(|| TupleGame::new(&graph, *k, *nu)).map_err(|e| HttpError {
        status: 422,
        kind: "BadGame",
        message: e.to_string(),
    })?;
    cache
        .solve_with_hint(&game, TUPLE_LIMIT, support_hint)
        .map(|_| ())
        .map_err(|e| HttpError {
            status: 422,
            kind: "Unsolvable",
            message: e.to_string(),
        })
}

/// LP warm start for sparse `k = 1` classes: early-exit support
/// enumeration on the edge-vertex incidence bimatrix (at `k = 1` the
/// tuple order is the edge order, so the row support doubles as the
/// LP's tuple support). Dense or `k > 1` classes solve cold.
fn support_hint(game: &TupleGame<'_>) -> Option<(Vec<usize>, Vec<usize>)> {
    let graph = game.graph();
    if game.k() != 1 || graph.edge_count() == 0 || graph.edge_count() > 6 {
        return None;
    }
    let incidence: Vec<Vec<Ratio>> = graph
        .edges()
        .map(|e| {
            let ends = graph.endpoints(e);
            (0..graph.vertex_count())
                .map(|v| {
                    if ends.contains(VertexId::new(v)) {
                        Ratio::ONE
                    } else {
                        Ratio::ZERO
                    }
                })
                .collect()
        })
        .collect();
    let bimatrix = defender_game::TwoPlayerMatrixGame::zero_sum(incidence);
    defender_game::first_equilibrium_supports(&bimatrix)
}

/// Builds the game for a request graph (422 on shape errors).
pub fn request_game<'g>(graph: &'g Graph, k: usize, nu: usize) -> Result<TupleGame<'g>, HttpError> {
    TupleGame::new(graph, k, nu).map_err(|e| HttpError {
        status: 422,
        kind: "BadGame",
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn coalesces_concurrent_identical_classes_into_one_solve() {
        obs::enable();
        let cache = Arc::new(EquilibriumCache::in_memory());
        let solver = Solver::start(
            Arc::clone(&cache),
            SolverConfig {
                batch_window: Duration::from_millis(30),
                ..SolverConfig::default()
            },
        );

        let before = obs::snapshot();
        const M: usize = 8;
        let statuses: Vec<CacheStatus> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..M)
                .map(|_| {
                    let solver = &solver;
                    scope.spawn(move || {
                        let graph = generators::petersen();
                        let game = TupleGame::new(&graph, 1, 1).unwrap();
                        solver.solve(&game).unwrap().status
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let after = obs::snapshot();

        // One solve for all M requests: exactly one cache miss...
        assert_eq!(
            after.counter("cache.misses").unwrap_or(0),
            before.counter("cache.misses").unwrap_or(0) + 1,
            "M concurrent identical-class requests must coalesce to one solve"
        );
        // ...and every request either led the miss or coalesced onto it
        // (a racer arriving after the solve resolves probes a hit).
        let misses = statuses.iter().filter(|s| **s == CacheStatus::Miss).count();
        assert_eq!(misses, 1, "statuses: {statuses:?}");
        assert_eq!(cache.len(), 1);
        assert_eq!(solver.served_classes(), 1);
        solver.shutdown();
    }

    #[test]
    fn sheds_new_classes_past_the_watermark_while_serving_hits() {
        obs::enable();
        let cache = Arc::new(EquilibriumCache::in_memory());
        // Warm one class first.
        let warm = generators::cycle(5);
        {
            let game = TupleGame::new(&warm, 1, 1).unwrap();
            cache.solve(&game, TUPLE_LIMIT).unwrap();
        }
        let solver = Solver::start(
            Arc::clone(&cache),
            SolverConfig {
                // Watermark max(4*3/4, 1) = 3 queued classes.
                max_queue: 4,
                // A long window holds the queue full while we probe.
                batch_window: Duration::from_millis(500),
                deadline: Duration::from_secs(30),
            },
        );

        // Fill the queue with distinct fresh classes from background
        // threads (they block awaiting the slow batch round).
        let fresh: Vec<Graph> = vec![
            generators::path(6),
            generators::cycle(7),
            generators::star(5),
        ];
        std::thread::scope(|scope| {
            for graph in &fresh {
                let solver = &solver;
                scope.spawn(move || {
                    let game = TupleGame::new(graph, 1, 1).unwrap();
                    // May succeed (solved this round) — only its
                    // queueing side effect matters here.
                    let _ = solver.solve(&game);
                });
            }
            // Wait until all three are queued.
            for _ in 0..200 {
                if solver.lock_queue().len() >= 3 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(solver.lock_queue().len() >= 3, "queue never filled");

            // A new class must now shed with 429...
            let wheel = generators::wheel(6);
            let game = TupleGame::new(&wheel, 1, 1).unwrap();
            let err = solver.solve(&game).unwrap_err();
            assert_eq!(err.status, 429);
            assert_eq!(err.kind, "Overloaded");

            // ...while the warmed class keeps serving from the cache.
            let game = TupleGame::new(&warm, 1, 1).unwrap();
            let served = solver.solve(&game).unwrap();
            assert_eq!(served.status, CacheStatus::Hit);
        });
        solver.shutdown();
    }

    #[test]
    fn judged_counters_are_warmth_invariant_per_served_class_set() {
        obs::enable();
        let cache = Arc::new(EquilibriumCache::in_memory());
        let graphs = [generators::cycle(5), generators::petersen()];

        // Cold server: both classes solve.
        let solver = Solver::start(Arc::clone(&cache), SolverConfig::default());
        for graph in &graphs {
            let game = TupleGame::new(graph, 1, 1).unwrap();
            assert_eq!(solver.solve(&game).unwrap().status, CacheStatus::Miss);
        }
        let cold = solver.judged_counters();
        solver.shutdown();

        // Warm server over the same cache: all hits, zero live lp work…
        let solver = Solver::start(Arc::clone(&cache), SolverConfig::default());
        let before = obs::snapshot();
        for graph in &graphs {
            let game = TupleGame::new(graph, 1, 1).unwrap();
            assert_eq!(solver.solve(&game).unwrap().status, CacheStatus::Hit);
        }
        let after = obs::snapshot();
        assert_eq!(
            after.counter("lp.simplex.pivots").unwrap_or(0),
            before.counter("lp.simplex.pivots").unwrap_or(0),
            "warm serving must be solve-free"
        );
        // …and byte-identical judged counters.
        assert_eq!(solver.judged_counters(), cold);
        assert!(!cold.is_empty());
        solver.shutdown();
    }

    #[test]
    fn solve_errors_propagate_to_every_waiter() {
        obs::enable();
        let cache = Arc::new(EquilibriumCache::in_memory());
        let solver = Solver::start(Arc::clone(&cache), SolverConfig::default());
        // k > m: TupleGame::new fails at request time, not solve time —
        // so exercise the solve-side failure with an empty-ish instance
        // the request layer admits. A single-edge graph with nu=1, k=1
        // solves fine; instead drive the deadline path.
        let solver2 = Solver::start(
            Arc::clone(&cache),
            SolverConfig {
                batch_window: Duration::from_millis(200),
                deadline: Duration::from_millis(1),
                ..SolverConfig::default()
            },
        );
        let graph = generators::complete(4);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let err = solver2.solve(&game).unwrap_err();
        assert_eq!(err.status, 503);
        assert_eq!(err.kind, "DeadlineExceeded");
        solver2.shutdown();
        solver.shutdown();
    }
}
