//! Minimal, strict HTTP/1.1 message framing over `std::io` streams.
//!
//! This is deliberately a subset: requests are `METHOD SP PATH SP
//! HTTP/1.x`, bodies are framed by `Content-Length` only (chunked
//! transfer coding is rejected, not buffered), and every bound —
//! header-block size, body size — is enforced *before* the bytes are
//! read, so a hostile peer cannot make the server allocate beyond its
//! configured limits. The reader is incremental: it consumes a stream
//! that may arrive one byte per `read` (TCP segmentation) and may carry
//! several pipelined requests back-to-back; leftover bytes after one
//! parsed request are retained for the next.
//!
//! Nothing in this module panics on network input; every malformed
//! message becomes a typed [`HttpError`] the caller renders as an error
//! response.

use std::io::{self, Read, Write};

/// Upper bound on the request-line + headers block, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/solve` (query strings are kept as-is).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// A request-level failure with the HTTP status and typed error kind it
/// must be reported as. `kind` feeds the `{"error":{"kind":...}}` JSON
/// body so clients can dispatch without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Stable machine-readable error kind.
    pub kind: &'static str,
    /// Human-oriented detail.
    pub message: String,
}

impl HttpError {
    /// 400 with a typed kind.
    #[must_use]
    pub fn bad_request(kind: &'static str, message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            kind,
            message: message.into(),
        }
    }
}

/// Incremental request reader holding leftover bytes between pipelined
/// requests on one connection.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
    max_body: usize,
}

/// Outcome of [`RequestReader::next_request`].
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed (or timed out) cleanly between requests.
    Closed,
    /// The peer sent something unframeable; respond and close.
    Error(HttpError),
}

impl RequestReader {
    /// A reader enforcing `max_body` bytes of `Content-Length`.
    #[must_use]
    pub fn new(max_body: usize) -> RequestReader {
        RequestReader {
            buf: Vec::new(),
            max_body,
        }
    }

    /// Reads one complete request from `stream`, however the bytes are
    /// segmented, retaining any pipelined surplus for the next call.
    pub fn next_request(&mut self, stream: &mut impl Read) -> ReadOutcome {
        // Phase 1: accumulate the head (request line + headers).
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return ReadOutcome::Error(HttpError {
                    status: 431,
                    kind: "HeadersTooLarge",
                    message: format!("header block exceeds {MAX_HEAD_BYTES} bytes"),
                });
            }
            match fill(stream, &mut self.buf) {
                Ok(0) => {
                    return if self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Error(HttpError::bad_request(
                            "TruncatedRequest",
                            "connection closed mid-request head",
                        ))
                    };
                }
                Ok(_) => {}
                Err(_) => return ReadOutcome::Closed,
            }
        };

        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h.to_owned(),
            Err(_) => {
                return ReadOutcome::Error(HttpError::bad_request(
                    "BadRequest",
                    "request head is not valid UTF-8",
                ))
            }
        };
        let body_start = head_end + 4;

        let parsed = match parse_head(&head) {
            Ok(p) => p,
            Err(e) => return ReadOutcome::Error(e),
        };
        let content_length = match body_framing(&parsed) {
            Ok(len) => len,
            Err(e) => return ReadOutcome::Error(e),
        };
        if content_length > self.max_body {
            return ReadOutcome::Error(HttpError {
                status: 413,
                kind: "PayloadTooLarge",
                message: format!(
                    "content-length {content_length} exceeds the {} byte limit",
                    self.max_body
                ),
            });
        }

        // Phase 2: accumulate the body.
        while self.buf.len() < body_start + content_length {
            match fill(stream, &mut self.buf) {
                Ok(0) => {
                    return ReadOutcome::Error(HttpError::bad_request(
                        "TruncatedRequest",
                        "connection closed mid-request body",
                    ))
                }
                Ok(_) => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }

        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        ReadOutcome::Request(Request {
            method: parsed.method,
            path: parsed.path,
            body,
            keep_alive: parsed.keep_alive,
        })
    }
}

struct ParsedHead {
    method: String,
    path: String,
    keep_alive: bool,
    /// Lowercased `(name, value)` pairs.
    headers: Vec<(String, String)>,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn fill(stream: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<usize> {
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n)
}

fn parse_head(head: &str) -> Result<ParsedHead, HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::bad_request("BadRequest", "empty request line"))?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(
            "BadRequest",
            format!("malformed request line {request_line:?}"),
        ));
    };
    if parts.next().is_some() || method.is_empty() || path.is_empty() {
        return Err(HttpError::bad_request(
            "BadRequest",
            format!("malformed request line {request_line:?}"),
        ));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError {
                status: 505,
                kind: "VersionNotSupported",
                message: format!("unsupported protocol version {other:?}"),
            })
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad_request(
                "BadRequest",
                format!("malformed header line {line:?}"),
            ));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let connection = header(&headers, "connection").map(str::to_ascii_lowercase);
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    Ok(ParsedHead {
        method: method.to_owned(),
        path: path.to_owned(),
        keep_alive,
        headers,
    })
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Decides how many body bytes the head promises.
fn body_framing(head: &ParsedHead) -> Result<usize, HttpError> {
    if header(&head.headers, "transfer-encoding").is_some() {
        return Err(HttpError {
            status: 501,
            kind: "TransferEncodingUnsupported",
            message: "transfer-encoding is not supported; frame with content-length".to_owned(),
        });
    }
    match header(&head.headers, "content-length") {
        Some(v) => v.parse::<usize>().map_err(|_| {
            HttpError::bad_request("BadRequest", format!("unparseable content-length {v:?}"))
        }),
        None if head.method == "POST" || head.method == "PUT" => Err(HttpError {
            status: 411,
            kind: "LengthRequired",
            message: "POST requires a content-length header".to_owned(),
        }),
        None => Ok(0),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes one `application/json` response. `retry_after` becomes a
/// `Retry-After: <seconds>` header (admission control's backoff hint).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u64>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that feeds its script one fragment per `read` call —
    /// simulating arbitrary TCP segmentation — then reports EOF.
    struct Fragmented {
        fragments: Vec<Vec<u8>>,
        next: usize,
    }

    impl Fragmented {
        fn new<const N: usize>(fragments: [&[u8]; N]) -> Fragmented {
            Fragmented {
                fragments: fragments.iter().map(|f| f.to_vec()).collect(),
                next: 0,
            }
        }
    }

    impl Read for Fragmented {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.fragments.len() {
                return Ok(0);
            }
            let frag = &self.fragments[self.next];
            assert!(frag.len() <= out.len(), "test fragments fit one read");
            out[..frag.len()].copy_from_slice(frag);
            self.next += 1;
            Ok(frag.len())
        }
    }

    fn read_one(reader: &mut RequestReader, stream: &mut impl Read) -> Request {
        match reader.next_request(stream) {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    fn read_err(reader: &mut RequestReader, stream: &mut impl Read) -> HttpError {
        match reader.next_request(stream) {
            ReadOutcome::Error(e) => e,
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_request_split_at_every_byte() {
        let wire = b"POST /v1/solve HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        let fragments: Vec<Vec<u8>> = wire.iter().map(|&b| vec![b]).collect();
        let mut stream = Fragmented { fragments, next: 0 };
        let mut reader = RequestReader::new(1024);
        let req = read_one(&mut reader, &mut stream);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn splits_pipelined_requests_and_preserves_order() {
        let mut stream = Fragmented::new([
            b"GET /v1/healthz HTTP/1.1\r\n\r\nPOST /v1/solve HTTP/1.1\r\ncontent-len",
            b"gth: 2\r\n\r\nhiGET /v1/metrics HTTP/1.1\r\nconnection: close\r\n\r\n",
        ]);
        let mut reader = RequestReader::new(1024);
        let first = read_one(&mut reader, &mut stream);
        assert_eq!(
            (first.method.as_str(), first.path.as_str()),
            ("GET", "/v1/healthz")
        );
        let second = read_one(&mut reader, &mut stream);
        assert_eq!(second.path, "/v1/solve");
        assert_eq!(second.body, b"hi");
        let third = read_one(&mut reader, &mut stream);
        assert_eq!(third.path, "/v1/metrics");
        assert!(!third.keep_alive);
        assert!(matches!(
            reader.next_request(&mut stream),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn oversized_content_length_is_rejected_before_the_body_arrives() {
        // The head promises 10 MiB; the reader must refuse at the
        // header, not buffer toward the promise.
        let mut stream = Fragmented::new([
            b"POST /v1/solve HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n".as_slice(),
        ]);
        let mut reader = RequestReader::new(4096);
        let err = read_err(&mut reader, &mut stream);
        assert_eq!(err.status, 413);
        assert_eq!(err.kind, "PayloadTooLarge");
    }

    #[test]
    fn post_without_content_length_is_411() {
        let mut stream = Fragmented::new([b"POST /v1/solve HTTP/1.1\r\n\r\n".as_slice()]);
        let err = read_err(&mut RequestReader::new(1024), &mut stream);
        assert_eq!(err.status, 411);
        assert_eq!(err.kind, "LengthRequired");
    }

    #[test]
    fn truncated_body_is_a_bad_request_not_a_hang() {
        let mut stream = Fragmented::new([
            b"POST /v1/solve HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort".as_slice(),
        ]);
        let err = read_err(&mut RequestReader::new(1024), &mut stream);
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "TruncatedRequest");
    }

    #[test]
    fn unbounded_header_block_is_refused() {
        let mut fragments = vec![b"GET / HTTP/1.1\r\n".to_vec()];
        for i in 0..4096 {
            fragments.push(format!("x-filler-{i}: aaaaaaaaaaaaaaaa\r\n").into_bytes());
        }
        let mut stream = Fragmented { fragments, next: 0 };
        let err = read_err(&mut RequestReader::new(1024), &mut stream);
        assert_eq!(err.status, 431);
    }

    #[test]
    fn malformed_lines_and_versions_get_typed_errors() {
        for (wire, status) in [
            (&b"NONSENSE\r\n\r\n"[..], 400),
            (&b"GET /x HTTP/2.0\r\n\r\n"[..], 505),
            (&b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n"[..], 400),
            (
                &b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"[..],
                501,
            ),
            (
                &b"POST /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n"[..],
                400,
            ),
        ] {
            let mut stream = Fragmented::new([wire]);
            let err = read_err(&mut RequestReader::new(1024), &mut stream);
            assert_eq!(
                err.status,
                status,
                "wire: {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn response_writer_frames_and_hints_backoff() {
        let mut out = Vec::new();
        write_response(&mut out, 429, b"{\"error\":{}}", false, Some(2)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("content-length: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":{}}"));
    }
}
