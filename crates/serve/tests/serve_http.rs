//! End-to-end tests over real loopback TCP: request routing, the typed
//! error taxonomy on the wire, adversarial framing (split segments,
//! pipelining, early disconnects), coalescing under concurrency, and
//! cache persistence across server generations.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use defender_obs::json::{self, JsonValue};
use defender_serve::client::Client;
use defender_serve::{ServeConfig, Server};

fn c5_body() -> String {
    let g6 = defender_graph::graph6::to_graph6(&defender_graph::generators::cycle(5));
    format!(r#"{{"graph6": "{g6}", "k": 1, "nu": 1}}"#)
}

fn test_server(config: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind loopback")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(30)).expect("connect")
}

fn parse(body: &[u8]) -> json::JsonValue {
    json::parse(std::str::from_utf8(body).expect("utf8 body")).expect("json body")
}

fn str_of<'a>(doc: &'a JsonValue, field: &str) -> &'a str {
    doc.get(field).and_then(JsonValue::as_str).expect(field)
}

/// The raw `"judged": {...}` object text out of a `/v1/metrics` body
/// (it is flat, so the first closing brace ends it).
fn judged_raw(body: &[u8]) -> String {
    let text = std::str::from_utf8(body).expect("utf8 metrics");
    let start = text.find("\"judged\": {").expect("judged object");
    let end = text[start..].find('}').expect("judged close") + start;
    text[start..=end].to_owned()
}

fn petersen_body() -> String {
    let g6 = defender_graph::graph6::to_graph6(&defender_graph::generators::petersen());
    format!(r#"{{"graph6": "{g6}", "k": 1, "nu": 1}}"#)
}

#[test]
fn solves_over_the_wire_and_reports_cache_status() {
    let server = test_server(ServeConfig::default());
    let mut client = connect(&server);

    // C5 cold: a miss with the exact value 2/5 (paper Theorem 4.5 on C5).
    let response = client.solve(&c5_body()).expect("solve");
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = parse(&response.body);
    assert_eq!(str_of(&doc, "cache"), "miss");
    assert_eq!(str_of(&doc, "value"), "2/5");
    assert_eq!(str_of(&doc, "defender_gain"), "2/5");
    assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(5));
    let pure = doc.get("pure_ne").expect("pure_ne");
    assert_eq!(pure.get("exists").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        pure.get("min_cover_size").and_then(JsonValue::as_u64),
        Some(3)
    );
    let eq = doc.get("equilibrium").expect("equilibrium");
    assert_eq!(
        eq.get("attacker")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(5),
        "C5's attacker equilibrium is uniform on all 5 vertices"
    );
    assert!(doc.get("best_response").is_some());

    // Same graph again on the same connection: a hit.
    let response = client.solve(&c5_body()).expect("solve again");
    let doc = parse(&response.body);
    assert_eq!(str_of(&doc, "cache"), "hit");

    // A relabeled C5 (edge list spelling a different vertex order):
    // isomorphic, so still a hit on the same canonical class.
    let iso = r#"{"edges": [[0,2],[2,4],[4,1],[1,3],[3,0]], "n": 5, "k": 1, "nu": 1}"#;
    let response = client.solve(iso).expect("isomorph");
    let doc = parse(&response.body);
    assert_eq!(str_of(&doc, "cache"), "hit", "isomorphs share one class");
    assert_eq!(str_of(&doc, "value"), "2/5");
}

#[test]
fn typed_errors_cross_the_wire() {
    let server = test_server(ServeConfig::default());
    let mut client = connect(&server);
    for (body, status, kind) in [
        (
            r#"{"graph6": "DQoA", "k": 1, "nu": 1}"#,
            400,
            "TrailingData",
        ),
        (
            r#"{"graph6": "DQp", "k": 1, "nu": 1}"#,
            400,
            "NonzeroPadding",
        ),
        (r#"{"edges": [[1,1]], "k": 1, "nu": 1}"#, 400, "BadEdgeList"),
        (r#"{"k": 1, "nu": 1}"#, 400, "BadRequest"),
        ("{", 400, "BadJson"),
        (r#"{"graph6": "~@MG", "k": 1, "nu": 1}"#, 422, "TooLarge"),
        (r#"{"graph6": "DQo", "k": 99, "nu": 1}"#, 422, "BadGame"),
    ] {
        let response = client.solve(body).expect("request");
        assert_eq!(response.status, status, "{body}");
        let doc = parse(&response.body);
        let err = doc.get("error").expect("error object");
        assert_eq!(str_of(err, "kind"), kind, "{body}");
    }

    // Routing errors.
    let response = client.request("GET", "/nope", b"").expect("404");
    assert_eq!(response.status, 404);
    let response = client.request("GET", "/v1/solve", b"").expect("405");
    assert_eq!(response.status, 405);
}

#[test]
fn oversized_bodies_get_413_and_close() {
    let server = test_server(ServeConfig {
        max_body: 256,
        ..ServeConfig::default()
    });
    let mut client = connect(&server);
    let huge = format!(
        r#"{{"edges": [{}], "k": 1, "nu": 1}}"#,
        (0..200)
            .map(|i| format!("[{i},{}]", i + 1))
            .collect::<Vec<_>>()
            .join(",")
    );
    let response = client.solve(&huge).expect("413 response");
    assert_eq!(response.status, 413);
    let doc = parse(&response.body);
    assert_eq!(
        str_of(doc.get("error").expect("error"), "kind"),
        "PayloadTooLarge"
    );
    assert!(
        !response.keep_alive,
        "unframeable request closes the connection"
    );
}

#[test]
fn split_segments_and_pipelining_work_over_tcp() {
    let server = test_server(ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    // Dribble one request a few bytes per segment.
    let c5 = c5_body();
    let body = c5.as_bytes();
    let head = format!(
        "POST /v1/solve HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let wire: Vec<u8> = head
        .into_bytes()
        .into_iter()
        .chain(body.iter().copied())
        .collect();
    for chunk in wire.chunks(7) {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Then pipeline two more requests back-to-back in one segment.
    let mut doubled = Vec::new();
    for _ in 0..2 {
        doubled.extend_from_slice(&wire);
    }
    stream.write_all(&doubled).expect("write pipelined");

    let mut raw = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Read until all three response *bodies* arrive — breaking on the
    // third status line alone can cut the last body mid-flight, before
    // its cache field is on the wire.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while std::time::Instant::now() < deadline {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
        let text = String::from_utf8_lossy(&raw);
        if text.matches("\"cache\": \"").count() == 3 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(
        text.matches("HTTP/1.1 200 OK").count(),
        3,
        "three pipelined responses, in order: {text}"
    );
    assert_eq!(text.matches("\"cache\": \"miss\"").count(), 1);
    assert_eq!(text.matches("\"cache\": \"hit\"").count(), 2);
}

#[test]
fn early_disconnects_leave_the_server_healthy() {
    let server = test_server(ServeConfig::default());

    // Disconnect mid-head.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /v1/solve HT")
            .expect("partial write");
        drop(stream);
    }
    // Disconnect mid-body.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /v1/solve HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"graph")
            .expect("partial body");
        drop(stream);
    }
    // Disconnect without reading the response.
    {
        let mut client = connect(&server);
        // Petersen takes a moment to solve; drop before the answer.
        let _ = client.request("POST", "/v1/solve", petersen_body().as_bytes());
        // (request waits for the response; to abandon mid-response use a
        // raw socket instead)
    }
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let wire = format!(
            "POST /v1/solve HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            c5_body().len(),
            c5_body()
        );
        stream.write_all(wire.as_bytes()).expect("full request");
        drop(stream); // gone before the server responds
    }

    // The server still answers.
    std::thread::sleep(Duration::from_millis(50));
    let mut client = connect(&server);
    let response = client.request("GET", "/v1/healthz", b"").expect("healthz");
    assert_eq!(response.status, 200);
    let response = client.solve(&c5_body()).expect("solve after abuse");
    assert_eq!(response.status, 200);
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_cache_miss() {
    defender_obs::enable();
    let server = test_server(ServeConfig {
        // A generous window so every racer lands while the class is
        // still in flight.
        batch_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let before = defender_obs::snapshot();

    const M: usize = 8;
    // Petersen: heavy enough that the solve outlasts request fan-in.
    let body = petersen_body();
    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..M)
            .map(|_| {
                let (server, body) = (&server, body.as_str());
                scope.spawn(move || {
                    let mut client = connect(server);
                    let response = client.solve(body).expect("solve");
                    assert_eq!(response.status, 200);
                    let doc = parse(&response.body);
                    str_of(&doc, "cache").to_owned()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let after = defender_obs::snapshot();

    assert_eq!(
        after.counter("cache.misses").unwrap_or(0) - before.counter("cache.misses").unwrap_or(0),
        1,
        "M concurrent identical requests must cost one solve; statuses: {statuses:?}"
    );
    assert_eq!(
        statuses.iter().filter(|s| s.as_str() == "miss").count(),
        1,
        "exactly one request leads the class: {statuses:?}"
    );
}

#[test]
fn metrics_and_judged_counters_survive_warm_restart() {
    let dir = std::env::temp_dir().join(format!("defender-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Generation 1: cold solve, then graceful shutdown via the endpoint.
    let judged_cold = {
        let server = test_server(ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let mut client = connect(&server);
        let response = client.solve(&c5_body()).expect("cold solve");
        assert_eq!(str_of(&parse(&response.body), "cache"), "miss");
        let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
        let doc = parse(&metrics.body);
        let judged = doc.get("judged").expect("judged object");
        assert!(
            judged.as_object().is_some_and(|o| !o.is_empty()),
            "cold judged counters include the solve's deltas"
        );
        let response = client
            .request("POST", "/v1/shutdown", b"")
            .expect("shutdown");
        assert_eq!(response.status, 200);
        server.wait();
        judged_raw(&metrics.body)
    };

    // Generation 2: same cache dir — the class is warm on disk.
    let server = test_server(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = connect(&server);
    let response = client.solve(&c5_body()).expect("warm solve");
    assert_eq!(
        str_of(&parse(&response.body), "cache"),
        "hit",
        "persisted class must hit across generations"
    );
    let metrics = client.request("GET", "/v1/metrics", b"").expect("metrics");
    assert_eq!(
        judged_raw(&metrics.body),
        judged_cold,
        "judged counters are byte-identical cold vs. warm"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
