//! Property-based tests for the strategic-game substrate, driven by the
//! vendored seeded PRNG (offline build: no external frameworks).

use defender_game::{nash, MixedStrategy, TwoPlayerMatrixGame};
use defender_num::rng::{Rng, StdRng};
use defender_num::Ratio;

const CASES: usize = 150;

fn small_ratio<R: Rng + ?Sized>(rng: &mut R) -> Ratio {
    let n = rng.gen_range(0..13) as i64 - 6;
    let d = rng.gen_range(1..5) as i64;
    Ratio::new(n, d)
}

fn matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Vec<Vec<Ratio>> {
    (0..rows)
        .map(|_| (0..cols).map(|_| small_ratio(rng)).collect())
        .collect()
}

fn mixed<R: Rng + ?Sized>(rng: &mut R, over: usize) -> MixedStrategy<usize> {
    let weights: Vec<u32> = (0..over).map(|_| rng.gen_range(1..6) as u32).collect();
    let total: i64 = weights.iter().map(|&w| i64::from(w)).sum();
    MixedStrategy::from_entries(
        weights
            .into_iter()
            .enumerate()
            .map(|(i, w)| (i, Ratio::new(i64::from(w), total)))
            .collect(),
    )
    .expect("positive weights normalize")
}

fn for_each_case(seed: u64, mut body: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        body(&mut rng);
    }
}

/// Expected payoff is bilinear: mixing commutes with expectation.
#[test]
fn expected_payoff_is_convex_combination() {
    for_each_case(0xC1, |rng| {
        let m = matrix(rng, 3, 3);
        let row = mixed(rng, 3);
        let col = mixed(rng, 3);
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let by_definition = nash::expected_payoff(&game, 0, &[row.clone(), col.clone()]);
        // Recompute by expanding the row mixture manually.
        let manual: Ratio = row
            .iter()
            .map(|(&i, p)| {
                p * nash::expected_payoff(&game, 0, &[MixedStrategy::pure(i), col.clone()])
            })
            .sum();
        assert_eq!(by_definition, manual);
    });
}

/// In zero-sum games the two expected payoffs negate each other.
#[test]
fn zero_sum_payoffs_negate() {
    for_each_case(0xC2, |rng| {
        let m = matrix(rng, 3, 2);
        let row = mixed(rng, 3);
        let col = mixed(rng, 2);
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let profile = [row, col];
        let a = nash::expected_payoff(&game, 0, &profile);
        let b = nash::expected_payoff(&game, 1, &profile);
        assert_eq!(a + b, Ratio::ZERO);
    });
}

/// Best response weakly dominates every pure alternative.
#[test]
fn best_response_is_optimal() {
    for_each_case(0xC3, |rng| {
        let m = matrix(rng, 3, 3);
        let row = mixed(rng, 3);
        let col = mixed(rng, 3);
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let profile = [row, col];
        for player in 0..2 {
            let (_, value) = nash::best_response(&game, player, &profile);
            for s in game_strategies(player) {
                let dev = nash::deviation_payoff(&game, player, &profile, &s);
                assert!(dev <= value);
            }
            // And the profile itself never beats its best response.
            assert!(nash::expected_payoff(&game, player, &profile) <= value);
        }
    });
}

/// Every pure equilibrium found by enumeration passes `verify` as a
/// degenerate mixed profile, and a profile passing verify has no
/// profitable pure deviation by definition.
#[test]
fn pure_equilibria_verify() {
    for_each_case(0xC4, |rng| {
        let m = matrix(rng, 3, 3);
        let game = TwoPlayerMatrixGame::zero_sum(m);
        for profile in nash::pure_equilibria(&game) {
            let mixed: Vec<MixedStrategy<usize>> =
                profile.iter().map(|&s| MixedStrategy::pure(s)).collect();
            let report = nash::verify(&game, &mixed);
            assert!(
                report.is_equilibrium(),
                "deviations: {:?}",
                report.deviations
            );
        }
    });
}

/// Support invariants of mixed strategies.
#[test]
fn mixed_strategy_invariants() {
    for_each_case(0xC5, |rng| {
        let s = mixed(rng, 4);
        let total: Ratio = s.iter().map(|(_, p)| p).sum();
        assert_eq!(total, Ratio::ONE);
        assert!(s.iter().all(|(_, p)| p > Ratio::ZERO));
        let support = s.support();
        assert!(support.windows(2).all(|w| w[0] < w[1]), "sorted support");
    });
}

fn game_strategies(player: usize) -> Vec<usize> {
    match player {
        0 | 1 => (0..3).collect(),
        _ => unreachable!(),
    }
}
