//! Property-based tests for the strategic-game substrate.

use defender_game::{nash, MixedStrategy, TwoPlayerMatrixGame};
use defender_num::Ratio;
use proptest::prelude::*;

fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-6i64..=6, 1i64..=4).prop_map(|(n, d)| Ratio::new(n, d))
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<Ratio>>> {
    proptest::collection::vec(proptest::collection::vec(small_ratio(), cols), rows)
}

fn mixed(over: usize) -> impl Strategy<Value = MixedStrategy<usize>> {
    proptest::collection::vec(1u32..=5, over).prop_map(|weights| {
        let total: i64 = weights.iter().map(|&w| i64::from(w)).sum();
        MixedStrategy::from_entries(
            weights
                .into_iter()
                .enumerate()
                .map(|(i, w)| (i, Ratio::new(i64::from(w), total)))
                .collect(),
        )
        .expect("positive weights normalize")
    })
}

proptest! {
    /// Expected payoff is bilinear: mixing commutes with expectation.
    #[test]
    fn expected_payoff_is_convex_combination(
        m in matrix(3, 3),
        row in mixed(3),
        col in mixed(3),
    ) {
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let by_definition = nash::expected_payoff(&game, 0, &[row.clone(), col.clone()]);
        // Recompute by expanding the row mixture manually.
        let manual: Ratio = row
            .iter()
            .map(|(&i, p)| {
                p * nash::expected_payoff(
                    &game,
                    0,
                    &[MixedStrategy::pure(i), col.clone()],
                )
            })
            .sum();
        prop_assert_eq!(by_definition, manual);
    }

    /// In zero-sum games the two expected payoffs negate each other.
    #[test]
    fn zero_sum_payoffs_negate(m in matrix(3, 2), row in mixed(3), col in mixed(2)) {
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let profile = [row, col];
        let a = nash::expected_payoff(&game, 0, &profile);
        let b = nash::expected_payoff(&game, 1, &profile);
        prop_assert_eq!(a + b, Ratio::ZERO);
    }

    /// Best response weakly dominates every pure alternative.
    #[test]
    fn best_response_is_optimal(m in matrix(3, 3), row in mixed(3), col in mixed(3)) {
        let game = TwoPlayerMatrixGame::zero_sum(m);
        let profile = [row, col];
        for player in 0..2 {
            let (_, value) = nash::best_response(&game, player, &profile);
            for s in game_strategies(player) {
                let dev = nash::deviation_payoff(&game, player, &profile, &s);
                prop_assert!(dev <= value);
            }
            // And the profile itself never beats its best response.
            prop_assert!(nash::expected_payoff(&game, player, &profile) <= value);
        }
    }

    /// Every pure equilibrium found by enumeration passes `verify` as a
    /// degenerate mixed profile, and a profile passing verify has no
    /// profitable pure deviation by definition.
    #[test]
    fn pure_equilibria_verify(m in matrix(3, 3)) {
        let game = TwoPlayerMatrixGame::zero_sum(m);
        for profile in nash::pure_equilibria(&game) {
            let mixed: Vec<MixedStrategy<usize>> =
                profile.iter().map(|&s| MixedStrategy::pure(s)).collect();
            let report = nash::verify(&game, &mixed);
            prop_assert!(report.is_equilibrium(), "deviations: {:?}", report.deviations);
        }
    }

    /// Support invariants of mixed strategies.
    #[test]
    fn mixed_strategy_invariants(s in mixed(4)) {
        let total: Ratio = s.iter().map(|(_, p)| p).sum();
        prop_assert_eq!(total, Ratio::ONE);
        prop_assert!(s.iter().all(|(_, p)| p > Ratio::ZERO));
        let support = s.support();
        prop_assert!(support.windows(2).all(|w| w[0] < w[1]), "sorted support");
    }
}

fn game_strategies(player: usize) -> Vec<usize> {
    match player {
        0 | 1 => (0..3).collect(),
        _ => unreachable!(),
    }
}
