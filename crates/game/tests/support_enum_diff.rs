//! Differential check of the pruned support enumeration: on seeded random
//! bimatrix games the pruned sweep must return the *identical* equilibrium
//! list (same order, same exact rationals) as the unpruned oracle, while
//! the `se.*` counters prove a real cut.

use defender_game::support_enumeration::{
    enumerate_equilibria, enumerate_equilibria_unpruned, BimatrixEquilibrium,
};
use defender_game::TwoPlayerMatrixGame;
use defender_num::rng::{Rng, StdRng};
use defender_num::Ratio;

fn assert_same_equilibria(pruned: &[BimatrixEquilibrium], oracle: &[BimatrixEquilibrium]) {
    assert_eq!(pruned.len(), oracle.len(), "equilibrium count differs");
    for (p, o) in pruned.iter().zip(oracle) {
        assert_eq!(p.row, o.row);
        assert_eq!(p.col, o.col);
        assert_eq!(p.row_payoff, o.row_payoff);
        assert_eq!(p.col_payoff, o.col_payoff);
    }
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, lo: i64, hi: i64) -> Vec<Vec<Ratio>> {
    (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| Ratio::from(rng.gen_range(0..(hi - lo + 1) as usize) as i64 + lo))
                .collect()
        })
        .collect()
}

#[test]
fn pruned_matches_unpruned_on_random_bimatrix_games() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..60 {
        let rows = rng.gen_range(1..5);
        let cols = rng.gen_range(1..5);
        // A narrow payoff range produces plenty of duplicate rows/columns
        // and dominance, exercising all four pruning rules.
        let a = random_matrix(&mut rng, rows, cols, -2, 2);
        let b = random_matrix(&mut rng, rows, cols, -2, 2);
        let game = TwoPlayerMatrixGame::new(a, b);
        assert_same_equilibria(
            &enumerate_equilibria(&game),
            &enumerate_equilibria_unpruned(&game),
        );
        let _ = round;
    }
}

#[test]
fn pruned_matches_unpruned_on_zero_sum_games() {
    let mut rng = StdRng::seed_from_u64(0x5EEE);
    for _ in 0..40 {
        let n = rng.gen_range(2..5);
        let m = rng.gen_range(2..5);
        // 0/1 matrices mimic the incidence games of the atlas experiments:
        // heavy duplication, many dominated strategies.
        let a: Vec<Vec<Ratio>> = (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| Ratio::from(rng.gen_range(0..2) as i64))
                    .collect()
            })
            .collect();
        let game = TwoPlayerMatrixGame::zero_sum(a);
        assert_same_equilibria(
            &enumerate_equilibria(&game),
            &enumerate_equilibria_unpruned(&game),
        );
    }
}

fn counter_value(name: &str) -> u64 {
    defender_obs::snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn pruning_counters_prove_a_cut_on_duplicate_heavy_games() {
    // Counter totals are process-global and tests run concurrently, so
    // only monotone assertions are safe here: run a game guaranteed to
    // prune (duplicate rows and columns everywhere) and check the skip
    // counter moved.
    defender_obs::enable();
    let skipped_before = counter_value("se.pairs_skipped");
    let ones = vec![vec![Ratio::ONE; 4]; 4];
    let game = TwoPlayerMatrixGame::zero_sum(ones);
    let eqs = enumerate_equilibria(&game);
    assert_same_equilibria(&eqs, &enumerate_equilibria_unpruned(&game));
    let skipped_after = counter_value("se.pairs_skipped");
    assert!(
        skipped_after > skipped_before,
        "all-ones 4x4 game must prune duplicate supports ({skipped_before} -> {skipped_after})"
    );
}
