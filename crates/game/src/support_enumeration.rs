//! Support enumeration: *all* equilibria of small bimatrix games.
//!
//! For a candidate pair of equal-size supports, the opponent's mixture
//! must make every supported pure strategy exactly indifferent — a square
//! rational linear system ([`defender_lp::solve_linear`]). Solving it,
//! checking non-negativity and the outside-support deviation conditions
//! yields every equilibrium with those supports; sweeping all pairs finds
//! every equilibrium of a *nondegenerate* game (degenerate games may
//! additionally carry continua of equilibria, of which this reports the
//! equal-support extreme points).
//!
//! Exponential in the strategy counts — this is a cross-validation tool
//! for tiny games (the exact constructions of `defender-core` are checked
//! against it), not a production solver.

use defender_lp::solve_linear;
use defender_num::Ratio;

use crate::{nash, MixedStrategy, StrategicGame, TwoPlayerMatrixGame};

/// One equilibrium of a bimatrix game.
#[derive(Clone, Debug)]
pub struct BimatrixEquilibrium {
    /// The row player's mixed strategy.
    pub row: MixedStrategy<usize>,
    /// The column player's mixed strategy.
    pub col: MixedStrategy<usize>,
    /// The row player's expected payoff.
    pub row_payoff: Ratio,
    /// The column player's expected payoff.
    pub col_payoff: Ratio,
}

const MAX_STRATEGIES: usize = 12;

/// Precomputed dominance/duplication structure of a bimatrix game, used to
/// discard candidate support pairs that provably carry no equilibrium
/// *before* their indifference systems are built and solved.
///
/// Every pruning rule is output-preserving: each one certifies that
/// [`try_supports`] would have returned `None` for the pair, either because
/// the pair's linear system is singular (duplicate rows/columns restricted
/// to the supports) or because dominance — weak on the support with at
/// least one strict coordinate inside it — contradicts the best-response
/// conditions that the positivity/deviation checks enforce.
/// The enumeration therefore returns the exact same equilibrium list, in
/// the same order, as the unpruned sweep.
struct PruneTables {
    /// Entry `cm`: bitmask of rows `i` dominated on the column set `cm` —
    /// some `i' ≠ i` has `A[i'][j] ≥ A[i][j]` for all `j ∈ cm` with at
    /// least one strict. Any equilibrium mixture `y` with support `cm` is
    /// strictly positive there, so `i'` pays strictly more than `i`
    /// against it; `i` supported then contradicts either row indifference
    /// (`i'` supported too) or the deviation bound (`i'` outside), and the
    /// pair dies in the positivity or deviation checks.
    dom_rows_by_colmask: Vec<u32>,
    /// `[j][j']`: bitmask of rows `i` with `B[i][j] < B[i][j']`. Column
    /// `j` is dominated on a row support `R` if some `j'` is nowhere
    /// worse on `R` and strictly better somewhere on `R` — the same
    /// weak-dominance-with-a-strict-coordinate rule, transposed.
    col_lt_rows: Vec<Vec<u32>>,
    /// Row pairs `(i, i', eq)` with `eq` the columns where the two A-rows
    /// agree. If both rows are supported and the column support lies
    /// inside `eq`, the y-system has two identical equations — singular,
    /// so `solve_linear` would return `None`.
    row_eq_cols: Vec<(usize, usize, u32)>,
    /// Column pairs `(j, j', eq)` with `eq` the rows where the two
    /// B-columns agree; singular x-system when the row support fits.
    col_eq_rows: Vec<(usize, usize, u32)>,
    /// Rows strictly dominated on the *full* column set: every equal-size
    /// pair of any row support containing one is skipped wholesale.
    globally_dominated_rows: u32,
}

impl PruneTables {
    fn build(game: &TwoPlayerMatrixGame) -> PruneTables {
        let rows = game.rows();
        let cols = game.cols();
        let a: Vec<Vec<Ratio>> = (0..rows)
            .map(|i| (0..cols).map(|j| game.payoff(0, &[i, j])).collect())
            .collect();
        let b: Vec<Vec<Ratio>> = (0..rows)
            .map(|i| (0..cols).map(|j| game.payoff(1, &[i, j])).collect())
            .collect();

        // lt_a[i][i']: columns where row i pays strictly less than row i'.
        let lt_a: Vec<Vec<u32>> = (0..rows)
            .map(|i| {
                (0..rows)
                    .map(|i2| {
                        (0..cols)
                            // lint: allow(index) i, i2 < rows and j < cols loop bounds
                            .filter(|&j| a[i][j] < a[i2][j])
                            .fold(0u32, |m, j| m | (1 << j))
                    })
                    .collect()
            })
            .collect();
        // Row `i` is dominated on `cm` by `i'` when `i'` is nowhere worse
        // (`lt_a[i'][i]` misses `cm`) and strictly better somewhere in it.
        let dom_rows_by_colmask: Vec<u32> = (0..(1usize << cols))
            .map(|cm| {
                let cm = cm as u32; // lint: allow(cast) cols <= MAX_STRATEGIES = 12; masks fit u32
                (0..rows)
                    .filter(|&i| {
                        (0..rows)
                            // lint: allow(index) lt_a is rows x rows; loop bounds
                            .any(|i2| i2 != i && lt_a[i2][i] & cm == 0 && lt_a[i][i2] & cm != 0)
                    })
                    .fold(0u32, |m, i| m | (1 << i))
            })
            .collect();

        let col_lt_rows: Vec<Vec<u32>> = (0..cols)
            .map(|j| {
                (0..cols)
                    .map(|j2| {
                        (0..rows)
                            // lint: allow(index) i < rows and j, j2 < cols loop bounds
                            .filter(|&i| b[i][j] < b[i][j2])
                            .fold(0u32, |m, i| m | (1 << i))
                    })
                    .collect()
            })
            .collect();

        let mut row_eq_cols = Vec::new();
        for i in 0..rows {
            for i2 in i + 1..rows {
                let eq = (0..cols)
                    // lint: allow(index) a is rows x cols; loop bounds
                    .filter(|&j| a[i][j] == a[i2][j])
                    .fold(0u32, |m, j| m | (1 << j));
                if eq != 0 {
                    row_eq_cols.push((i, i2, eq));
                }
            }
        }
        let mut col_eq_rows = Vec::new();
        for j in 0..cols {
            for j2 in j + 1..cols {
                let eq = (0..rows)
                    // lint: allow(index) b is rows x cols; loop bounds
                    .filter(|&i| b[i][j] == b[i][j2])
                    .fold(0u32, |m, i| m | (1 << i));
                if eq != 0 {
                    col_eq_rows.push((j, j2, eq));
                }
            }
        }

        // The wholesale row-support skip needs dominance that survives
        // restriction to *every* column subset, i.e. strict on every
        // single column — weak-with-one-strict does not restrict.
        // lint: allow(cast) cols <= MAX_STRATEGIES = 12; the mask fits u32
        let all_cols = ((1u64 << cols) - 1) as u32;
        let globally_dominated_rows = (0..rows)
            // lint: allow(index) lt_a is rows x rows; loop bounds
            .filter(|&i| (0..rows).any(|i2| i2 != i && lt_a[i][i2] == all_cols))
            .fold(0u32, |m, i| m | (1 << i));
        PruneTables {
            dom_rows_by_colmask,
            col_lt_rows,
            row_eq_cols,
            col_eq_rows,
            globally_dominated_rows,
        }
    }
}

/// Per-row-support prune state derived from [`PruneTables`]: everything
/// rule evaluation needs once the row support is fixed, so the inner
/// column loop is a handful of mask operations per pair.
struct RowMaskFilters {
    /// Columns dominated on this row support (rule 1).
    dominated_cols: u32,
    /// Column-agreement masks of supported duplicate A-row pairs (rule 3).
    dup_row_eqs: Vec<u32>,
    /// Supported-pair masks of duplicate B-columns on this support (rule 4).
    dup_col_pairs: Vec<u32>,
}

impl RowMaskFilters {
    fn build(tables: &PruneTables, cols: usize, row_mask: u32) -> RowMaskFilters {
        // Columns dominated on this row support (rule 1): some `j'` is
        // nowhere worse on the support and strictly better on at least
        // one supported row.
        let dominated_cols = (0..cols)
            .filter(|&j| {
                (0..cols).any(|j2| {
                    j2 != j
                        // lint: allow(index) col_lt_rows is cols x cols; loop bounds
                        && tables.col_lt_rows[j2][j] & row_mask == 0
                        // lint: allow(index) col_lt_rows is cols x cols; loop bounds
                        && tables.col_lt_rows[j][j2] & row_mask != 0
                })
            })
            .fold(0u32, |m, j| m | (1 << j));
        // Supported row pairs with duplicate A-rows (rule 3): any column
        // support inside `eq` makes the y-system singular.
        let dup_row_eqs: Vec<u32> = tables
            .row_eq_cols
            .iter()
            .filter(|&&(i, i2, _)| row_mask & (1 << i) != 0 && row_mask & (1 << i2) != 0)
            .map(|&(_, _, eq)| eq)
            .collect();
        // Column pairs with duplicate B-columns on this row support
        // (rule 4): both columns supported makes the x-system singular.
        let dup_col_pairs: Vec<u32> = tables
            .col_eq_rows
            .iter()
            .filter(|&&(_, _, eq)| row_mask & !eq == 0)
            .map(|&(j, j2, _)| (1 << j) | (1 << j2))
            .collect();
        RowMaskFilters {
            dominated_cols,
            dup_row_eqs,
            dup_col_pairs,
        }
    }

    /// Whether the pair `(row support, col_mask)` provably carries no
    /// equilibrium (rules 1–4; rule 2 is the table lookup).
    fn prunes(&self, tables: &PruneTables, row_mask: u32, col_mask: u32) -> bool {
        col_mask & self.dominated_cols != 0
            || tables.dom_rows_by_colmask[col_mask as usize] & row_mask != 0
            || self.dup_row_eqs.iter().any(|&eq| col_mask & !eq == 0)
            || self.dup_col_pairs.iter().any(|&pm| pm & !col_mask == 0)
    }
}

/// `C(n, k)` for the tiny ranges of the enumeration (`n ≤ 12`).
fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut out = 1u64;
    for i in 0..k.min(n - k) {
        out = out * (n - i) as u64 / (i + 1) as u64;
    }
    out
}

/// Enumerates the equilibria of `game` with equal-size supports.
///
/// For nondegenerate games this is the complete equilibrium set.
///
/// Candidate support pairs are filtered through [`PruneTables`] before
/// their indifference systems are solved; the skipped pairs are exactly
/// pairs that cannot carry an equilibrium, so the returned list — and the
/// legacy `game.support_enum.*` counters — are identical to the unpruned
/// sweep ([`enumerate_equilibria_unpruned`] checks this differentially).
/// The new `se.pairs_tested` / `se.pairs_skipped` counters quantify the
/// cut.
///
/// # Panics
///
/// Panics if either player has more than 12 strategies (2^12 subsets per
/// side).
#[must_use]
pub fn enumerate_equilibria(game: &TwoPlayerMatrixGame) -> Vec<BimatrixEquilibrium> {
    let rows = game.rows();
    let cols = game.cols();
    assert!(
        rows <= MAX_STRATEGIES && cols <= MAX_STRATEGIES,
        "support enumeration limited to {MAX_STRATEGIES} strategies per player"
    );
    let _span = defender_obs::span!("enumerate_equilibria");
    let tables = PruneTables::build(game);
    let all_col_masks = (1u64 << cols) - 1;
    // Fan the outer row-support loop over the worker pool: each candidate
    // row support scans every column support independently, and the
    // per-mask result blocks are merged in mask order, so the returned
    // list is identical for every pool width. The `game.support_enum.*`
    // counters are atomic sums over all cells and therefore equally
    // order-insensitive; each worker batches its tallies locally and
    // flushes once per row mask to keep atomics off the hot path.
    let blocks: Vec<Vec<BimatrixEquilibrium>> =
        defender_par::par_for_indexed((1usize << rows) - 1, |idx| {
            let row_mask = idx as u32 + 1; // lint: allow(cast) idx < 2^rows <= 2^12; fits u32
            let support_size = row_mask.count_ones() as usize;
            let mut size_mismatch = 0u64;
            let mut tested_legacy = 0u64;
            let mut pairs_tested = 0u64;
            let mut pairs_skipped = 0u64;
            let mut found = 0u64;
            let mut block = Vec::new();

            if row_mask & tables.globally_dominated_rows != 0 {
                // Every equal-size pair for this row support is dead; the
                // legacy counters advance by the pair counts they would
                // have seen.
                let equal_size = binomial(cols, support_size);
                tested_legacy = equal_size;
                size_mismatch = all_col_masks - equal_size;
                pairs_skipped = equal_size;
            } else {
                let support_r: Vec<usize> =
                    (0..rows).filter(|&i| row_mask & (1 << i) != 0).collect();
                let filters = RowMaskFilters::build(&tables, cols, row_mask);

                for col_mask in 1u32..(1 << cols) {
                    if col_mask.count_ones() as usize != support_size {
                        size_mismatch += 1;
                        continue;
                    }
                    tested_legacy += 1;
                    if filters.prunes(&tables, row_mask, col_mask) {
                        pairs_skipped += 1;
                        continue;
                    }
                    pairs_tested += 1;
                    let support_c: Vec<usize> =
                        (0..cols).filter(|&j| col_mask & (1 << j) != 0).collect();
                    if let Some(eq) = try_supports(game, &support_r, &support_c) {
                        found += 1;
                        block.push(eq);
                    }
                }
            }

            defender_obs::counter!("game.support_enum.pruned_size_mismatch").add(size_mismatch);
            defender_obs::counter!("game.support_enum.supports_tested").add(tested_legacy);
            defender_obs::counter!("game.support_enum.equilibria_found").add(found);
            defender_obs::counter!("se.pairs_tested").add(pairs_tested);
            defender_obs::counter!("se.pairs_skipped").add(pairs_skipped);
            block
        });
    blocks.into_iter().flatten().collect()
}

/// The pre-pruning sweep: every equal-size support pair goes straight to
/// [`try_supports`]. Emits no counters. Kept as the differential oracle
/// for the pruned enumeration; not part of the public API surface.
#[doc(hidden)]
#[must_use]
pub fn enumerate_equilibria_unpruned(game: &TwoPlayerMatrixGame) -> Vec<BimatrixEquilibrium> {
    let rows = game.rows();
    let cols = game.cols();
    assert!(
        rows <= MAX_STRATEGIES && cols <= MAX_STRATEGIES,
        "support enumeration limited to {MAX_STRATEGIES} strategies per player"
    );
    let mut out = Vec::new();
    for row_mask in 1u32..(1 << rows) {
        let support_r: Vec<usize> = (0..rows).filter(|&i| row_mask & (1 << i) != 0).collect();
        for col_mask in 1u32..(1 << cols) {
            let support_c: Vec<usize> = (0..cols).filter(|&j| col_mask & (1 << j) != 0).collect();
            if support_r.len() != support_c.len() {
                continue;
            }
            if let Some(eq) = try_supports(game, &support_r, &support_c) {
                out.push(eq);
            }
        }
    }
    out
}

/// Finds the supports of *one* equilibrium — the smallest-support,
/// smallest-mask equilibrium the equal-size sweep reaches first — and
/// stops there. Sequential and deterministic: no pool fan-out, supports
/// scanned by size and then by mask order, so the answer is a pure
/// function of the matrix.
///
/// The customer is LP warm-starting (`solve_zero_sum_hinted`): for a
/// zero-sum game any equilibrium's supports pin an optimal basis via
/// complementary slackness, so the cheapest one to find is as good as
/// any. Candidate pairs run through the same [`PruneTables`] pre-filter
/// as the full enumeration (pruned pairs provably carry no equilibrium,
/// so the first survivor to verify is still the overall first) —
/// without it the scan would solve more linear systems than the warm
/// start saves in pivots. Pairs whose indifference systems were
/// actually solved are counted under `se.hint.pairs_tested`, successes
/// under `se.hint.found`. Returns `None` when the game is too large
/// ([`MAX_STRATEGIES`] per side) or only unequal-support (degenerate)
/// equilibria exist — callers fall back to a cold solve.
#[must_use]
pub fn first_equilibrium_supports(game: &TwoPlayerMatrixGame) -> Option<(Vec<usize>, Vec<usize>)> {
    let rows = game.rows();
    let cols = game.cols();
    if rows > MAX_STRATEGIES || cols > MAX_STRATEGIES {
        return None;
    }
    let _span = defender_obs::span!("first_equilibrium_supports");
    let tables = PruneTables::build(game);
    let mut pairs_tested = 0u64;
    for size in 1..=rows.min(cols) {
        for row_mask in 1u32..(1 << rows) {
            if row_mask.count_ones() as usize != size
                || row_mask & tables.globally_dominated_rows != 0
            {
                continue;
            }
            let support_r: Vec<usize> = (0..rows).filter(|&i| row_mask & (1 << i) != 0).collect();
            let filters = RowMaskFilters::build(&tables, cols, row_mask);
            for col_mask in 1u32..(1 << cols) {
                if col_mask.count_ones() as usize != size
                    || filters.prunes(&tables, row_mask, col_mask)
                {
                    continue;
                }
                let support_c: Vec<usize> =
                    (0..cols).filter(|&j| col_mask & (1 << j) != 0).collect();
                pairs_tested += 1;
                if try_supports(game, &support_r, &support_c).is_some() {
                    defender_obs::counter!("se.hint.pairs_tested").add(pairs_tested);
                    defender_obs::counter!("se.hint.found").incr();
                    return Some((support_r, support_c));
                }
            }
        }
    }
    defender_obs::counter!("se.hint.pairs_tested").add(pairs_tested);
    None
}

/// Attempts to place an equilibrium exactly on `(support_r, support_c)`.
fn try_supports(
    game: &TwoPlayerMatrixGame,
    support_r: &[usize],
    support_c: &[usize],
) -> Option<BimatrixEquilibrium> {
    let k = support_r.len();

    // Column mixture y and value v: row player indifferent across R.
    //   Σ_c A[i][c]·y_c − v = 0  (i ∈ R),   Σ_c y_c = 1.
    let y_system: Vec<Vec<Ratio>> = support_r
        .iter()
        .map(|&i| {
            let mut row: Vec<Ratio> = support_c.iter().map(|&j| game.payoff(0, &[i, j])).collect();
            row.push(-Ratio::ONE);
            row
        })
        .chain(std::iter::once({
            let mut row = vec![Ratio::ONE; k];
            row.push(Ratio::ZERO);
            row
        }))
        .collect();
    let mut rhs = vec![Ratio::ZERO; k];
    rhs.push(Ratio::ONE);
    let y_solution = solve_linear(&y_system, &rhs)?;
    // lint: allow(index) solve_linear returned k + 1 entries for the k+1 system
    let (y, v) = (&y_solution[..k], y_solution[k]);

    // Row mixture x and value w: column player indifferent across C.
    let x_system: Vec<Vec<Ratio>> = support_c
        .iter()
        .map(|&j| {
            let mut row: Vec<Ratio> = support_r.iter().map(|&i| game.payoff(1, &[i, j])).collect();
            row.push(-Ratio::ONE);
            row
        })
        .chain(std::iter::once({
            let mut row = vec![Ratio::ONE; k];
            row.push(Ratio::ZERO);
            row
        }))
        .collect();
    let mut rhs = vec![Ratio::ZERO; k];
    rhs.push(Ratio::ONE);
    let x_solution = solve_linear(&x_system, &rhs)?;
    // lint: allow(index) solve_linear returned k + 1 entries for the k+1 system
    let (x, w) = (&x_solution[..k], x_solution[k]);

    // Supports must be played with strictly positive probability (smaller
    // supports are visited by their own iteration).
    if y.iter().any(|&p| p <= Ratio::ZERO) || x.iter().any(|&p| p <= Ratio::ZERO) {
        return None;
    }

    // No profitable deviation outside the supports. The deferred-reduction
    // dot kernel reduces once per deviation row instead of once per term.
    for i in 0..game.rows() {
        if support_r.contains(&i) {
            continue;
        }
        let payoff = Ratio::dot_iter(
            support_c
                .iter()
                .zip(y)
                .map(|(&j, &p)| (game.payoff(0, &[i, j]), p)),
        );
        if payoff > v {
            return None;
        }
    }
    for j in 0..game.cols() {
        if support_c.contains(&j) {
            continue;
        }
        let payoff = Ratio::dot_iter(
            support_r
                .iter()
                .zip(x)
                .map(|(&i, &p)| (game.payoff(1, &[i, j]), p)),
        );
        if payoff > w {
            return None;
        }
    }

    let row = MixedStrategy::from_entries(support_r.iter().zip(x).map(|(&i, &p)| (i, p)).collect())
        // lint: allow(panic) linsolve returned a verified positive distribution
        .expect("positive probabilities summing to one");
    let col = MixedStrategy::from_entries(support_c.iter().zip(y).map(|(&j, &p)| (j, p)).collect())
        // lint: allow(panic) linsolve returned a verified positive distribution
        .expect("positive probabilities summing to one");
    debug_assert!(nash::verify_two_player(game, &row, &col).is_equilibrium());
    Some(BimatrixEquilibrium {
        row,
        col,
        row_payoff: v,
        col_payoff: w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Ratio {
        Ratio::from(v)
    }

    #[test]
    fn matching_pennies_unique_mixed() {
        let game =
            TwoPlayerMatrixGame::zero_sum(vec![vec![int(1), int(-1)], vec![int(-1), int(1)]]);
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 1);
        let eq = &eqs[0];
        assert_eq!(eq.row_payoff, Ratio::ZERO);
        assert_eq!(eq.row.probability(&0), Ratio::new(1, 2));
        assert_eq!(eq.col.probability(&1), Ratio::new(1, 2));
    }

    #[test]
    fn prisoners_dilemma_unique_pure() {
        let game = TwoPlayerMatrixGame::new(
            vec![vec![int(3), int(0)], vec![int(5), int(1)]],
            vec![vec![int(3), int(5)], vec![int(0), int(1)]],
        );
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 1);
        assert!(eqs[0].row.is_pure() && eqs[0].col.is_pure());
        assert_eq!(eqs[0].row_payoff, int(1));
    }

    #[test]
    fn battle_of_the_sexes_three_equilibria() {
        let game = TwoPlayerMatrixGame::new(
            vec![vec![int(2), int(0)], vec![int(0), int(1)]],
            vec![vec![int(1), int(0)], vec![int(0), int(2)]],
        );
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 3, "two pure + one mixed");
        let mixed = eqs
            .iter()
            .find(|e| !e.row.is_pure())
            .expect("mixed equilibrium");
        assert_eq!(mixed.row.probability(&0), Ratio::new(2, 3));
        assert_eq!(mixed.col.probability(&0), Ratio::new(1, 3));
        assert_eq!(mixed.row_payoff, Ratio::new(2, 3));
    }

    #[test]
    fn every_found_equilibrium_verifies() {
        let game = TwoPlayerMatrixGame::new(
            vec![
                vec![int(4), int(1), int(0)],
                vec![int(2), int(3), int(1)],
                vec![int(0), int(1), int(2)],
            ],
            vec![
                vec![int(1), int(2), int(0)],
                vec![int(0), int(3), int(2)],
                vec![int(3), int(0), int(4)],
            ],
        );
        let eqs = enumerate_equilibria(&game);
        assert!(!eqs.is_empty(), "finite games have equilibria (Nash)");
        for eq in &eqs {
            let report = nash::verify_two_player(&game, &eq.row, &eq.col);
            assert!(report.is_equilibrium(), "{:?}", report.deviations);
            assert_eq!(report.expected_payoffs[0], eq.row_payoff);
            assert_eq!(report.expected_payoffs[1], eq.col_payoff);
        }
    }

    #[test]
    fn zero_sum_equilibria_share_the_value() {
        // Multiple equilibria of a zero-sum game all have the same payoff.
        let game = TwoPlayerMatrixGame::zero_sum(vec![vec![int(1), int(1)], vec![int(1), int(1)]]);
        let eqs = enumerate_equilibria(&game);
        assert!(!eqs.is_empty());
        assert!(eqs.iter().all(|e| e.row_payoff == int(1)));
    }

    #[test]
    fn enumeration_is_identical_for_every_pool_width() {
        let game = TwoPlayerMatrixGame::new(
            vec![
                vec![int(4), int(1), int(0)],
                vec![int(2), int(3), int(1)],
                vec![int(0), int(1), int(2)],
            ],
            vec![
                vec![int(1), int(2), int(0)],
                vec![int(0), int(3), int(2)],
                vec![int(3), int(0), int(4)],
            ],
        );
        defender_par::set_jobs(1);
        let serial = enumerate_equilibria(&game);
        defender_par::set_jobs(4);
        let parallel = enumerate_equilibria(&game);
        defender_par::set_jobs(1);
        assert!(!serial.is_empty());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.row, b.row);
            assert_eq!(a.col, b.col);
            assert_eq!(a.row_payoff, b.row_payoff);
            assert_eq!(a.col_payoff, b.col_payoff);
        }
    }

    #[test]
    fn first_supports_match_an_enumerated_equilibrium() {
        let game = TwoPlayerMatrixGame::new(
            vec![
                vec![int(4), int(1), int(0)],
                vec![int(2), int(3), int(1)],
                vec![int(0), int(1), int(2)],
            ],
            vec![
                vec![int(1), int(2), int(0)],
                vec![int(0), int(3), int(2)],
                vec![int(3), int(0), int(4)],
            ],
        );
        let (support_r, support_c) =
            first_equilibrium_supports(&game).expect("finite game has an equilibrium");
        let eqs = enumerate_equilibria(&game);
        assert!(
            eqs.iter().any(|e| {
                let mut r: Vec<usize> = e.row.support().into_iter().copied().collect();
                let mut c: Vec<usize> = e.col.support().into_iter().copied().collect();
                r.sort_unstable();
                c.sort_unstable();
                r == support_r && c == support_c
            }),
            "hint {support_r:?}/{support_c:?} must be a real equilibrium's supports"
        );
    }

    #[test]
    fn first_supports_prefer_the_smallest_support() {
        // Prisoner's dilemma: unique pure equilibrium (defect, defect) at
        // supports ({1}, {1}) — found at size 1, masks scanned in order.
        let game = TwoPlayerMatrixGame::new(
            vec![vec![int(3), int(0)], vec![int(5), int(1)]],
            vec![vec![int(3), int(5)], vec![int(0), int(1)]],
        );
        assert_eq!(first_equilibrium_supports(&game), Some((vec![1], vec![1])));
    }

    #[test]
    fn first_supports_none_beyond_the_size_guard() {
        let game = TwoPlayerMatrixGame::zero_sum(vec![vec![Ratio::ZERO; 13]; 13]);
        assert_eq!(first_equilibrium_supports(&game), None);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn size_guard() {
        let game = TwoPlayerMatrixGame::zero_sum(vec![vec![Ratio::ZERO; 13]; 13]);
        let _ = enumerate_equilibria(&game);
    }
}
