//! Support enumeration: *all* equilibria of small bimatrix games.
//!
//! For a candidate pair of equal-size supports, the opponent's mixture
//! must make every supported pure strategy exactly indifferent — a square
//! rational linear system ([`defender_lp::solve_linear`]). Solving it,
//! checking non-negativity and the outside-support deviation conditions
//! yields every equilibrium with those supports; sweeping all pairs finds
//! every equilibrium of a *nondegenerate* game (degenerate games may
//! additionally carry continua of equilibria, of which this reports the
//! equal-support extreme points).
//!
//! Exponential in the strategy counts — this is a cross-validation tool
//! for tiny games (the exact constructions of `defender-core` are checked
//! against it), not a production solver.

use defender_lp::solve_linear;
use defender_num::Ratio;

use crate::{nash, MixedStrategy, StrategicGame, TwoPlayerMatrixGame};

/// One equilibrium of a bimatrix game.
#[derive(Clone, Debug)]
pub struct BimatrixEquilibrium {
    /// The row player's mixed strategy.
    pub row: MixedStrategy<usize>,
    /// The column player's mixed strategy.
    pub col: MixedStrategy<usize>,
    /// The row player's expected payoff.
    pub row_payoff: Ratio,
    /// The column player's expected payoff.
    pub col_payoff: Ratio,
}

const MAX_STRATEGIES: usize = 12;

/// Enumerates the equilibria of `game` with equal-size supports.
///
/// For nondegenerate games this is the complete equilibrium set.
///
/// # Panics
///
/// Panics if either player has more than 12 strategies (2^12 subsets per
/// side).
#[must_use]
pub fn enumerate_equilibria(game: &TwoPlayerMatrixGame) -> Vec<BimatrixEquilibrium> {
    let rows = game.rows();
    let cols = game.cols();
    assert!(
        rows <= MAX_STRATEGIES && cols <= MAX_STRATEGIES,
        "support enumeration limited to {MAX_STRATEGIES} strategies per player"
    );
    let _span = defender_obs::span!("enumerate_equilibria");
    // Fan the outer row-support loop over the worker pool: each candidate
    // row support scans every column support independently, and the
    // per-mask result blocks are merged in mask order, so the returned
    // list is identical for every pool width. The `game.support_enum.*`
    // counters are atomic sums over all cells and therefore equally
    // order-insensitive.
    let blocks: Vec<Vec<BimatrixEquilibrium>> =
        defender_par::par_for_indexed((1usize << rows) - 1, |idx| {
            let row_mask = idx as u32 + 1;
            let support_r: Vec<usize> = (0..rows).filter(|&i| row_mask & (1 << i) != 0).collect();
            let mut block = Vec::new();
            for col_mask in 1u32..(1 << cols) {
                let support_c: Vec<usize> =
                    (0..cols).filter(|&j| col_mask & (1 << j) != 0).collect();
                if support_r.len() != support_c.len() {
                    defender_obs::counter!("game.support_enum.pruned_size_mismatch").incr();
                    continue;
                }
                defender_obs::counter!("game.support_enum.supports_tested").incr();
                if let Some(eq) = try_supports(game, &support_r, &support_c) {
                    defender_obs::counter!("game.support_enum.equilibria_found").incr();
                    block.push(eq);
                }
            }
            block
        });
    blocks.into_iter().flatten().collect()
}

/// Attempts to place an equilibrium exactly on `(support_r, support_c)`.
fn try_supports(
    game: &TwoPlayerMatrixGame,
    support_r: &[usize],
    support_c: &[usize],
) -> Option<BimatrixEquilibrium> {
    let k = support_r.len();

    // Column mixture y and value v: row player indifferent across R.
    //   Σ_c A[i][c]·y_c − v = 0  (i ∈ R),   Σ_c y_c = 1.
    let y_system: Vec<Vec<Ratio>> = support_r
        .iter()
        .map(|&i| {
            let mut row: Vec<Ratio> = support_c.iter().map(|&j| game.payoff(0, &[i, j])).collect();
            row.push(-Ratio::ONE);
            row
        })
        .chain(std::iter::once({
            let mut row = vec![Ratio::ONE; k];
            row.push(Ratio::ZERO);
            row
        }))
        .collect();
    let mut rhs = vec![Ratio::ZERO; k];
    rhs.push(Ratio::ONE);
    let y_solution = solve_linear(&y_system, &rhs)?;
    let (y, v) = (&y_solution[..k], y_solution[k]);

    // Row mixture x and value w: column player indifferent across C.
    let x_system: Vec<Vec<Ratio>> = support_c
        .iter()
        .map(|&j| {
            let mut row: Vec<Ratio> = support_r.iter().map(|&i| game.payoff(1, &[i, j])).collect();
            row.push(-Ratio::ONE);
            row
        })
        .chain(std::iter::once({
            let mut row = vec![Ratio::ONE; k];
            row.push(Ratio::ZERO);
            row
        }))
        .collect();
    let mut rhs = vec![Ratio::ZERO; k];
    rhs.push(Ratio::ONE);
    let x_solution = solve_linear(&x_system, &rhs)?;
    let (x, w) = (&x_solution[..k], x_solution[k]);

    // Supports must be played with strictly positive probability (smaller
    // supports are visited by their own iteration).
    if y.iter().any(|&p| p <= Ratio::ZERO) || x.iter().any(|&p| p <= Ratio::ZERO) {
        return None;
    }

    // No profitable deviation outside the supports.
    for i in 0..game.rows() {
        if support_r.contains(&i) {
            continue;
        }
        let payoff: Ratio = support_c
            .iter()
            .zip(y)
            .map(|(&j, &p)| game.payoff(0, &[i, j]) * p)
            .sum();
        if payoff > v {
            return None;
        }
    }
    for j in 0..game.cols() {
        if support_c.contains(&j) {
            continue;
        }
        let payoff: Ratio = support_r
            .iter()
            .zip(x)
            .map(|(&i, &p)| game.payoff(1, &[i, j]) * p)
            .sum();
        if payoff > w {
            return None;
        }
    }

    let row = MixedStrategy::from_entries(support_r.iter().zip(x).map(|(&i, &p)| (i, p)).collect())
        .expect("positive probabilities summing to one");
    let col = MixedStrategy::from_entries(support_c.iter().zip(y).map(|(&j, &p)| (j, p)).collect())
        .expect("positive probabilities summing to one");
    debug_assert!(nash::verify_two_player(game, &row, &col).is_equilibrium());
    Some(BimatrixEquilibrium {
        row,
        col,
        row_payoff: v,
        col_payoff: w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Ratio {
        Ratio::from(v)
    }

    #[test]
    fn matching_pennies_unique_mixed() {
        let game =
            TwoPlayerMatrixGame::zero_sum(vec![vec![int(1), int(-1)], vec![int(-1), int(1)]]);
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 1);
        let eq = &eqs[0];
        assert_eq!(eq.row_payoff, Ratio::ZERO);
        assert_eq!(eq.row.probability(&0), Ratio::new(1, 2));
        assert_eq!(eq.col.probability(&1), Ratio::new(1, 2));
    }

    #[test]
    fn prisoners_dilemma_unique_pure() {
        let game = TwoPlayerMatrixGame::new(
            vec![vec![int(3), int(0)], vec![int(5), int(1)]],
            vec![vec![int(3), int(5)], vec![int(0), int(1)]],
        );
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 1);
        assert!(eqs[0].row.is_pure() && eqs[0].col.is_pure());
        assert_eq!(eqs[0].row_payoff, int(1));
    }

    #[test]
    fn battle_of_the_sexes_three_equilibria() {
        let game = TwoPlayerMatrixGame::new(
            vec![vec![int(2), int(0)], vec![int(0), int(1)]],
            vec![vec![int(1), int(0)], vec![int(0), int(2)]],
        );
        let eqs = enumerate_equilibria(&game);
        assert_eq!(eqs.len(), 3, "two pure + one mixed");
        let mixed = eqs
            .iter()
            .find(|e| !e.row.is_pure())
            .expect("mixed equilibrium");
        assert_eq!(mixed.row.probability(&0), Ratio::new(2, 3));
        assert_eq!(mixed.col.probability(&0), Ratio::new(1, 3));
        assert_eq!(mixed.row_payoff, Ratio::new(2, 3));
    }

    #[test]
    fn every_found_equilibrium_verifies() {
        let game = TwoPlayerMatrixGame::new(
            vec![
                vec![int(4), int(1), int(0)],
                vec![int(2), int(3), int(1)],
                vec![int(0), int(1), int(2)],
            ],
            vec![
                vec![int(1), int(2), int(0)],
                vec![int(0), int(3), int(2)],
                vec![int(3), int(0), int(4)],
            ],
        );
        let eqs = enumerate_equilibria(&game);
        assert!(!eqs.is_empty(), "finite games have equilibria (Nash)");
        for eq in &eqs {
            let report = nash::verify_two_player(&game, &eq.row, &eq.col);
            assert!(report.is_equilibrium(), "{:?}", report.deviations);
            assert_eq!(report.expected_payoffs[0], eq.row_payoff);
            assert_eq!(report.expected_payoffs[1], eq.col_payoff);
        }
    }

    #[test]
    fn zero_sum_equilibria_share_the_value() {
        // Multiple equilibria of a zero-sum game all have the same payoff.
        let game = TwoPlayerMatrixGame::zero_sum(vec![vec![int(1), int(1)], vec![int(1), int(1)]]);
        let eqs = enumerate_equilibria(&game);
        assert!(!eqs.is_empty());
        assert!(eqs.iter().all(|e| e.row_payoff == int(1)));
    }

    #[test]
    fn enumeration_is_identical_for_every_pool_width() {
        let game = TwoPlayerMatrixGame::new(
            vec![
                vec![int(4), int(1), int(0)],
                vec![int(2), int(3), int(1)],
                vec![int(0), int(1), int(2)],
            ],
            vec![
                vec![int(1), int(2), int(0)],
                vec![int(0), int(3), int(2)],
                vec![int(3), int(0), int(4)],
            ],
        );
        defender_par::set_jobs(1);
        let serial = enumerate_equilibria(&game);
        defender_par::set_jobs(4);
        let parallel = enumerate_equilibria(&game);
        defender_par::set_jobs(1);
        assert!(!serial.is_empty());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.row, b.row);
            assert_eq!(a.col, b.col);
            assert_eq!(a.row_payoff, b.row_payoff);
            assert_eq!(a.col_payoff, b.col_payoff);
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn size_guard() {
        let game = TwoPlayerMatrixGame::zero_sum(vec![vec![Ratio::ZERO; 13]; 13]);
        let _ = enumerate_equilibria(&game);
    }
}
