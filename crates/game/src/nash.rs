//! Expected payoffs, best responses and exact Nash verification.
//!
//! These routines enumerate the cartesian product of supports, so they are
//! exponential in the player count — by design: they exist to
//! *cross-validate* the polynomial-time structural verifiers of
//! `defender-core` on tiny instances, with exact rational arithmetic and no
//! tolerance parameters.

use defender_num::{Ratio, RatioAccum};

use crate::{MixedStrategy, StrategicGame};

/// A profitable unilateral deviation found by [`verify`].
#[derive(Clone, Debug)]
pub struct Deviation<S> {
    /// The deviating player.
    pub player: usize,
    /// The pure strategy improving that player's expected payoff.
    pub strategy: S,
    /// Strictly positive improvement over the profile's expected payoff.
    pub gain: Ratio,
}

/// The outcome of Nash verification: per-player expected payoffs plus every
/// profitable pure deviation (empty iff the profile is an equilibrium).
#[derive(Clone, Debug)]
pub struct NashReport<S> {
    /// Expected payoff of each player under the verified profile.
    pub expected_payoffs: Vec<Ratio>,
    /// All profitable unilateral pure deviations.
    pub deviations: Vec<Deviation<S>>,
}

impl<S> NashReport<S> {
    /// Whether no player can gain by deviating (mixed Nash equilibrium).
    #[must_use]
    pub fn is_equilibrium(&self) -> bool {
        self.deviations.is_empty()
    }

    /// The largest single-player gain available (zero at equilibrium).
    #[must_use]
    pub fn max_regret(&self) -> Ratio {
        self.deviations
            .iter()
            .map(|d| d.gain)
            .max()
            .unwrap_or(Ratio::ZERO)
    }
}

/// Expected payoff of `player` when everyone mixes independently per
/// `profile`.
///
/// Runs over the cartesian product of supports — exponential in player
/// count, exact in arithmetic.
///
/// # Panics
///
/// Panics if `profile.len() != game.player_count()`.
#[must_use]
pub fn expected_payoff<G: StrategicGame>(
    game: &G,
    player: usize,
    profile: &[MixedStrategy<G::Strategy>],
) -> Ratio {
    assert_eq!(profile.len(), game.player_count(), "profile size mismatch");
    // Accumulate the product-distribution expectation without reducing per
    // term; one gcd at the end produces the identical canonical Ratio.
    let mut total = RatioAccum::new();
    let mut pure: Vec<G::Strategy> = Vec::with_capacity(profile.len());
    product_walk(game, player, profile, 0, Ratio::ONE, &mut pure, &mut total);
    total.finish()
}

fn product_walk<G: StrategicGame>(
    game: &G,
    player: usize,
    profile: &[MixedStrategy<G::Strategy>],
    depth: usize,
    weight: Ratio,
    pure: &mut Vec<G::Strategy>,
    total: &mut RatioAccum,
) {
    if depth == profile.len() {
        total.add_mul(weight, game.payoff(player, pure));
        return;
    }
    // lint: allow(index) depth < profile.len(): recursion base checked above
    for (s, p) in profile[depth].iter() {
        pure.push(s.clone());
        product_walk(game, player, profile, depth + 1, weight * p, pure, total);
        pure.pop();
    }
}

/// Expected payoff of `player` when it deviates to the pure strategy
/// `deviation` and everyone else keeps mixing per `profile`.
#[must_use]
pub fn deviation_payoff<G: StrategicGame>(
    game: &G,
    player: usize,
    profile: &[MixedStrategy<G::Strategy>],
    deviation: &G::Strategy,
) -> Ratio {
    let mut patched = profile.to_vec();
    // lint: allow(index) player < profile.len() by the Game contract
    patched[player] = MixedStrategy::pure(deviation.clone());
    expected_payoff(game, player, &patched)
}

/// The best pure response of `player` against the others' mixing:
/// `(strategy, expected payoff)`.
///
/// # Panics
///
/// Panics if the player has no strategies.
#[must_use]
pub fn best_response<G: StrategicGame>(
    game: &G,
    player: usize,
    profile: &[MixedStrategy<G::Strategy>],
) -> (G::Strategy, Ratio) {
    game.strategies(player)
        .into_iter()
        .map(|s| {
            let value = deviation_payoff(game, player, profile, &s);
            (s, value)
        })
        .max_by(|a, b| a.1.cmp(&b.1))
        // lint: allow(panic) strategy sets are non-empty by Game construction
        .expect("players have non-empty strategy sets")
}

/// Verifies whether `profile` is a mixed Nash equilibrium by checking every
/// pure deviation of every player (sufficient by linearity of expectation).
#[must_use]
pub fn verify<G: StrategicGame>(
    game: &G,
    profile: &[MixedStrategy<G::Strategy>],
) -> NashReport<G::Strategy> {
    let expected_payoffs: Vec<Ratio> = (0..game.player_count())
        .map(|p| expected_payoff(game, p, profile))
        .collect();
    let mut deviations = Vec::new();
    for (player, &expected) in expected_payoffs.iter().enumerate() {
        for s in game.strategies(player) {
            let value = deviation_payoff(game, player, profile, &s);
            if value > expected {
                deviations.push(Deviation {
                    player,
                    strategy: s,
                    gain: value - expected,
                });
            }
        }
    }
    NashReport {
        expected_payoffs,
        deviations,
    }
}

/// Two-player convenience wrapper around [`verify`].
#[must_use]
pub fn verify_two_player<G: StrategicGame>(
    game: &G,
    row: &MixedStrategy<G::Strategy>,
    col: &MixedStrategy<G::Strategy>,
) -> NashReport<G::Strategy> {
    verify(game, &[row.clone(), col.clone()])
}

/// Enumerates all *pure* Nash equilibria by exhaustive search over pure
/// profiles. Exponential; for tiny cross-validation games only.
#[must_use]
pub fn pure_equilibria<G: StrategicGame>(game: &G) -> Vec<Vec<G::Strategy>> {
    let universes: Vec<Vec<G::Strategy>> = (0..game.player_count())
        .map(|p| game.strategies(p))
        .collect();
    let mut out = Vec::new();
    let mut profile: Vec<G::Strategy> = Vec::with_capacity(universes.len());
    enumerate_profiles(game, &universes, 0, &mut profile, &mut out);
    out
}

fn enumerate_profiles<G: StrategicGame>(
    game: &G,
    universes: &[Vec<G::Strategy>],
    depth: usize,
    profile: &mut Vec<G::Strategy>,
    out: &mut Vec<Vec<G::Strategy>>,
) {
    if depth == universes.len() {
        let stable = (0..game.player_count()).all(|player| {
            let current = game.payoff(player, profile);
            universes[player].iter().all(|s| {
                let mut patched = profile.clone();
                patched[player] = s.clone();
                game.payoff(player, &patched) <= current
            })
        });
        if stable {
            out.push(profile.clone());
        }
        return;
    }
    for s in &universes[depth] {
        profile.push(s.clone());
        enumerate_profiles(game, universes, depth + 1, profile, out);
        profile.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoPlayerMatrixGame;

    fn r(v: i64) -> Ratio {
        Ratio::from(v)
    }

    fn matching_pennies() -> TwoPlayerMatrixGame {
        TwoPlayerMatrixGame::zero_sum(vec![vec![r(1), r(-1)], vec![r(-1), r(1)]])
    }

    fn prisoners_dilemma() -> TwoPlayerMatrixGame {
        // Strategies: 0 = cooperate, 1 = defect.
        TwoPlayerMatrixGame::new(
            vec![vec![r(3), r(0)], vec![r(5), r(1)]],
            vec![vec![r(3), r(5)], vec![r(0), r(1)]],
        )
    }

    #[test]
    fn matching_pennies_uniform_is_ne() {
        let g = matching_pennies();
        let uniform = MixedStrategy::uniform(vec![0usize, 1]);
        let report = verify_two_player(&g, &uniform, &uniform);
        assert!(report.is_equilibrium());
        assert_eq!(report.expected_payoffs, vec![Ratio::ZERO, Ratio::ZERO]);
        assert_eq!(report.max_regret(), Ratio::ZERO);
    }

    #[test]
    fn matching_pennies_pure_is_not_ne() {
        let g = matching_pennies();
        let heads = MixedStrategy::pure(0usize);
        let report = verify_two_player(&g, &heads, &heads);
        assert!(!report.is_equilibrium());
        // The column player wants to switch to tails and gain 2.
        assert!(report
            .deviations
            .iter()
            .any(|d| d.player == 1 && d.strategy == 1 && d.gain == r(2)));
    }

    #[test]
    fn matching_pennies_has_no_pure_ne() {
        assert!(pure_equilibria(&matching_pennies()).is_empty());
    }

    #[test]
    fn prisoners_dilemma_defect_defect() {
        let g = prisoners_dilemma();
        assert_eq!(pure_equilibria(&g), vec![vec![1, 1]]);
        let defect = MixedStrategy::pure(1usize);
        assert!(verify_two_player(&g, &defect, &defect).is_equilibrium());
    }

    #[test]
    fn biased_mixing_detected_as_non_ne() {
        let g = matching_pennies();
        let biased =
            MixedStrategy::from_entries(vec![(0usize, Ratio::new(2, 3)), (1, Ratio::new(1, 3))])
                .unwrap();
        let uniform = MixedStrategy::uniform(vec![0usize, 1]);
        // Row biased, column uniform: row is indifferent, column can exploit.
        let report = verify_two_player(&g, &biased, &uniform);
        assert!(!report.is_equilibrium());
        assert_eq!(report.max_regret(), Ratio::new(1, 3));
    }

    #[test]
    fn best_response_values() {
        let g = prisoners_dilemma();
        let coop = MixedStrategy::pure(0usize);
        let (s, v) = best_response(&g, 0, &[coop.clone(), coop.clone()]);
        assert_eq!((s, v), (1, r(5)));
    }

    #[test]
    fn expected_payoff_mixes_exactly() {
        let g = matching_pennies();
        let p =
            MixedStrategy::from_entries(vec![(0usize, Ratio::new(1, 4)), (1, Ratio::new(3, 4))])
                .unwrap();
        let q = MixedStrategy::uniform(vec![0usize, 1]);
        // Row payoff: sum p_i q_j a_ij = 0 for uniform column.
        assert_eq!(expected_payoff(&g, 0, &[p, q]), Ratio::ZERO);
    }

    #[test]
    fn coordination_game_has_two_pure_ne() {
        let g = TwoPlayerMatrixGame::new(
            vec![vec![r(2), r(0)], vec![r(0), r(1)]],
            vec![vec![r(2), r(0)], vec![r(0), r(1)]],
        );
        let ne = pure_equilibria(&g);
        assert_eq!(ne, vec![vec![0, 0], vec![1, 1]]);
    }
}
