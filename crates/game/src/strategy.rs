//! Sparse mixed strategies with exact rational probabilities.

use core::fmt;

use defender_num::Ratio;

/// Errors from [`MixedStrategy`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategyError {
    /// The probabilities do not sum to one (carries the actual sum).
    BadTotal(Ratio),
    /// A negative probability was supplied.
    NegativeProbability(Ratio),
    /// The same pure strategy appeared twice.
    DuplicateStrategy,
    /// No pure strategies were supplied.
    Empty,
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::BadTotal(total) => {
                write!(f, "probabilities sum to {total}, expected 1")
            }
            StrategyError::NegativeProbability(p) => {
                write!(f, "negative probability {p}")
            }
            StrategyError::DuplicateStrategy => write!(f, "duplicate pure strategy"),
            StrategyError::Empty => write!(f, "a mixed strategy needs at least one pure strategy"),
        }
    }
}

impl std::error::Error for StrategyError {}

/// A probability distribution over a finite set of pure strategies.
///
/// Stored sparsely — only strategies with strictly positive probability
/// (the *support*, `D_s(x)` in the paper's notation) are kept, sorted by
/// strategy for deterministic iteration and `O(log |support|)` lookup.
/// Probabilities are exact rationals summing to exactly one.
///
/// # Examples
///
/// ```
/// use defender_game::MixedStrategy;
/// use defender_num::Ratio;
///
/// let uniform = MixedStrategy::uniform(vec!["a", "b", "c", "a"]); // dedups
/// assert_eq!(uniform.support().len(), 3);
/// assert_eq!(uniform.probability(&"b"), Ratio::new(1, 3));
/// assert_eq!(uniform.probability(&"z"), Ratio::ZERO);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct MixedStrategy<S> {
    entries: Vec<(S, Ratio)>,
}

impl<S: Clone + Ord> MixedStrategy<S> {
    /// The pure strategy `s` played with probability one.
    #[must_use]
    pub fn pure(s: S) -> MixedStrategy<S> {
        MixedStrategy {
            entries: vec![(s, Ratio::ONE)],
        }
    }

    /// The uniform distribution over the given strategies (deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty after deduplication.
    #[must_use]
    pub fn uniform(mut support: Vec<S>) -> MixedStrategy<S> {
        support.sort();
        support.dedup();
        assert!(
            !support.is_empty(),
            "uniform distribution needs a non-empty support"
        );
        let p = Ratio::new(
            1,
            // lint: allow(panic) support sizes are far below i64::MAX
            i64::try_from(support.len()).expect("support fits in i64"),
        );
        MixedStrategy {
            entries: support.into_iter().map(|s| (s, p)).collect(),
        }
    }

    /// Builds from explicit (strategy, probability) pairs.
    ///
    /// Zero-probability entries are dropped; the rest must be distinct,
    /// non-negative and sum to exactly one.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`StrategyError`] on violation.
    pub fn from_entries(entries: Vec<(S, Ratio)>) -> Result<MixedStrategy<S>, StrategyError> {
        let mut kept: Vec<(S, Ratio)> = Vec::with_capacity(entries.len());
        let mut total = Ratio::ZERO;
        for (s, p) in entries {
            if p < Ratio::ZERO {
                return Err(StrategyError::NegativeProbability(p));
            }
            total += p;
            if !p.is_zero() {
                kept.push((s, p));
            }
        }
        if kept.is_empty() {
            return Err(StrategyError::Empty);
        }
        if total != Ratio::ONE {
            return Err(StrategyError::BadTotal(total));
        }
        kept.sort_by(|a, b| a.0.cmp(&b.0));
        // lint: allow(index) windows(2) yields exactly two elements
        if kept.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(StrategyError::DuplicateStrategy);
        }
        Ok(MixedStrategy { entries: kept })
    }

    /// The support: pure strategies with positive probability, sorted.
    #[must_use]
    pub fn support(&self) -> Vec<&S> {
        self.entries.iter().map(|(s, _)| s).collect()
    }

    /// Number of strategies in the support.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// The probability assigned to `s` (zero when outside the support).
    #[must_use]
    pub fn probability(&self, s: &S) -> Ratio {
        self.entries
            .binary_search_by(|(t, _)| t.cmp(s))
            // lint: allow(index) binary_search hit: i is a valid entry index
            .map(|i| self.entries[i].1)
            .unwrap_or(Ratio::ZERO)
    }

    /// Whether the distribution is degenerate (a single pure strategy).
    #[must_use]
    pub fn is_pure(&self) -> bool {
        self.entries.len() == 1
    }

    /// Whether every support member has the same probability.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// Iterates over `(strategy, probability)` pairs of the support.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&S, Ratio)> + '_ {
        self.entries.iter().map(|(s, p)| (s, *p))
    }

    /// Expected value of `f` under this distribution.
    pub fn expect(&self, mut f: impl FnMut(&S) -> Ratio) -> Ratio {
        self.entries.iter().map(|(s, p)| f(s) * *p).sum()
    }
}

impl<S: fmt::Debug> fmt::Debug for MixedStrategy<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(s, p)| (s, p.to_string())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_strategy() {
        let s = MixedStrategy::pure(7u32);
        assert!(s.is_pure());
        assert!(s.is_uniform());
        assert_eq!(s.probability(&7), Ratio::ONE);
        assert_eq!(s.probability(&8), Ratio::ZERO);
    }

    #[test]
    fn uniform_dedups_and_sums_to_one() {
        let s = MixedStrategy::uniform(vec![3, 1, 2, 1]);
        assert_eq!(s.support_size(), 3);
        let total: Ratio = s.iter().map(|(_, p)| p).sum();
        assert_eq!(total, Ratio::ONE);
        assert!(s.is_uniform());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_empty() {
        let _: MixedStrategy<u8> = MixedStrategy::uniform(vec![]);
    }

    #[test]
    fn from_entries_validates() {
        let ok = MixedStrategy::from_entries(vec![
            (1u8, Ratio::new(1, 4)),
            (2, Ratio::new(3, 4)),
            (3, Ratio::ZERO), // dropped
        ])
        .unwrap();
        assert_eq!(ok.support_size(), 2);

        let bad_total = MixedStrategy::from_entries(vec![(1u8, Ratio::new(1, 2))]);
        assert_eq!(
            bad_total.unwrap_err(),
            StrategyError::BadTotal(Ratio::new(1, 2))
        );

        let negative =
            MixedStrategy::from_entries(vec![(1u8, Ratio::new(3, 2)), (2, Ratio::new(-1, 2))]);
        assert_eq!(
            negative.unwrap_err(),
            StrategyError::NegativeProbability(Ratio::new(-1, 2))
        );

        let duplicate =
            MixedStrategy::from_entries(vec![(1u8, Ratio::new(1, 2)), (1, Ratio::new(1, 2))]);
        assert_eq!(duplicate.unwrap_err(), StrategyError::DuplicateStrategy);

        let empty = MixedStrategy::<u8>::from_entries(vec![]);
        assert_eq!(empty.unwrap_err(), StrategyError::Empty);
    }

    #[test]
    fn expectation() {
        let s =
            MixedStrategy::from_entries(vec![(0usize, Ratio::new(1, 3)), (10, Ratio::new(2, 3))])
                .unwrap();
        let mean = s.expect(|&v| Ratio::from(v));
        assert_eq!(mean, Ratio::new(20, 3));
    }

    #[test]
    fn non_uniform_detected() {
        let s = MixedStrategy::from_entries(vec![(0u8, Ratio::new(1, 3)), (1, Ratio::new(2, 3))])
            .unwrap();
        assert!(!s.is_uniform());
        assert!(!s.is_pure());
    }

    #[test]
    fn debug_render() {
        let s = MixedStrategy::pure("x");
        assert!(format!("{s:?}").contains('x'));
    }
}
