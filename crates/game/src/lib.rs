//! Finite strategic-game substrate.
//!
//! The Tuple model is a finite non-cooperative game in normal form. This
//! crate provides the game-theoretic machinery independent of graphs:
//!
//! - sparse [`MixedStrategy`] distributions over arbitrary strategy types
//!   with *exact rational* probabilities ([`defender_num::Ratio`]);
//! - a [`StrategicGame`] trait abstracting payoff evaluation;
//! - expected-payoff computation, best-response queries and exact Nash
//!   verification ([`nash`]) with brute-force helpers for cross-validation
//!   on tiny games.
//!
//! # Examples
//!
//! Matching pennies has the uniform profile as its unique equilibrium:
//!
//! ```
//! use defender_game::{nash, MixedStrategy, TwoPlayerMatrixGame};
//! use defender_num::Ratio;
//!
//! let game = TwoPlayerMatrixGame::zero_sum(vec![
//!     vec![Ratio::from(1), Ratio::from(-1)],
//!     vec![Ratio::from(-1), Ratio::from(1)],
//! ]);
//! let uniform = MixedStrategy::uniform(vec![0usize, 1]);
//! let report = nash::verify_two_player(&game, &uniform, &uniform);
//! assert!(report.is_equilibrium());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod matrix;
mod strategy;

pub mod nash;
pub mod support_enumeration;

pub use matrix::TwoPlayerMatrixGame;
pub use strategy::{MixedStrategy, StrategyError};
pub use support_enumeration::{
    enumerate_equilibria, first_equilibrium_supports, BimatrixEquilibrium,
};

use defender_num::Ratio;

/// A finite strategic game evaluated through pure-profile payoffs.
///
/// Implementors expose, for each player, the finite strategy universe and
/// the payoff of any pure profile. The generic Nash machinery in [`nash`]
/// builds expected payoffs on top.
pub trait StrategicGame {
    /// A pure strategy (cloneable, comparable for support bookkeeping).
    type Strategy: Clone + Ord;

    /// Number of players.
    fn player_count(&self) -> usize;

    /// The strategy universe of `player` (finite, non-empty).
    fn strategies(&self, player: usize) -> Vec<Self::Strategy>;

    /// Payoff of `player` under the pure profile (one strategy per player).
    fn payoff(&self, player: usize, profile: &[Self::Strategy]) -> Ratio;
}
