//! Two-player bimatrix games — small test vehicles for the Nash machinery.

use defender_num::Ratio;

use crate::StrategicGame;

/// A two-player game in bimatrix form: `row_payoff[i][j]` and
/// `col_payoff[i][j]` are the players' payoffs when the row player plays
/// `i` and the column player plays `j`.
///
/// Strategies are row/column indices (`usize`).
#[derive(Clone, Debug)]
pub struct TwoPlayerMatrixGame {
    row_payoff: Vec<Vec<Ratio>>,
    col_payoff: Vec<Vec<Ratio>>,
}

impl TwoPlayerMatrixGame {
    /// Builds a general bimatrix game.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are empty, ragged or differently shaped.
    #[must_use]
    pub fn new(row_payoff: Vec<Vec<Ratio>>, col_payoff: Vec<Vec<Ratio>>) -> TwoPlayerMatrixGame {
        assert!(
            !row_payoff.is_empty(),
            "row player needs at least one strategy"
        );
        // lint: allow(index) non-empty row set asserted on the line above
        let cols = row_payoff[0].len();
        assert!(cols > 0, "column player needs at least one strategy");
        assert!(
            row_payoff.iter().all(|r| r.len() == cols),
            "row matrix is ragged"
        );
        assert_eq!(
            row_payoff.len(),
            col_payoff.len(),
            "matrices differ in rows"
        );
        assert!(
            col_payoff.iter().all(|r| r.len() == cols),
            "column matrix shape mismatch"
        );
        TwoPlayerMatrixGame {
            row_payoff,
            col_payoff,
        }
    }

    /// Builds a zero-sum game from the row player's payoff matrix.
    ///
    /// # Panics
    ///
    /// Panics under the same shape conditions as [`TwoPlayerMatrixGame::new`].
    #[must_use]
    pub fn zero_sum(row_payoff: Vec<Vec<Ratio>>) -> TwoPlayerMatrixGame {
        let col_payoff = row_payoff
            .iter()
            .map(|row| row.iter().map(|&p| -p).collect())
            .collect();
        TwoPlayerMatrixGame::new(row_payoff, col_payoff)
    }

    /// Number of row strategies.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row_payoff.len()
    }

    /// Number of column strategies.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.row_payoff[0].len() // lint: allow(index) constructor asserts at least one row strategy
    }
}

impl StrategicGame for TwoPlayerMatrixGame {
    type Strategy = usize;

    fn player_count(&self) -> usize {
        2
    }

    fn strategies(&self, player: usize) -> Vec<usize> {
        match player {
            0 => (0..self.rows()).collect(),
            1 => (0..self.cols()).collect(),
            // lint: allow(panic) documented two-player contract of the Game trait
            _ => panic!("two-player game has players 0 and 1, not {player}"),
        }
    }

    fn payoff(&self, player: usize, profile: &[usize]) -> Ratio {
        // lint: allow(index) Game contract: a two-player profile has two entries
        let (i, j) = (profile[0], profile[1]);
        match player {
            // lint: allow(index) profile holds strategy indices below rows()/cols()
            0 => self.row_payoff[i][j],
            // lint: allow(index) profile holds strategy indices below rows()/cols()
            1 => self.col_payoff[i][j],
            // lint: allow(panic) documented two-player contract of the Game trait
            _ => panic!("two-player game has players 0 and 1, not {player}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Ratio {
        Ratio::from(v)
    }

    #[test]
    fn zero_sum_negates() {
        let g = TwoPlayerMatrixGame::zero_sum(vec![vec![r(3), r(-1)], vec![r(0), r(2)]]);
        assert_eq!(g.payoff(0, &[0, 0]), r(3));
        assert_eq!(g.payoff(1, &[0, 0]), r(-3));
        assert_eq!(g.payoff(1, &[0, 1]), r(1));
    }

    #[test]
    fn strategies_enumerate_indices() {
        let g = TwoPlayerMatrixGame::zero_sum(vec![vec![r(0), r(0), r(0)]]);
        assert_eq!(g.strategies(0), vec![0]);
        assert_eq!(g.strategies(1), vec![0, 1, 2]);
        assert_eq!(g.player_count(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = TwoPlayerMatrixGame::zero_sum(vec![vec![r(0)], vec![r(0), r(1)]]);
    }

    #[test]
    #[should_panic(expected = "players 0 and 1")]
    fn third_player_rejected() {
        let g = TwoPlayerMatrixGame::zero_sum(vec![vec![r(0)]]);
        let _ = g.payoff(2, &[0, 0]);
    }
}
