//! k-matching configurations and Nash equilibria: Definition 4.1,
//! Observation 4.1, Lemma 4.1 and Corollary 4.11.
//!
//! A *k-matching configuration* generalizes the Edge model's matching
//! configuration: (1) the attackers' support is independent, (2) each
//! support vertex touches exactly one edge of `E(D(tp))`, and (3) every
//! edge of `E(D(tp))` appears in the same number of support tuples. When
//! it additionally satisfies condition 1 of Theorem 3.4, uniform play makes
//! it a *k-matching Nash equilibrium* (Lemma 4.1) with hit probability
//! `k / |E(D(tp))|` on the support (Claim 4.3).

use defender_game::MixedStrategy;
use defender_graph::{edge_cover, independent_set, vertex_cover, EdgeSet, Graph, VertexSet};
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::payoff;
use crate::tuple::Tuple;
use crate::CoreError;

/// The support shape of a k-matching configuration (Definition 4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KMatchingConfig {
    /// `D(VP)` — the common support of every vertex player.
    pub vp_support: VertexSet,
    /// `D(tp)` — the tuple player's support.
    pub tuples: Vec<Tuple>,
}

impl KMatchingConfig {
    /// `E(D(tp))` — the distinct edges across all support tuples, sorted.
    #[must_use]
    pub fn support_edges(&self) -> EdgeSet {
        let mut out: EdgeSet = self
            .tuples
            .iter()
            .flat_map(|t| t.edges().iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks Definition 4.1 against a graph and width, reporting the
    /// first violated condition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotKMatching`] naming the failed condition.
    pub fn check(&self, graph: &Graph, k: usize) -> Result<(), CoreError> {
        if self.tuples.is_empty() {
            return Err(CoreError::NotKMatching {
                reason: "the tuple player's support is empty".into(),
            });
        }
        for t in &self.tuples {
            t.check_for(graph, k)?;
        }
        // (1) independence.
        if !independent_set::is_independent_set(graph, &self.vp_support) {
            return Err(CoreError::NotKMatching {
                reason: "condition (1): D(VP) is not an independent set".into(),
            });
        }
        // (2) unique incidence with E(D(tp)).
        let support_edges = self.support_edges();
        let mult = edge_cover::cover_multiplicity(graph, &support_edges);
        // lint: allow(index) mult is sized by vertex_count; VertexId::index is in range
        if let Some(v) = self.vp_support.iter().find(|v| mult[v.index()] != 1) {
            return Err(CoreError::NotKMatching {
                reason: format!(
                    "condition (2): {v} is incident to {} support edges, expected 1",
                    // lint: allow(index) mult is sized by vertex_count; VertexId::index is in range
                    mult[v.index()]
                ),
            });
        }
        // (3) equal tuple-multiplicity per edge.
        let counts = self.edge_tuple_counts(graph);
        let expected = counts
            .iter()
            .copied()
            .find(|&c| c > 0)
            // lint: allow(panic) non-empty support has a positive count
            .expect("non-empty support has edges");
        for &e in &support_edges {
            // lint: allow(index) counts is sized by edge_count; EdgeId::index is in range
            if counts[e.index()] != expected {
                return Err(CoreError::NotKMatching {
                    reason: format!(
                        "condition (3): edge {e} appears in {} tuples, others in {expected}",
                        // lint: allow(index) counts is sized by edge_count; EdgeId::index is in range
                        counts[e.index()]
                    ),
                });
            }
        }
        Ok(())
    }

    /// For every edge of the graph, the number of support tuples containing
    /// it (the `α` of Claim 4.3 on support edges, 0 elsewhere).
    #[must_use]
    pub fn edge_tuple_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; graph.edge_count()];
        for t in &self.tuples {
            for &e in t.edges() {
                // lint: allow(index) counts is sized by edge_count; EdgeId::index is in range
                counts[e.index()] += 1;
            }
        }
        counts
    }

    /// Whether condition 1 of Theorem 3.4 also holds — the requirement
    /// that upgrades the configuration to an equilibrium (Definition 4.2).
    #[must_use]
    pub fn satisfies_theorem_3_4_condition_1(&self, graph: &Graph) -> bool {
        let support_edges = self.support_edges();
        edge_cover::is_edge_cover(graph, &support_edges)
            && vertex_cover::covers_edges(graph, &self.vp_support, &support_edges)
    }
}

/// A k-matching mixed Nash equilibrium (Definition 4.2): uniform play on a
/// k-matching configuration with covering supports.
#[derive(Clone, Debug)]
pub struct KMatchingNe {
    config: MixedConfig,
    supports: KMatchingConfig,
    defender_gain: Ratio,
    hit_probability: Ratio,
}

impl KMatchingNe {
    /// The mixed configuration (uniform on both supports).
    #[must_use]
    pub fn config(&self) -> &MixedConfig {
        &self.config
    }

    /// The underlying supports.
    #[must_use]
    pub fn supports(&self) -> &KMatchingConfig {
        &self.supports
    }

    /// `IP_tp` — the defender's expected gain `k·ν/|D(VP)|`
    /// (Corollary 4.10).
    #[must_use]
    pub fn defender_gain(&self) -> Ratio {
        self.defender_gain
    }

    /// The hit probability on the attackers' support,
    /// `k / |E(D(tp))|` (Claim 4.3).
    #[must_use]
    pub fn hit_probability(&self) -> Ratio {
        self.hit_probability
    }

    /// Number of support tuples `|D(tp)|` (the `δ` of Lemma 4.8 when built
    /// by the reduction).
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.supports.tuples.len()
    }
}

/// Lemma 4.1: equips a k-matching configuration (satisfying condition 1 of
/// Theorem 3.4) with uniform distributions, yielding a mixed Nash
/// equilibrium.
///
/// The construction is verified arithmetically on the way out: the hit
/// probability on the support must equal `k / |E(D(tp))|` (Claim 4.3) and
/// the defender gain `k·ν / |D(VP)|` (Corollary 4.10); both are recomputed
/// from the configuration and asserted.
///
/// # Errors
///
/// - [`CoreError::NotKMatching`] when Definition 4.1 or the covering
///   condition fails;
/// - shape errors from [`MixedConfig::new`].
pub fn k_matching_ne_from_config(
    game: &TupleGame<'_>,
    supports: KMatchingConfig,
) -> Result<KMatchingNe, CoreError> {
    let graph = game.graph();
    supports.check(graph, game.k())?;
    if !supports.satisfies_theorem_3_4_condition_1(graph) {
        return Err(CoreError::NotKMatching {
            reason: "condition 1 of Theorem 3.4 fails: supports do not cover".into(),
        });
    }
    let vp = MixedStrategy::uniform(supports.vp_support.clone());
    let tp = MixedStrategy::uniform(supports.tuples.clone());
    let config = MixedConfig::symmetric(game, vp, tp)?;

    let defender_gain = payoff::expected_ip_tuple_player(game, &config);
    let expected_gain = Ratio::from(game.k()) * Ratio::from(game.attacker_count())
        // lint: allow(arith) vp_support is nonempty for a validated k-matching NE
        / Ratio::from(supports.vp_support.len());
    debug_assert_eq!(defender_gain, expected_gain, "Corollary 4.10");

    let support_edges = supports.support_edges();
    // lint: allow(arith) a k-matching has k >= 1 support edges
    let hit_probability = Ratio::from(game.k()) / Ratio::from(support_edges.len());
    if cfg!(debug_assertions) {
        let hits = payoff::hit_probabilities(game, &config);
        for v in &supports.vp_support {
            // lint: allow(index) hits is sized by vertex_count; VertexId::index is in range
            debug_assert_eq!(hits[v.index()], hit_probability, "Claim 4.3 at {v}");
        }
    }

    Ok(KMatchingNe {
        config,
        supports,
        defender_gain,
        hit_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use defender_graph::{generators, EdgeId, VertexId};

    /// C4 (edges sorted: e0=(0,1), e1=(0,3), e2=(1,2), e3=(2,3)) with
    /// IS = {v0, v2}: support edges e0 = (0,1) and e3 = (2,3); 2-tuples
    /// must pack both edges into one tuple.
    fn c4_k2_config() -> KMatchingConfig {
        KMatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(2)],
            tuples: vec![Tuple::new(vec![EdgeId::new(0), EdgeId::new(3)]).unwrap()],
        }
    }

    #[test]
    fn c4_k2_is_equilibrium() {
        let g = generators::cycle(4);
        let game = TupleGame::new(&g, 2, 4).unwrap();
        let ne = k_matching_ne_from_config(&game, c4_k2_config()).unwrap();
        assert_eq!(ne.defender_gain(), Ratio::from(4), "k·ν/|IS| = 2·4/2");
        assert_eq!(ne.hit_probability(), Ratio::ONE, "k/|E(D(tp))| = 2/2");
        assert_eq!(ne.tuple_count(), 1);
        let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(report.is_equilibrium(), "{:?}", report.failures());
    }

    #[test]
    fn observation_4_1_one_matching_is_matching() {
        // A 1-matching configuration is exactly a matching configuration.
        let g = generators::path(4);
        let config = KMatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(3)],
            tuples: vec![Tuple::single(EdgeId::new(0)), Tuple::single(EdgeId::new(2))],
        };
        assert!(config.check(&g, 1).is_ok());
        let as_matching = crate::matching_ne::MatchingConfig {
            vp_support: config.vp_support.clone(),
            tp_support: config.support_edges(),
        };
        assert!(as_matching.is_matching_configuration(&g));
        // And the equilibria coincide.
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let kne = k_matching_ne_from_config(&game, config).unwrap();
        let mne = crate::matching_ne::matching_ne_from_config(&game, as_matching).unwrap();
        assert_eq!(kne.defender_gain(), mne.defender_gain());
    }

    #[test]
    fn condition_1_violation_detected() {
        let g = generators::path(4);
        let dependent = KMatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(1)],
            tuples: vec![Tuple::single(EdgeId::new(0))],
        };
        let err = dependent.check(&g, 1).unwrap_err();
        assert!(err.to_string().contains("condition (1)"));
    }

    #[test]
    fn condition_2_violation_detected() {
        let g = generators::path(4);
        // v1 lies on both support edges e0 = (0,1) and e1 = (1,2).
        let config = KMatchingConfig {
            vp_support: vec![VertexId::new(1)],
            tuples: vec![Tuple::single(EdgeId::new(0)), Tuple::single(EdgeId::new(1))],
        };
        let err = config.check(&g, 1).unwrap_err();
        assert!(err.to_string().contains("condition (2)"), "{err}");
    }

    #[test]
    fn condition_3_violation_detected() {
        let g = generators::cycle(6);
        // Edge e0 appears twice via two tuples, e3 once — unequal counts.
        // C6 sorted edges: e0=(0,1), e1=(0,5), e2=(1,2), e3=(2,3), e4=(3,4), e5=(4,5).
        let config = KMatchingConfig {
            vp_support: vec![VertexId::new(0), VertexId::new(2)],
            tuples: vec![
                Tuple::new(vec![EdgeId::new(0), EdgeId::new(3)]).unwrap(),
                Tuple::new(vec![EdgeId::new(0), EdgeId::new(4)]).unwrap(),
            ],
        };
        let err = config.check(&g, 2).unwrap_err();
        assert!(err.to_string().contains("condition (3)"), "{err}");
    }

    #[test]
    fn covering_failure_detected() {
        let g = generators::path(4);
        // Valid Definition 4.1 shape but not an edge cover of G.
        let config = KMatchingConfig {
            vp_support: vec![VertexId::new(0)],
            tuples: vec![Tuple::single(EdgeId::new(0))],
        };
        assert!(config.check(&g, 1).is_ok());
        assert!(!config.satisfies_theorem_3_4_condition_1(&g));
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let err = k_matching_ne_from_config(&game, config).unwrap_err();
        assert!(err.to_string().contains("condition 1 of Theorem 3.4"));
    }

    #[test]
    fn empty_support_rejected() {
        let g = generators::path(2);
        let config = KMatchingConfig {
            vp_support: vec![VertexId::new(0)],
            tuples: vec![],
        };
        assert!(config.check(&g, 1).is_err());
    }

    #[test]
    fn edge_tuple_counts() {
        let g = generators::cycle(4);
        let config = c4_k2_config();
        let counts = config.edge_tuple_counts(&g);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[3], 1);
        assert_eq!(counts[1], 0);
    }
}
