//! The defender's pure strategy: a [`Tuple`] of `k` distinct edges.
//!
//! The paper defines `E^k` as the set of tuples of `k` distinct edges. The
//! payoffs (Definition 2.1) depend only on the *set* of endpoints, so order
//! never matters in any argument; we canonicalize tuples as sorted edge-id
//! vectors (DESIGN.md §5.4), which makes equality structural and supports
//! usable as `BTreeMap` keys.

use core::fmt;

use defender_graph::{EdgeId, Graph, VertexId, VertexSet};

use crate::CoreError;

/// A set of `k` distinct edges — one pure strategy of the tuple player.
///
/// Internally sorted and deduplicated at construction; `k` is the length.
///
/// # Examples
///
/// ```
/// use defender_core::tuple::Tuple;
/// use defender_graph::EdgeId;
///
/// let t = Tuple::new(vec![EdgeId::new(2), EdgeId::new(0)])?;
/// assert_eq!(t.k(), 2);
/// assert_eq!(t.edges()[0], EdgeId::new(0));
/// # Ok::<(), defender_core::CoreError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    edges: Vec<EdgeId>,
}

impl Tuple {
    /// Builds a tuple from edges, canonicalizing the order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] when the edges are not
    /// distinct or the list is empty (the model requires `k ≥ 1`).
    pub fn new(mut edges: Vec<EdgeId>) -> Result<Tuple, CoreError> {
        edges.sort_unstable();
        let before = edges.len();
        edges.dedup();
        if edges.len() != before {
            return Err(CoreError::ConfigMismatch {
                reason: "tuple edges must be distinct".into(),
            });
        }
        if edges.is_empty() {
            return Err(CoreError::ConfigMismatch {
                reason: "a tuple needs at least one edge".into(),
            });
        }
        Ok(Tuple { edges })
    }

    /// Builds a single-edge tuple (the Edge model's pure strategy).
    #[must_use]
    pub fn single(edge: EdgeId) -> Tuple {
        Tuple { edges: vec![edge] }
    }

    /// The tuple width `k` (number of edges).
    #[must_use]
    pub fn k(&self) -> usize {
        self.edges.len()
    }

    /// The edges, sorted by id.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether `e` is one of the tuple's edges.
    #[must_use]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// The set of distinct endpoints `V(t)`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `graph`.
    #[must_use]
    pub fn vertices(&self, graph: &Graph) -> VertexSet {
        graph.endpoint_set(&self.edges)
    }

    /// Whether `v` is an endpoint of some tuple edge (`v ∈ V(t)`) — the
    /// "caught" predicate of the payoff definition.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `graph`.
    #[must_use]
    pub fn covers(&self, graph: &Graph, v: VertexId) -> bool {
        self.edges.iter().any(|&e| graph.endpoints(e).contains(v))
    }

    /// Validates the tuple against a game's graph and width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] if the width differs from `k`
    /// or an edge id is out of range.
    pub fn check_for(&self, graph: &Graph, k: usize) -> Result<(), CoreError> {
        if self.k() != k {
            return Err(CoreError::ConfigMismatch {
                reason: format!("tuple has {} edges, game has k = {k}", self.k()),
            });
        }
        if let Some(e) = self.edges.iter().find(|e| e.index() >= graph.edge_count()) {
            return Err(CoreError::ConfigMismatch {
                reason: format!("tuple references unknown edge {e}"),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple{:?}", self.edges)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

/// Enumerates every tuple of `k` distinct edges of `graph` — the full
/// strategy set `E^k`. Exponential (`C(m, k)` tuples); guarded.
///
/// # Errors
///
/// Returns [`CoreError::TooLarge`] when `C(m, k)` exceeds `limit`.
pub fn all_tuples(graph: &Graph, k: usize, limit: usize) -> Result<Vec<Tuple>, CoreError> {
    let m = graph.edge_count();
    if k == 0 || k > m {
        return Ok(Vec::new());
    }
    let count = binomial(m, k);
    if count.map_or(true, |c| c > limit as u128) {
        defender_obs::counter!("core.exhaustive.enumerations_rejected").incr();
        return Err(CoreError::TooLarge {
            what: format!("C({m}, {k}) tuples"),
            limit,
        });
    }
    let _span = defender_obs::span!("all_tuples");
    defender_obs::counter!("core.exhaustive.tuples_enumerated")
        // lint: allow(cast) clamped to u64::MAX on this line; cannot truncate
        .add(count.unwrap_or(0).min(u128::from(u64::MAX)) as u64);
    let mut out = Vec::with_capacity(count.unwrap_or(0) as usize);
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        out.push(Tuple {
            edges: indices.iter().map(|&i| EdgeId::new(i)).collect(),
        });
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return Ok(out);
            }
            i -= 1;
            // lint: allow(index) i < k = indices.len(): loop decrements from k
            if indices[i] != i + m - k {
                break;
            }
        }
        indices[i] += 1; // lint: allow(index) i < k from the break above
        for j in i + 1..k {
            // lint: allow(index) j in i+1..k and j-1 >= i are in range
            indices[j] = indices[j - 1] + 1;
        }
    }
}

/// `C(n, k)` with overflow detection.
fn binomial(n: usize, k: usize) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128; // lint: allow(arith) divisor i + 1 >= 1
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_graph::generators;

    #[test]
    fn construction_canonicalizes() {
        let t = Tuple::new(vec![EdgeId::new(3), EdgeId::new(1)]).unwrap();
        assert_eq!(t.edges(), &[EdgeId::new(1), EdgeId::new(3)]);
        assert_eq!(t.k(), 2);
    }

    #[test]
    fn duplicates_rejected() {
        let err = Tuple::new(vec![EdgeId::new(1), EdgeId::new(1)]).unwrap_err();
        assert!(matches!(err, CoreError::ConfigMismatch { .. }));
    }

    #[test]
    fn empty_rejected() {
        assert!(Tuple::new(vec![]).is_err());
    }

    #[test]
    fn single_edge_tuple() {
        let t = Tuple::single(EdgeId::new(4));
        assert_eq!(t.k(), 1);
        assert!(t.contains_edge(EdgeId::new(4)));
        assert!(!t.contains_edge(EdgeId::new(0)));
    }

    #[test]
    fn vertices_and_covers() {
        let g = generators::path(4); // edges (0,1),(1,2),(2,3)
        let t = Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        assert_eq!(
            t.vertices(&g),
            vec![
                VertexId::new(0),
                VertexId::new(1),
                VertexId::new(2),
                VertexId::new(3)
            ]
        );
        assert!(t.covers(&g, VertexId::new(0)));
        let t0 = Tuple::single(EdgeId::new(0));
        assert!(!t0.covers(&g, VertexId::new(3)));
    }

    #[test]
    fn check_for_validates() {
        let g = generators::path(3);
        let t = Tuple::new(vec![EdgeId::new(0), EdgeId::new(1)]).unwrap();
        assert!(t.check_for(&g, 2).is_ok());
        assert!(t.check_for(&g, 1).is_err());
        let ghost = Tuple::single(EdgeId::new(9));
        assert!(ghost.check_for(&g, 1).is_err());
    }

    #[test]
    fn tuple_ordering_is_total() {
        let a = Tuple::new(vec![EdgeId::new(0), EdgeId::new(1)]).unwrap();
        let b = Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        assert!(a < b);
    }

    #[test]
    fn all_tuples_counts() {
        let g = generators::cycle(5); // m = 5
        assert_eq!(all_tuples(&g, 1, 1000).unwrap().len(), 5);
        assert_eq!(all_tuples(&g, 2, 1000).unwrap().len(), 10);
        assert_eq!(all_tuples(&g, 3, 1000).unwrap().len(), 10);
        assert_eq!(all_tuples(&g, 5, 1000).unwrap().len(), 1);
        assert_eq!(all_tuples(&g, 6, 1000).unwrap().len(), 0);
    }

    #[test]
    fn all_tuples_are_distinct_and_sorted() {
        let g = generators::complete(5); // m = 10
        let ts = all_tuples(&g, 3, 1000).unwrap();
        assert_eq!(ts.len(), 120);
        let mut sorted = ts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ts.len());
    }

    #[test]
    fn all_tuples_guard() {
        let g = generators::complete(10); // m = 45
        let err = all_tuples(&g, 10, 1000).unwrap_err();
        assert!(matches!(err, CoreError::TooLarge { .. }));
    }

    #[test]
    fn display_renders() {
        let t = Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        assert_eq!(t.to_string(), "⟨e0, e2⟩");
        assert_eq!(format!("{t:?}"), "Tuple[e0, e2]");
    }
}
