//! Fictitious-play dynamics: do myopic players *learn* the equilibrium?
//!
//! With a single attacker (`ν = 1`) the Tuple model is a two-player
//! constant-sum game (`IP_tp + IP_1 = 1`), so Robinson's theorem applies:
//! if both players repeatedly best-respond to the opponent's *empirical*
//! mixture, the time-averaged payoff converges to the game's value — which
//! by constant-sumness is the defender gain of *any* equilibrium, e.g.
//! `k/|IS|` wherever a k-matching NE exists. Experiment E11 charts the
//! convergence; the exact defender oracle keeps Robinson's hypotheses
//! intact (the greedy oracle gives a faster, approximate variant).

use defender_num::Ratio;

use crate::best_response::{defender_best_response_exact, defender_best_response_greedy};
use crate::model::TupleGame;
use crate::tuple::Tuple;
use crate::CoreError;

/// Which defender oracle drives the dynamics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMode {
    /// Exhaustive maximum coverage (Robinson's theorem applies).
    Exact {
        /// Cap on `C(m, k)` enumeration.
        limit: usize,
    },
    /// Greedy `(1 − 1/e)` coverage (no convergence guarantee; scalable).
    Greedy,
}

/// The trace of a fictitious-play run.
#[derive(Clone, Debug)]
pub struct PlayTrace {
    /// Rounds played.
    pub rounds: usize,
    /// Time-averaged defender payoff after each power-of-two checkpoint,
    /// as `(round, average)`.
    pub checkpoints: Vec<(usize, f64)>,
    /// Final time-averaged defender payoff.
    pub average_payoff: f64,
    /// How often each vertex was the attacker's best response.
    pub attacker_frequency: Vec<usize>,
}

/// Runs fictitious play on a single-attacker instance.
///
/// Round `t`: the attacker best-responds to the defender's empirical tuple
/// history (picking the historically least-covered vertex), the defender
/// best-responds to the attacker's empirical vertex history; both moves
/// then enter the histories. The reported payoff of a round is the *exact*
/// probability the defender's chosen tuple catches the attacker's chosen
/// vertex (0 or 1), averaged over rounds.
///
/// # Errors
///
/// - [`CoreError::ConfigMismatch`] when `game.attacker_count() != 1`
///   (Robinson's constant-sum argument needs exactly one attacker);
/// - [`CoreError::TooLarge`] in exact mode when the tuple space exceeds
///   the limit.
pub fn fictitious_play(
    game: &TupleGame<'_>,
    rounds: usize,
    mode: OracleMode,
) -> Result<PlayTrace, CoreError> {
    if game.attacker_count() != 1 {
        return Err(CoreError::ConfigMismatch {
            reason: "fictitious play is implemented for ν = 1 (constant-sum)".into(),
        });
    }
    let _span = defender_obs::span!("fictitious_play");
    let graph = game.graph();
    let n = graph.vertex_count();

    // Empirical histories.
    let mut vertex_counts = vec![0u64; n]; // attacker's past choices
    let mut coverage_counts = vec![0u64; n]; // how often each vertex was covered
    let mut caught_total = 0u64;
    let mut checkpoints = Vec::new();
    let mut next_checkpoint = 1usize;
    let mut attacker_frequency = vec![0usize; n];

    for round in 1..=rounds {
        // Attacker: historically least-covered vertex (ties: lowest id).
        let attacker_vertex = graph
            .vertices()
            // lint: allow(index) coverage_counts is sized by vertex_count; index in range
            .min_by_key(|v| coverage_counts[v.index()])
            // lint: allow(panic) game graphs are validated non-empty
            .expect("non-empty graph");
        // Defender: best response to the attacker's empirical mass.
        let mass: Vec<Ratio> = vertex_counts
            .iter()
            // lint: allow(panic) round counts are bounded far below i64::MAX
            .map(|&c| Ratio::from(i64::try_from(c).expect("counts fit i64")))
            .collect();
        let tuple: Tuple = match mode {
            OracleMode::Exact { limit } => {
                if round == 1 {
                    // Empty history: any tuple; take the greedy one on the
                    // all-ones mass for a sensible opening move.
                    let ones = vec![Ratio::ONE; n];
                    defender_best_response_greedy(game, &ones).0
                } else {
                    defender_best_response_exact(game, &mass, limit)?.0
                }
            }
            OracleMode::Greedy => {
                let effective = if round == 1 {
                    vec![Ratio::ONE; n]
                } else {
                    mass
                };
                defender_best_response_greedy(game, &effective).0
            }
        };

        // Score and record the round.
        let caught = tuple.covers(graph, attacker_vertex);
        caught_total += u64::from(caught);
        // lint: allow(index) count vectors are sized by vertex_count; index in range
        vertex_counts[attacker_vertex.index()] += 1;
        // lint: allow(index) count vectors are sized by vertex_count; index in range
        attacker_frequency[attacker_vertex.index()] += 1;
        for v in tuple.vertices(graph) {
            // lint: allow(index) count vectors are sized by vertex_count; index in range
            coverage_counts[v.index()] += 1;
        }
        if round == next_checkpoint || round == rounds {
            // lint: allow(arith) f64 division cannot panic; round >= 1 inside the loop
            checkpoints.push((round, caught_total as f64 / round as f64));
            next_checkpoint *= 2;
        }
    }

    // lint: allow(cast) round count fits u64; usize to u64 is lossless on 64-bit
    defender_obs::counter!("core.dynamics.rounds").add(rounds as u64);
    defender_obs::counter!("core.dynamics.catches").add(caught_total);
    Ok(PlayTrace {
        rounds,
        // lint: allow(arith) f64 division cannot panic
        average_payoff: caught_total as f64 / rounds as f64,
        checkpoints,
        attacker_frequency,
    })
}

/// The constant-sum value of a ν = 1 instance wherever a k-matching NE
/// exists: `k / |IS|` (every equilibrium of a constant-sum game has the
/// same payoff).
#[must_use]
pub fn known_value(k: usize, is_size: usize) -> f64 {
    k as f64 / is_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use defender_graph::generators;

    #[test]
    fn converges_to_known_value_on_c6() {
        let g = generators::cycle(6); // |IS| = 3
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let trace = fictitious_play(&game, 4_000, OracleMode::Exact { limit: 10_000 }).unwrap();
        let value = known_value(1, 3);
        assert!(
            (trace.average_payoff - value).abs() < 0.03,
            "average {} vs value {value}",
            trace.average_payoff
        );
    }

    #[test]
    fn converges_on_k2_star() {
        let g = generators::star(4); // |IS| = 4
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let trace = fictitious_play(&game, 4_000, OracleMode::Exact { limit: 10_000 }).unwrap();
        let value = known_value(2, 4);
        assert!(
            (trace.average_payoff - value).abs() < 0.03,
            "average {} vs value {value}",
            trace.average_payoff
        );
    }

    #[test]
    fn greedy_mode_stays_in_value_ballpark() {
        let g = generators::complete_bipartite(2, 4); // |IS| = 4
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let trace = fictitious_play(&game, 4_000, OracleMode::Greedy).unwrap();
        let value = known_value(1, 4);
        assert!(
            (trace.average_payoff - value).abs() < 0.08,
            "average {} vs value {value}",
            trace.average_payoff
        );
    }

    #[test]
    fn attacker_history_concentrates_on_the_equilibrium_support() {
        let g = generators::star(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let trace = fictitious_play(&game, 2_000, OracleMode::Exact { limit: 10_000 }).unwrap();
        // The hub (outside the attacker support) should be chosen rarely.
        let is = &ne.supports().vp_support;
        let hub_picks = trace.attacker_frequency[0];
        let leaf_picks: usize = is.iter().map(|v| trace.attacker_frequency[v.index()]).sum();
        assert!(
            hub_picks * 10 < leaf_picks,
            "hub {hub_picks} vs leaves {leaf_picks}"
        );
    }

    #[test]
    fn multi_attacker_rejected() {
        let g = generators::path(3);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        assert!(fictitious_play(&game, 10, OracleMode::Greedy).is_err());
    }

    #[test]
    fn checkpoints_are_monotone_in_round() {
        let g = generators::cycle(8);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let trace = fictitious_play(&game, 500, OracleMode::Greedy).unwrap();
        assert!(trace.checkpoints.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(trace.checkpoints.last().unwrap().0, 500);
    }
}
