//! Monte-Carlo attack simulator.
//!
//! The paper's motivating scenario — viruses attacking network hosts while
//! the security software scans `k` links — has no hardware to reproduce,
//! so we *simulate* it (DESIGN.md §6): repeatedly sample every player's
//! pure action from the mixed configuration, count arrests, and compare
//! empirical means against the exact expectations of equations (1)–(2).
//! Experiment E7 drives this module.

use defender_num::rng::{Rng, StdRng};

use defender_game::MixedStrategy;
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};

/// Parameters of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Number of independent rounds to play.
    pub rounds: u64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> SimulationConfig {
        SimulationConfig {
            rounds: 10_000,
            seed: 0xDEFE17DE5,
        }
    }
}

/// Aggregated results of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationOutcome {
    /// Rounds played.
    pub rounds: u64,
    /// Total arrests across all rounds.
    pub total_caught: u64,
    /// Empirical mean arrests per round (estimates `IP_tp`).
    pub mean_caught: f64,
    /// Per-attacker empirical escape frequency (estimates `IP_i`).
    pub escape_frequency: Vec<f64>,
}

impl SimulationOutcome {
    /// Absolute deviation of the empirical defender gain from an exact
    /// prediction.
    #[must_use]
    pub fn gain_error(&self, predicted: Ratio) -> f64 {
        (self.mean_caught - predicted.to_f64()).abs()
    }
}

/// A reusable sampler for one mixed configuration.
#[derive(Debug)]
pub struct Simulator<'a, 'g> {
    game: &'a TupleGame<'g>,
    config: &'a MixedConfig,
}

impl<'a, 'g> Simulator<'a, 'g> {
    /// Creates a simulator for `config` played on `game`.
    #[must_use]
    pub fn new(game: &'a TupleGame<'g>, config: &'a MixedConfig) -> Simulator<'a, 'g> {
        Simulator { game, config }
    }

    /// Plays `sim.rounds` independent rounds and aggregates arrests.
    #[must_use]
    pub fn run(&self, sim: &SimulationConfig) -> SimulationOutcome {
        let mut rng = StdRng::seed_from_u64(sim.seed);
        let graph = self.game.graph();
        let nu = self.game.attacker_count();
        let mut total_caught = 0u64;
        let mut escapes = vec![0u64; nu];
        for _ in 0..sim.rounds {
            let tuple = sample(self.config.defender(), &mut rng);
            let mut covered = vec![false; graph.vertex_count()];
            for v in tuple.vertices(graph) {
                covered[v.index()] = true;
            }
            for (i, strategy) in self.config.attackers().iter().enumerate() {
                let v = sample(strategy, &mut rng);
                if covered[v.index()] {
                    total_caught += 1;
                } else {
                    escapes[i] += 1;
                }
            }
        }
        SimulationOutcome {
            rounds: sim.rounds,
            total_caught,
            mean_caught: total_caught as f64 / sim.rounds as f64,
            escape_frequency: escapes
                .into_iter()
                .map(|e| e as f64 / sim.rounds as f64)
                .collect(),
        }
    }
}

/// Samples one pure strategy by inverse transform: a uniform `f64` draw is
/// walked down the cumulative distribution. Probabilities are converted to
/// `f64` once per entry; the resulting per-sample bias is below 2⁻⁵²,
/// orders of magnitude under the 1/√rounds Monte-Carlo noise this module
/// exists to measure (exactness lives in `payoff`, not here).
fn sample<'s, S: Clone + Ord, R: Rng + ?Sized>(
    strategy: &'s MixedStrategy<S>,
    rng: &mut R,
) -> &'s S {
    // Draw u uniform in [0, 1) as a rational with 2^53 granularity.
    let u = rng.gen_f64();
    pick_by_cdf(strategy.iter().map(|(s, p)| (s, p.to_f64())), u)
        // lint: allow(panic) distributions sum to one, so the CDF scan always lands
        .expect("mixed strategies have a positive-probability entry")
}

/// Walks `u` down the cumulative distribution of `(item, probability)`
/// pairs. When f64 accumulation lands short of 1.0 and `u` falls past the
/// final partial sum, falls back to the last *positive-probability* entry:
/// an explicit zero entry must never be selected, not even by the rounding
/// fallback (it would be an event of probability zero occurring).
fn pick_by_cdf<'s, S>(entries: impl Iterator<Item = (&'s S, f64)>, u: f64) -> Option<&'s S> {
    let mut acc = 0.0f64;
    let mut last_positive = None;
    for (s, p) in entries {
        acc += p;
        if p > 0.0 {
            last_positive = Some(s);
        }
        if u < acc {
            return s.into();
        }
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::gain::defender_gain;
    use crate::model::TupleGame;
    use crate::tuple::Tuple;
    use defender_graph::{generators, EdgeId, VertexId};

    #[test]
    fn deterministic_configuration_has_zero_variance() {
        // Defender covers everything with a pure edge-cover tuple.
        let g = generators::path(4);
        let game = TupleGame::new(&g, 2, 3).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::pure(VertexId::new(0)),
            MixedStrategy::pure(Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap()),
        )
        .unwrap();
        let outcome = Simulator::new(&game, &config).run(&SimulationConfig {
            rounds: 500,
            seed: 1,
        });
        assert_eq!(outcome.total_caught, 3 * 500, "v0 is always covered");
        assert!(outcome.escape_frequency.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn empirical_gain_converges_to_exact() {
        let g = generators::complete_bipartite(3, 4);
        let game = TupleGame::new(&g, 2, 5).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let exact = defender_gain(&game, ne.config());
        let outcome = Simulator::new(&game, ne.config()).run(&SimulationConfig {
            rounds: 60_000,
            seed: 42,
        });
        // Per-round catches are bounded by ν = 5; 60k rounds give a tight CI.
        assert!(
            outcome.gain_error(exact) < 0.05,
            "empirical {} vs exact {exact}",
            outcome.mean_caught
        );
    }

    #[test]
    fn escape_frequency_matches_equation_1() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::uniform(vec![
                Tuple::single(EdgeId::new(0)),
                Tuple::single(EdgeId::new(2)),
            ]),
        )
        .unwrap();
        let outcome = Simulator::new(&game, &config).run(&SimulationConfig {
            rounds: 40_000,
            seed: 7,
        });
        // Equation (1): every attacker escapes with probability 1/2.
        for (i, f) in outcome.escape_frequency.iter().enumerate() {
            assert!((f - 0.5).abs() < 0.02, "attacker {i}: {f}");
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let g = generators::complete_bipartite(2, 3);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let sim = SimulationConfig {
            rounds: 1_000,
            seed: 9,
        };
        let a = Simulator::new(&game, ne.config()).run(&sim);
        let b = Simulator::new(&game, ne.config()).run(&sim);
        assert_eq!(a.total_caught, b.total_caught);
    }

    #[test]
    fn default_config_is_sane() {
        let d = SimulationConfig::default();
        assert!(d.rounds > 0);
    }

    /// Always returns the largest draw `gen_f64` can produce,
    /// `(2^53 - 1) / 2^53` — the draw most likely to fall off the end of a
    /// rounded-down f64 CDF.
    struct MaxRng;

    impl Rng for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn cdf_fallback_skips_trailing_explicit_zero() {
        // Ten 0.1 probabilities accumulate in f64 to exactly 1 - 2^-53,
        // which equals the maximal draw, so the walk falls through to the
        // fallback. The pre-fix fallback tracked *every* entry and so
        // returned the trailing zero-probability entry.
        let entries: Vec<(u32, f64)> = (0..10).map(|i| (i, 0.1)).chain([(99, 0.0)]).collect();
        let u = ((u64::MAX >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let mut acc = 0.0;
        for &(_, p) in &entries {
            acc += p;
        }
        assert!(u >= acc, "the draw must fall past the accumulated CDF");
        let picked =
            pick_by_cdf(entries.iter().map(|(s, p)| (s, *p)), u).expect("positive entries exist");
        assert_ne!(*picked, 99, "zero-probability entries are unsampleable");
        assert_eq!(*picked, 9, "fallback is the last positive entry");
    }

    #[test]
    fn cdf_walk_never_selects_interior_zeros() {
        let entries = [(0u8, 0.5), (1, 0.0), (2, 0.5)];
        for u in [0.0, 0.25, 0.49999, 0.5, 0.75, 0.99999] {
            let picked = pick_by_cdf(entries.iter().map(|(s, p)| (s, *p)), u).unwrap();
            assert_ne!(*picked, 1, "u = {u}");
        }
        assert!(pick_by_cdf([(&7u8, 0.0)].into_iter(), 0.3).is_none());
    }

    #[test]
    fn sampler_fallback_returns_positive_entry_end_to_end() {
        // A strategy whose ten-entry f64 CDF lands short of 1.0: MaxRng
        // forces the fallback path through the public sampling loop.
        let support: Vec<VertexId> = (0..10).map(VertexId::new).collect();
        let strategy = MixedStrategy::uniform(support);
        let mut rng = MaxRng;
        let v = sample(&strategy, &mut rng);
        assert!(
            strategy.probability(v) > defender_num::Ratio::ZERO,
            "sampled {v:?} must be in the support"
        );
        assert_eq!(v.index(), 9, "fallback lands on the last positive entry");
    }
}
