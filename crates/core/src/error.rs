//! Error types for the Tuple model.

use core::fmt;

use defender_graph::GraphError;

/// Errors reported by the Tuple-model constructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying graph violates the model's standing assumptions.
    Graph(GraphError),
    /// The defender width `k` is outside `1..=m`.
    InvalidWidth {
        /// The requested width.
        k: usize,
        /// The graph's edge count.
        edge_count: usize,
    },
    /// The supplied partition is not (independent set, complement) or the
    /// expander condition fails.
    InvalidPartition {
        /// Human-readable reason, e.g. the Hall violator found.
        reason: String,
    },
    /// A configuration was used with a game it does not fit.
    ConfigMismatch {
        /// Human-readable reason.
        reason: String,
    },
    /// The matching-NE machinery was invoked on a game with `k != 1`.
    NotEdgeModel {
        /// The actual width.
        k: usize,
    },
    /// The 1→k reduction (Lemma 4.8) needs `k` distinct support edges but
    /// the matching NE's support is smaller (DESIGN.md §5.2).
    TupleWiderThanSupport {
        /// The requested width.
        k: usize,
        /// The matching NE's support size `E_num = |IS|`.
        support_size: usize,
    },
    /// A configuration failed the k-matching conditions (Definition 4.1).
    NotKMatching {
        /// Which condition failed and why.
        reason: String,
    },
    /// An exhaustive routine was asked to enumerate too large a space.
    TooLarge {
        /// What blew up (e.g. "C(m, k) tuples").
        what: String,
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::InvalidWidth { k, edge_count } => {
                write!(f, "defender width k = {k} outside 1..={edge_count}")
            }
            CoreError::InvalidPartition { reason } => {
                write!(f, "invalid (IS, VC) partition: {reason}")
            }
            CoreError::ConfigMismatch { reason } => {
                write!(f, "configuration does not fit the game: {reason}")
            }
            CoreError::NotEdgeModel { k } => {
                write!(f, "matching NE machinery needs k = 1, got k = {k}")
            }
            CoreError::TupleWiderThanSupport { k, support_size } => {
                write!(
                    f,
                    "k = {k} exceeds the matching NE support size {support_size}; \
                     no k-matching NE exists (DESIGN.md §5.2)"
                )
            }
            CoreError::NotKMatching { reason } => {
                write!(f, "not a k-matching configuration: {reason}")
            }
            CoreError::TooLarge { what, limit } => {
                write!(
                    f,
                    "exhaustive enumeration of {what} exceeds the limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> CoreError {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::InvalidWidth {
            k: 9,
            edge_count: 3,
        };
        assert!(e.to_string().contains("k = 9"));
        let e = CoreError::TupleWiderThanSupport {
            k: 5,
            support_size: 3,
        };
        assert!(e.to_string().contains("support size 3"));
        let e = CoreError::NotEdgeModel { k: 4 };
        assert!(e.to_string().contains("k = 1"));
        let e: CoreError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("graph error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
