//! Hit probabilities, vertex-player mass and expected payoffs
//! (equations (1) and (2) of the paper), all in exact rationals.

use defender_graph::{EdgeId, VertexId};
use defender_num::{Ratio, RatioAccum};

use crate::model::{MixedConfig, TupleGame};
use crate::tuple::Tuple;

/// `P_s(Hit(v))` for every vertex: the probability that the defender's
/// sampled tuple has `v` among its endpoints.
///
/// Computed in one pass over the defender's support: each support tuple
/// adds its probability to each of its distinct endpoints.
#[must_use]
pub fn hit_probabilities(game: &TupleGame<'_>, config: &MixedConfig) -> Vec<Ratio> {
    let graph = game.graph();
    // Per-vertex deferred accumulators: one gcd per vertex at the end
    // instead of one per support-tuple increment.
    let mut hit: Vec<RatioAccum> = (0..graph.vertex_count())
        .map(|_| RatioAccum::new())
        .collect();
    for (t, p) in config.defender().iter() {
        for v in t.vertices(graph) {
            // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
            hit[v.index()].add(p);
        }
    }
    hit.into_iter().map(RatioAccum::finish).collect()
}

/// `P_s(Hit(v))` for a single vertex.
#[must_use]
pub fn hit_probability(game: &TupleGame<'_>, config: &MixedConfig, v: VertexId) -> Ratio {
    Ratio::sum_iter(
        config
            .tuples_hitting(game.graph(), v)
            .into_iter()
            .map(|t| config.defender().probability(t)),
    )
}

/// `m_s(v)` for every vertex: the expected number of vertex players
/// choosing `v` (sum of per-attacker probabilities).
#[must_use]
pub fn vertex_mass(game: &TupleGame<'_>, config: &MixedConfig) -> Vec<Ratio> {
    let mut mass: Vec<RatioAccum> = (0..game.graph().vertex_count())
        .map(|_| RatioAccum::new())
        .collect();
    for s in config.attackers() {
        for (v, p) in s.iter() {
            // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
            mass[v.index()].add(p);
        }
    }
    mass.into_iter().map(RatioAccum::finish).collect()
}

/// `m_s(e) = m_s(u) + m_s(v)` for an edge `e = (u, v)`.
#[must_use]
pub fn edge_mass(game: &TupleGame<'_>, config: &MixedConfig, e: EdgeId) -> Ratio {
    let mass = vertex_mass(game, config);
    let ep = game.graph().endpoints(e);
    // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
    mass[ep.u().index()] + mass[ep.v().index()]
}

/// `m_s(t) = Σ_{v ∈ V(t)} m_s(v)`: the expected number of vertex players
/// sitting on the endpoints of tuple `t` (distinct endpoints counted once).
#[must_use]
pub fn tuple_mass(game: &TupleGame<'_>, config: &MixedConfig, t: &Tuple) -> Ratio {
    let mass = vertex_mass(game, config);
    tuple_mass_with(&mass, game, t)
}

/// [`tuple_mass`] with a precomputed vertex-mass vector (avoids
/// recomputation in sweeps over many tuples).
#[must_use]
pub fn tuple_mass_with(mass: &[Ratio], game: &TupleGame<'_>, t: &Tuple) -> Ratio {
    Ratio::sum_iter(
        t.vertices(game.graph())
            .into_iter()
            // lint: allow(index) mass is sized by vertex_count; VertexId::index is in range
            .map(|v| mass[v.index()]),
    )
}

/// Equation (1): the expected Individual Profit of vertex player `i`,
/// `Σ_v P(vp_i, v) · (1 − P(Hit(v)))`.
///
/// # Panics
///
/// Panics if `i ≥ ν`.
#[must_use]
pub fn expected_ip_vertex_player(game: &TupleGame<'_>, config: &MixedConfig, i: usize) -> Ratio {
    let hit = hit_probabilities(game, config);
    Ratio::dot_iter(
        config
            .attacker(i)
            .iter()
            // lint: allow(index) hit is sized by vertex_count; VertexId::index is in range
            .map(|(v, p)| (p, Ratio::ONE - hit[v.index()])),
    )
}

/// Equation (2): the expected Individual Profit of the tuple player,
/// `Σ_t P(tp, t) · m_s(t)` — the expected number of arrested attackers.
#[must_use]
pub fn expected_ip_tuple_player(game: &TupleGame<'_>, config: &MixedConfig) -> Ratio {
    let mass = vertex_mass(game, config);
    Ratio::dot_iter(
        config
            .defender()
            .iter()
            .map(|(t, p)| (p, tuple_mass_with(&mass, game, t))),
    )
}

/// Conservation check behind Claim 3.7: total vertex mass equals `ν`.
#[must_use]
pub fn total_mass(game: &TupleGame<'_>, config: &MixedConfig) -> Ratio {
    Ratio::sum_iter(vertex_mass(game, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use defender_game::MixedStrategy;
    use defender_graph::generators;

    /// Path P4 with k = 1, ν = 2: attackers uniform on {v0, v3}, defender
    /// uniform on {e0, e2} = {(0,1), (2,3)}.
    fn sample<'g>(graph: &'g defender_graph::Graph) -> (TupleGame<'g>, MixedConfig) {
        let game = TupleGame::new(graph, 1, 2).unwrap();
        let vp = MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]);
        let tp = MixedStrategy::uniform(vec![
            Tuple::single(EdgeId::new(0)),
            Tuple::single(EdgeId::new(2)),
        ]);
        let config = MixedConfig::symmetric(&game, vp, tp).unwrap();
        (game, config)
    }

    #[test]
    fn hit_probabilities_per_vertex() {
        let g = generators::path(4);
        let (game, config) = sample(&g);
        let hit = hit_probabilities(&game, &config);
        // Each support edge has probability 1/2 and covers its endpoints.
        let half = Ratio::new(1, 2);
        assert_eq!(hit, vec![half, half, half, half]);
        assert_eq!(hit_probability(&game, &config, VertexId::new(2)), half);
    }

    #[test]
    fn vertex_mass_sums_attackers() {
        let g = generators::path(4);
        let (game, config) = sample(&g);
        let mass = vertex_mass(&game, &config);
        // Two attackers, each 1/2 on v0 and v3.
        assert_eq!(mass[0], Ratio::ONE);
        assert_eq!(mass[3], Ratio::ONE);
        assert_eq!(mass[1], Ratio::ZERO);
        assert_eq!(total_mass(&game, &config), Ratio::from(2));
    }

    #[test]
    fn edge_and_tuple_mass() {
        let g = generators::path(4);
        let (game, config) = sample(&g);
        assert_eq!(edge_mass(&game, &config, EdgeId::new(0)), Ratio::ONE);
        assert_eq!(edge_mass(&game, &config, EdgeId::new(1)), Ratio::ZERO);
        let both = Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        let game2 = TupleGame::new(&g, 2, 2).unwrap();
        let config2 = MixedConfig::symmetric(
            &game2,
            MixedStrategy::uniform(vec![VertexId::new(0), VertexId::new(3)]),
            MixedStrategy::pure(both.clone()),
        )
        .unwrap();
        assert_eq!(tuple_mass(&game2, &config2, &both), Ratio::from(2));
    }

    #[test]
    fn tuple_mass_counts_shared_endpoint_once() {
        // Star: edges (0,1),(0,2),(0,3); mass only on hub v0.
        let g = generators::star(3);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let config = MixedConfig::symmetric(
            &game,
            MixedStrategy::pure(VertexId::new(0)),
            MixedStrategy::pure(Tuple::new(vec![EdgeId::new(0), EdgeId::new(1)]).unwrap()),
        )
        .unwrap();
        let t = Tuple::new(vec![EdgeId::new(0), EdgeId::new(1)]).unwrap();
        // Hub appears in both edges but V(t) counts it once.
        assert_eq!(tuple_mass(&game, &config, &t), Ratio::ONE);
    }

    #[test]
    fn expected_payoffs_match_hand_computation() {
        let g = generators::path(4);
        let (game, config) = sample(&g);
        // Every vertex has hit probability 1/2, so each attacker escapes
        // with probability 1/2.
        assert_eq!(
            expected_ip_vertex_player(&game, &config, 0),
            Ratio::new(1, 2)
        );
        assert_eq!(
            expected_ip_vertex_player(&game, &config, 1),
            Ratio::new(1, 2)
        );
        // Defender: each support edge carries expected mass 1.
        assert_eq!(expected_ip_tuple_player(&game, &config), Ratio::ONE);
    }

    #[test]
    fn zero_attackers_degenerate() {
        let g = generators::path(2);
        let game = TupleGame::new(&g, 1, 0).unwrap();
        let config = MixedConfig::new(
            &game,
            vec![],
            MixedStrategy::pure(Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        assert_eq!(expected_ip_tuple_player(&game, &config), Ratio::ZERO);
        assert_eq!(total_mass(&game, &config), Ratio::ZERO);
    }
}
