//! Brute-force cross-validation: the Tuple model as a generic
//! [`StrategicGame`], verified by `defender-game`'s exhaustive machinery.
//!
//! Everything here is exponential and guarded — its purpose is to check
//! the paper's polynomial-time structural results against first-principles
//! game theory on tiny instances (the tests of this module and the
//! integration suite do exactly that).

use defender_game::{nash, MixedStrategy, StrategicGame};
use defender_graph::VertexId;
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::tuple::{all_tuples, Tuple};
use crate::CoreError;

/// A pure move of either kind of player.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Move {
    /// A vertex player's choice.
    Vertex(VertexId),
    /// The tuple player's choice.
    Tuple(Tuple),
}

/// Adapter exposing `Π_k(G)` through the generic [`StrategicGame`] trait.
///
/// Players `0..ν` are the vertex players; player `ν` is the tuple player.
/// The defender's strategy universe `E^k` is materialized eagerly, hence
/// the construction guard.
#[derive(Debug)]
pub struct GameAdapter<'a, 'g> {
    game: &'a TupleGame<'g>,
    tuples: Vec<Tuple>,
}

impl<'a, 'g> GameAdapter<'a, 'g> {
    /// Materializes the adapter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooLarge`] when `C(m, k) > tuple_limit`.
    pub fn new(
        game: &'a TupleGame<'g>,
        tuple_limit: usize,
    ) -> Result<GameAdapter<'a, 'g>, CoreError> {
        let tuples = all_tuples(game.graph(), game.k(), tuple_limit)?;
        Ok(GameAdapter { game, tuples })
    }

    /// The defender's player index (`ν`).
    #[must_use]
    pub fn defender_index(&self) -> usize {
        self.game.attacker_count()
    }

    /// Lifts a [`MixedConfig`] into per-player [`Move`] distributions.
    #[must_use]
    pub fn lift(&self, config: &MixedConfig) -> Vec<MixedStrategy<Move>> {
        let mut profile: Vec<MixedStrategy<Move>> = config
            .attackers()
            .iter()
            .map(|s| {
                MixedStrategy::from_entries(s.iter().map(|(v, p)| (Move::Vertex(*v), p)).collect())
                    // lint: allow(panic) re-keying a valid distribution preserves validity
                    .expect("valid distribution lifts to a valid distribution")
            })
            .collect();
        profile.push(
            MixedStrategy::from_entries(
                config
                    .defender()
                    .iter()
                    .map(|(t, p)| (Move::Tuple(t.clone()), p))
                    .collect(),
            )
            // lint: allow(panic) re-keying a valid distribution preserves validity
            .expect("valid distribution lifts to a valid distribution"),
        );
        profile
    }

    /// Exhaustive Nash verification of a mixed configuration — the ground
    /// truth the Theorem 3.4 verifier is cross-validated against.
    #[must_use]
    pub fn verify(&self, config: &MixedConfig) -> nash::NashReport<Move> {
        nash::verify(self, &self.lift(config))
    }

    /// All pure Nash equilibria, by exhaustive enumeration.
    #[must_use]
    pub fn pure_equilibria(&self) -> Vec<Vec<Move>> {
        nash::pure_equilibria(self)
    }

    /// The single-attacker game as an explicit bimatrix (defender = row
    /// player catching, attacker = column player escaping), together with
    /// the tuple universe indexing the rows.
    ///
    /// Enables `defender_game::enumerate_equilibria` to list *every*
    /// equilibrium of a tiny instance — the strongest cross-validation of
    /// the structural constructions available in this workspace.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigMismatch`] when `ν != 1`.
    pub fn bimatrix(&self) -> Result<(defender_game::TwoPlayerMatrixGame, Vec<Tuple>), CoreError> {
        if self.game.attacker_count() != 1 {
            return Err(CoreError::ConfigMismatch {
                reason: "bimatrix view is defined for ν = 1".into(),
            });
        }
        let graph = self.game.graph();
        let n = graph.vertex_count();
        // Rows are independent; build them on the worker pool and merge in
        // tuple order, so the matrix is identical for every pool width.
        let rows: Vec<(Vec<Ratio>, Vec<Ratio>)> = defender_par::par_map(&self.tuples, |t| {
            let mut drow = vec![Ratio::ZERO; n];
            let mut arow = vec![Ratio::ONE; n];
            for v in t.vertices(graph) {
                // lint: allow(index) rows are sized by vertex_count; VertexId::index is in range
                drow[v.index()] = Ratio::ONE;
                // lint: allow(index) rows are sized by vertex_count; VertexId::index is in range
                arow[v.index()] = Ratio::ZERO;
            }
            (drow, arow)
        });
        let (defender_payoff, attacker_payoff): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        Ok((
            defender_game::TwoPlayerMatrixGame::new(defender_payoff, attacker_payoff),
            self.tuples.clone(),
        ))
    }
}

impl StrategicGame for GameAdapter<'_, '_> {
    type Strategy = Move;

    fn player_count(&self) -> usize {
        self.game.attacker_count() + 1
    }

    fn strategies(&self, player: usize) -> Vec<Move> {
        if player < self.game.attacker_count() {
            self.game.graph().vertices().map(Move::Vertex).collect()
        } else {
            self.tuples.iter().cloned().map(Move::Tuple).collect()
        }
    }

    fn payoff(&self, player: usize, profile: &[Move]) -> Ratio {
        // lint: allow(index) Game contract: profile has attacker_count + 1 slots
        let Move::Tuple(tuple) = &profile[self.game.attacker_count()] else {
            // lint: allow(panic) profile layout invariant: the last slot holds the defender tuple
            panic!("defender slot must hold a tuple");
        };
        let graph = self.game.graph();
        if player < self.game.attacker_count() {
            // lint: allow(index) player < attacker_count on this branch
            let Move::Vertex(v) = profile[player] else {
                // lint: allow(panic) profile layout invariant: attacker slots hold vertices
                panic!("attacker slot must hold a vertex");
            };
            if tuple.covers(graph, v) {
                Ratio::ZERO
            } else {
                Ratio::ONE
            }
        } else {
            // lint: allow(index) profile has attacker_count + 1 slots; prefix in range
            let caught = profile[..self.game.attacker_count()]
                .iter()
                .filter(|m| {
                    let Move::Vertex(v) = m else {
                        // lint: allow(panic) profile layout invariant: attacker slots hold vertices
                        panic!("attacker slot must hold a vertex");
                    };
                    tuple.covers(graph, *v)
                })
                .count();
            Ratio::from(caught)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use crate::pure::pure_ne_existence;
    use defender_graph::{generators, EdgeId};

    #[test]
    fn pure_ne_enumeration_matches_theorem_3_1() {
        // P4, k = 1, ν = 1: ρ(P4) = 2 > 1, so no pure NE whatsoever.
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let adapter = GameAdapter::new(&game, 10_000).unwrap();
        assert!(adapter.pure_equilibria().is_empty());
        assert!(!pure_ne_existence(&game).exists());

        // P4, k = 2: the cover {(0,1), (2,3)} exists; brute force agrees.
        let game2 = TupleGame::new(&g, 2, 1).unwrap();
        let adapter2 = GameAdapter::new(&game2, 10_000).unwrap();
        let pure = adapter2.pure_equilibria();
        assert!(!pure.is_empty());
        assert!(pure_ne_existence(&game2).exists());
        // In every brute-forced pure NE the defender plays the unique
        // 2-edge cover.
        let cover = Tuple::new(vec![EdgeId::new(0), EdgeId::new(2)]).unwrap();
        for profile in &pure {
            assert_eq!(profile[1], Move::Tuple(cover.clone()));
        }
    }

    #[test]
    fn structural_ne_survives_first_principles_verification() {
        let g = generators::complete_bipartite(2, 3);
        let game = TupleGame::new(&g, 2, 2).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let adapter = GameAdapter::new(&game, 10_000).unwrap();
        let ground_truth = adapter.verify(ne.config());
        assert!(
            ground_truth.is_equilibrium(),
            "deviations: {:?}",
            ground_truth.deviations
        );
        // And the polynomial verifier concurs.
        let fast = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
        assert!(fast.is_equilibrium());
    }

    #[test]
    fn verifiers_agree_on_non_equilibria() {
        use defender_game::MixedStrategy as MS;
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let adapter = GameAdapter::new(&game, 10_000).unwrap();
        // Defender never covers v3; attacker plays v0 — attacker should
        // move, defender should move: not an equilibrium by both verifiers.
        let config = MixedConfig::symmetric(
            &game,
            MS::pure(defender_graph::VertexId::new(0)),
            MS::pure(Tuple::single(EdgeId::new(0))),
        )
        .unwrap();
        assert!(!adapter.verify(&config).is_equilibrium());
        let fast = verify_mixed_ne(&game, &config, VerificationMode::Auto).unwrap();
        assert!(!fast.is_equilibrium());
    }

    #[test]
    fn expected_payoffs_match_closed_forms() {
        let g = generators::path(4);
        let game = TupleGame::new(&g, 1, 2).unwrap();
        let ne = a_tuple_bipartite(&game).unwrap();
        let adapter = GameAdapter::new(&game, 10_000).unwrap();
        let report = adapter.verify(ne.config());
        // Defender's expected payoff (last player) equals IP_tp.
        assert_eq!(
            report.expected_payoffs[adapter.defender_index()],
            crate::gain::defender_gain(&game, ne.config())
        );
    }

    #[test]
    fn bimatrix_is_identical_for_every_pool_width() {
        let g = generators::complete_bipartite(2, 3);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        let adapter = GameAdapter::new(&game, 10_000).unwrap();
        defender_par::set_jobs(1);
        let (serial, tuples_serial) = adapter.bimatrix().unwrap();
        defender_par::set_jobs(4);
        let (parallel, tuples_parallel) = adapter.bimatrix().unwrap();
        defender_par::set_jobs(1);
        assert_eq!(tuples_serial, tuples_parallel);
        assert_eq!(serial.rows(), parallel.rows());
        assert_eq!(serial.cols(), parallel.cols());
        for i in 0..serial.rows() {
            for j in 0..serial.cols() {
                for player in 0..2 {
                    assert_eq!(
                        serial.payoff(player, &[i, j]),
                        parallel.payoff(player, &[i, j])
                    );
                }
            }
        }
    }

    #[test]
    fn guard_fires_on_large_spaces() {
        let g = generators::complete(8); // m = 28
        let game = TupleGame::new(&g, 7, 1).unwrap();
        assert!(matches!(
            GameAdapter::new(&game, 10_000),
            Err(CoreError::TooLarge { .. })
        ));
    }
}
