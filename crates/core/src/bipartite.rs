//! Theorem 5.1: bipartite graphs always admit k-matching Nash equilibria,
//! computable in `max{O(k·n), O(m√n)}` time.
//!
//! The recipe: take a *minimum vertex cover* `VC` via König's theorem
//! (Hopcroft–Karp underneath) and the complementary independent set
//! `IS = V \ VC`, then run [`crate::a_tuple`]. König's
//! construction guarantees every `VC` vertex is matched to a private `IS`
//! vertex, which is exactly the (corrected) expander condition.

use defender_graph::vertex_cover;
use defender_matching::koenig::koenig_auto;

use crate::algorithm::{a_tuple, ATupleReport};
use crate::k_matching::KMatchingNe;
use crate::model::TupleGame;
use crate::CoreError;

/// Theorem 5.1: a k-matching mixed NE for a bipartite instance.
///
/// # Errors
///
/// - [`CoreError::Graph`] with
///   [`defender_graph::GraphError::NotBipartite`] when the graph has an
///   odd cycle;
/// - [`CoreError::TupleWiderThanSupport`] when `k` exceeds the maximum
///   independent set size `n − τ(G)` (DESIGN.md §5.2).
///
/// # Examples
///
/// ```
/// use defender_core::{a_tuple_bipartite, model::TupleGame};
/// use defender_graph::generators;
/// use defender_num::Ratio;
///
/// let g = generators::complete_bipartite(3, 4);
/// let game = TupleGame::new(&g, 2, 6)?;
/// let ne = a_tuple_bipartite(&game)?;
/// assert_eq!(ne.defender_gain(), Ratio::new(2 * 6, 4)); // k·ν/|IS|
/// # Ok::<(), defender_core::CoreError>(())
/// ```
pub fn a_tuple_bipartite(game: &TupleGame<'_>) -> Result<KMatchingNe, CoreError> {
    Ok(a_tuple_bipartite_report(game)?.ne)
}

/// [`a_tuple_bipartite`] exposing the full [`ATupleReport`] (intermediate
/// matching NE, `E_num`, `δ`).
///
/// # Errors
///
/// Same as [`a_tuple_bipartite`].
pub fn a_tuple_bipartite_report(game: &TupleGame<'_>) -> Result<ATupleReport, CoreError> {
    let graph = game.graph();
    let koenig = koenig_auto(graph)?;
    let is = vertex_cover::complement(graph, &koenig.cover);
    a_tuple(game, &is, &koenig.cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use defender_graph::generators;
    use defender_num::rng::StdRng;
    use defender_num::Ratio;

    #[test]
    fn complete_bipartite_families() {
        for (a, b) in [(2usize, 3usize), (3, 3), (1, 6), (4, 5)] {
            let g = generators::complete_bipartite(a, b);
            let nu = 4;
            let game = TupleGame::new(&g, 1, nu).unwrap();
            let ne = a_tuple_bipartite(&game).unwrap();
            // Minimum VC of K_{a,b} is the smaller side; IS the larger.
            let is_size = a.max(b);
            assert_eq!(ne.defender_gain(), Ratio::new(nu as i64, is_size as i64));
            let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
            assert!(
                report.is_equilibrium(),
                "K_{{{a},{b}}}: {:?}",
                report.failures()
            );
        }
    }

    #[test]
    fn random_bipartite_sweep() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let g = generators::random_bipartite(4, 6, 0.4, &mut rng);
            let game = TupleGame::new(&g, 2, 5).unwrap();
            match a_tuple_bipartite(&game) {
                Ok(ne) => {
                    let report =
                        verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
                    assert!(
                        report.is_equilibrium(),
                        "trial {trial}: {:?}",
                        report.failures()
                    );
                }
                Err(CoreError::TupleWiderThanSupport { .. }) => {
                    // Legal outcome when the maximum independent set is
                    // smaller than k — cannot happen here with |IS| ≥ 6 − τ,
                    // but keep the arm for clarity.
                    panic!("trial {trial}: |IS| ≥ 4 should exceed k = 2");
                }
                Err(e) => panic!("trial {trial}: {e}"),
            }
        }
    }

    #[test]
    fn trees_always_work() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let g = generators::random_tree(12, &mut rng);
            let game = TupleGame::new(&g, 2, 3).unwrap();
            let ne = a_tuple_bipartite(&game).unwrap();
            let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
            assert!(report.is_equilibrium(), "{:?}", report.failures());
        }
    }

    #[test]
    fn odd_cycle_rejected() {
        let g = generators::cycle(5);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let err = a_tuple_bipartite(&game).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Graph(defender_graph::GraphError::NotBipartite)
        ));
    }

    #[test]
    fn report_carries_intermediates() {
        let g = generators::complete_bipartite(2, 4);
        let game = TupleGame::new(&g, 2, 4).unwrap();
        let report = a_tuple_bipartite_report(&game).unwrap();
        assert_eq!(report.e_num, 4, "E_num = |IS|");
        assert_eq!(report.delta, 2, "δ = 4/gcd(4,2)");
        assert_eq!(report.gain_ratio(), Ratio::from(2));
    }

    #[test]
    fn k_beyond_is_size() {
        // K_{1,2} (a path P3): IS = 2 leaves, m = 2, so k = 2 > ... |IS| = 2,
        // k = 2 is fine; use K_{2,2} with k = 3 > |IS| = 2? m = 4 ≥ 3. C4 is
        // K_{2,2}.
        let g = generators::complete_bipartite(2, 2);
        let game = TupleGame::new(&g, 3, 2).unwrap();
        let err = a_tuple_bipartite(&game).unwrap_err();
        assert!(matches!(err, CoreError::TupleWiderThanSupport { .. }));
    }
}
