//! Covering Nash equilibria — the perfect-matching family of the companion
//! paper \[8\], lifted to the Tuple model.
//!
//! When `G` has a perfect matching `M`, a second structural equilibrium
//! exists besides the k-matching one: the attackers spread uniformly over
//! *all* vertices and the defender slides the width-`k` cyclic window over
//! the `n/2` matching edges. Theorem 3.4 validates it directly:
//!
//! - `M` is an edge cover and `V` trivially covers the spanned subgraph;
//! - each vertex lies on exactly one matching edge, so the hit probability
//!   is the constant `k/(n/2) = 2k/n` — minimal because uniform;
//! - every support tuple is a sub-matching of `M`, covering `2k` distinct
//!   vertices of mass `ν/n` each — and no `k` edges can cover more,
//!   so the tuple mass `2k·ν/n` is maximal.
//!
//! The defender's gain is therefore `2k·ν/n` — at least the k-matching
//! gain `k·ν/|IS|` (since `|IS| ≥ n/2` always), with equality exactly when
//! `IS` is a perfect half. Experiment E10 charts the comparison.

use defender_game::MixedStrategy;
use defender_graph::{EdgeSet, VertexId};
use defender_matching::maximum_matching;
use defender_num::Ratio;

use crate::model::{MixedConfig, TupleGame};
use crate::payoff;
use crate::reduction::cyclic_tuples;
use crate::tuple::Tuple;
use crate::CoreError;

/// A covering mixed Nash equilibrium: attackers uniform on `V`, defender
/// cycling a width-`k` window over a perfect matching.
#[derive(Clone, Debug)]
pub struct CoveringNe {
    config: MixedConfig,
    matching_edges: EdgeSet,
    defender_gain: Ratio,
    hit_probability: Ratio,
}

impl CoveringNe {
    /// The mixed configuration (uniform on both supports).
    #[must_use]
    pub fn config(&self) -> &MixedConfig {
        &self.config
    }

    /// The perfect matching the defender's tuples are drawn from.
    #[must_use]
    pub fn matching_edges(&self) -> &[defender_graph::EdgeId] {
        &self.matching_edges
    }

    /// `IP_tp = 2k·ν/n` — the defender's expected gain.
    #[must_use]
    pub fn defender_gain(&self) -> Ratio {
        self.defender_gain
    }

    /// The uniform hit probability `2k/n`.
    #[must_use]
    pub fn hit_probability(&self) -> Ratio {
        self.hit_probability
    }

    /// Number of support tuples (`δ = (n/2)/gcd(n/2, k)`).
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.config.tp_support().len()
    }
}

/// Builds the covering Nash equilibrium of `Π_k(G)` for a graph with a
/// perfect matching.
///
/// # Errors
///
/// - [`CoreError::InvalidPartition`] when `G` has no perfect matching
///   (the construction is undefined);
/// - [`CoreError::TupleWiderThanSupport`] when `k > n/2` (a tuple of `k`
///   distinct matching edges cannot exist).
pub fn covering_ne(game: &TupleGame<'_>) -> Result<CoveringNe, CoreError> {
    let graph = game.graph();
    let matching = maximum_matching(graph);
    if !matching.is_perfect(graph) {
        return Err(CoreError::InvalidPartition {
            reason: format!(
                "covering NE needs a perfect matching; maximum matching covers \
                 {} of {} vertices",
                2 * matching.len(),
                graph.vertex_count()
            ),
        });
    }
    let edges: EdgeSet = matching.edges().to_vec();
    let k = game.k();
    if k > edges.len() {
        return Err(CoreError::TupleWiderThanSupport {
            k,
            support_size: edges.len(),
        });
    }
    let tuples: Vec<Tuple> = cyclic_tuples(edges.len(), k)
        .into_iter()
        .map(|window| {
            // lint: allow(index) cyclic windows index 0..edges.len() by construction
            Tuple::new(window.into_iter().map(|i| edges[i]).collect())
                // lint: allow(panic) cyclic windows over a matching are distinct edges
                .expect("cyclic windows over a matching have distinct edges")
        })
        .collect();
    let all_vertices: Vec<VertexId> = graph.vertices().collect();
    let config = MixedConfig::symmetric(
        game,
        MixedStrategy::uniform(all_vertices),
        MixedStrategy::uniform(tuples),
    )?;

    let n = graph.vertex_count();
    let defender_gain = payoff::expected_ip_tuple_player(game, &config);
    // lint: allow(arith) n = vertex_count >= 1: the matching above is nonempty
    let expected = Ratio::from(2 * k) * Ratio::from(game.attacker_count()) / Ratio::from(n);
    debug_assert_eq!(defender_gain, expected, "covering gain closed form");
    // lint: allow(arith) n = vertex_count >= 1: the matching above is nonempty
    let hit_probability = Ratio::from(2 * k) / Ratio::from(n);

    Ok(CoveringNe {
        config,
        matching_edges: edges,
        defender_gain,
        hit_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::characterization::{verify_mixed_ne, ModeUsed, VerificationMode};
    use defender_graph::{generators, GraphBuilder};

    #[test]
    fn covering_ne_verifies_on_perfect_matching_families() {
        for (name, graph) in [
            ("C6", generators::cycle(6)),
            ("C8", generators::cycle(8)),
            ("K4", generators::complete(4)),
            ("K6", generators::complete(6)),
            ("Petersen", generators::petersen()),
            ("grid 4x4", generators::grid(4, 4)),
            ("K_{3,3}", generators::complete_bipartite(3, 3)),
            ("ladder L4", generators::ladder(4)),
        ] {
            let half = graph.vertex_count() / 2;
            for k in 1..=half.min(3) {
                let game = TupleGame::new(&graph, k, 5).unwrap();
                let ne = covering_ne(&game).unwrap();
                let report =
                    verify_mixed_ne(&game, ne.config(), VerificationMode::Analytic).unwrap();
                assert!(
                    report.is_equilibrium(),
                    "{name}, k = {k}: {:?}",
                    report.failures()
                );
                assert_eq!(report.mode_used, ModeUsed::Analytic);
                assert_eq!(
                    ne.defender_gain(),
                    Ratio::from(2 * k) * Ratio::from(5) / Ratio::from(graph.vertex_count())
                );
            }
        }
    }

    #[test]
    fn covering_ne_works_on_non_bipartite_graphs() {
        // The k-matching route fails on the Petersen graph (not bipartite,
        // and in fact no matching NE exists); the covering route succeeds.
        let graph = generators::petersen();
        let game = TupleGame::new(&graph, 2, 4).unwrap();
        assert!(a_tuple_bipartite(&game).is_err());
        let ne = covering_ne(&game).unwrap();
        assert_eq!(ne.defender_gain(), Ratio::new(2 * 2 * 4, 10));
        assert_eq!(ne.tuple_count(), 5, "δ = 5/gcd(5,2)");
    }

    #[test]
    fn exhaustive_cross_check_on_small_instance() {
        let graph = generators::cycle(6);
        let game = TupleGame::new(&graph, 2, 2).unwrap();
        let ne = covering_ne(&game).unwrap();
        let adapter = crate::exhaustive::GameAdapter::new(&game, 50_000).unwrap();
        let truth = adapter.verify(ne.config());
        assert!(truth.is_equilibrium(), "deviations: {:?}", truth.deviations);
    }

    #[test]
    fn no_perfect_matching_rejected() {
        // Odd vertex count can never have a perfect matching.
        let graph = generators::cycle(5);
        let game = TupleGame::new(&graph, 1, 1).unwrap();
        let err = covering_ne(&game).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
        // Even count without a perfect matching: a star.
        let star = generators::star(3);
        let game = TupleGame::new(&star, 1, 1).unwrap();
        assert!(covering_ne(&game).is_err());
    }

    #[test]
    fn k_beyond_half_rejected() {
        let graph = generators::cycle(6); // n/2 = 3, m = 6
        let game = TupleGame::new(&graph, 4, 2).unwrap();
        let err = covering_ne(&game).unwrap_err();
        assert_eq!(
            err,
            CoreError::TupleWiderThanSupport {
                k: 4,
                support_size: 3
            }
        );
    }

    #[test]
    fn covering_gain_dominates_matching_gain() {
        // 2k/n ≥ k/|IS| since |IS| ≥ n/2; strict when |IS| > n/2.
        let graph = generators::star(3); // no PM — skip
        let _ = graph;
        let path = generators::path(6); // PM exists; |IS| = 3 = n/2 → equal
        let game = TupleGame::new(&path, 1, 6).unwrap();
        let cov = covering_ne(&game).unwrap();
        let mat = a_tuple_bipartite(&game).unwrap();
        assert_eq!(cov.defender_gain(), mat.defender_gain(), "P6: |IS| = n/2");

        // K_{3,3} has |IS| = 3 = n/2 too; use C6 vs a graph with bigger IS:
        // the 3-dimensional hypercube has |IS| = 4 = n/2... bipartite graphs
        // with PM always have |IS| ≥ n/2; pick K_{2,4} + extra? Use the
        // double star: PM exists? Take P4 ∪ pendant? Simplest strict case:
        // C6 with a chord making IS larger is non-trivial — assert the
        // general inequality on a sweep instead.
        for graph in [
            generators::cycle(8),
            generators::grid(2, 4),
            generators::ladder(3),
        ] {
            let game = TupleGame::new(&graph, 2, 4).unwrap();
            let cov = covering_ne(&game).unwrap();
            let mat = a_tuple_bipartite(&game).unwrap();
            assert!(cov.defender_gain() >= mat.defender_gain(), "{graph:?}");
        }
    }

    #[test]
    fn custom_graph_with_strictly_better_covering_gain() {
        // A "double star" path: 1-0, 0-2, 2-3: vertices {0,1,2,3}, PM =
        // {(0,1),(2,3)}; minimum VC = {0,2}, IS = {1,3}, |IS| = 2 = n/2 →
        // equal again. True strict separation needs |IS| > n/2 AND a PM,
        // which forces some IS vertex unmatched — impossible! |IS| > n/2
        // with PM: every IS vertex matched into VC injectively → |IS| ≤
        // |VC| → |IS| ≤ n/2. So equality always holds under a PM: document
        // it by asserting equality across PM-bipartite instances.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(0, 2).add_edge(2, 3);
        let graph = b.build();
        let game = TupleGame::new(&graph, 1, 4).unwrap();
        let cov = covering_ne(&game).unwrap();
        let mat = a_tuple_bipartite(&game).unwrap();
        assert_eq!(cov.defender_gain(), mat.defender_gain());
    }
}
