//! Tree specialization (\[8\]): k-matching equilibria on trees in `O(k·n)`
//! total, with no bipartite matching machinery.
//!
//! Trees are bipartite, so Theorem 5.1 already applies; this module swaps
//! König/Hopcroft–Karp (`O(m√n)`) for a one-pass `O(n)` leaf DP
//! ([`defender_matching::tree`]), making the *entire* pipeline `O(k·n)`.

use defender_graph::vertex_cover;
use defender_matching::tree::tree_cover;

use crate::algorithm::{a_tuple, ATupleReport};
use crate::k_matching::KMatchingNe;
use crate::model::TupleGame;
use crate::CoreError;

/// Theorem 5.1 on trees, with the `O(n)` tree DP supplying the partition.
///
/// # Errors
///
/// - [`CoreError::InvalidPartition`] when the graph is not a tree/forest;
/// - [`CoreError::TupleWiderThanSupport`] when `k > |IS|`.
pub fn a_tuple_tree(game: &TupleGame<'_>) -> Result<KMatchingNe, CoreError> {
    Ok(a_tuple_tree_report(game)?.ne)
}

/// [`a_tuple_tree`] exposing the full [`ATupleReport`].
///
/// # Errors
///
/// Same as [`a_tuple_tree`].
pub fn a_tuple_tree_report(game: &TupleGame<'_>) -> Result<ATupleReport, CoreError> {
    let graph = game.graph();
    let tc = tree_cover(graph).ok_or_else(|| CoreError::InvalidPartition {
        reason: "the tree-specialized route needs a forest (cycle detected)".into(),
    })?;
    let is = vertex_cover::complement(graph, &tc.cover);
    a_tuple(game, &is, &tc.cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::a_tuple_bipartite;
    use crate::characterization::{verify_mixed_ne, VerificationMode};
    use defender_graph::generators;
    use defender_num::rng::StdRng;

    #[test]
    fn matches_the_general_bipartite_route() {
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..15 {
            let g = generators::random_tree(14, &mut rng);
            let game = TupleGame::new(&g, 2, 5).unwrap();
            match (a_tuple_tree(&game), a_tuple_bipartite(&game)) {
                (Ok(tree_ne), Ok(bip_ne)) => {
                    // Both must be verified equilibria with the same gain
                    // (the partitions may differ; the gain only depends on
                    // |IS| = n − τ(G), which is unique).
                    assert_eq!(tree_ne.defender_gain(), bip_ne.defender_gain());
                    let report =
                        verify_mixed_ne(&game, tree_ne.config(), VerificationMode::Auto).unwrap();
                    assert!(report.is_equilibrium(), "{:?}", report.failures());
                }
                (Err(a), Err(b)) => {
                    assert_eq!(
                        std::mem::discriminant(&a),
                        std::mem::discriminant(&b),
                        "routes must fail alike: {a} vs {b}"
                    );
                }
                (a, b) => panic!("routes disagree: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn works_on_paths_and_stars() {
        for (g, k) in [
            (generators::path(9), 3usize),
            (generators::star(7), 4),
            (generators::path(2), 1),
        ] {
            let game = TupleGame::new(&g, k, 4).unwrap();
            let ne = a_tuple_tree(&game).unwrap();
            let report = verify_mixed_ne(&game, ne.config(), VerificationMode::Auto).unwrap();
            assert!(report.is_equilibrium(), "{:?}", report.failures());
        }
    }

    #[test]
    fn rejects_non_trees() {
        let g = generators::cycle(6);
        let game = TupleGame::new(&g, 1, 1).unwrap();
        let err = a_tuple_tree(&game).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition { .. }));
    }

    #[test]
    fn k_beyond_is_size_reported() {
        // Star K_{1,2} = P3: IS = 2 leaves, m = 2.
        let g = generators::star(2);
        let game = TupleGame::new(&g, 2, 1).unwrap();
        assert!(a_tuple_tree(&game).is_ok(), "k = 2 = |IS| is feasible");
        // P4: IS = {ends} size 2, m = 3, k = 3 > |IS|.
        let p = generators::path(4);
        let game = TupleGame::new(&p, 3, 1).unwrap();
        let err = a_tuple_tree(&game).unwrap_err();
        assert!(matches!(err, CoreError::TupleWiderThanSupport { .. }));
    }
}
